"""Integration tests: annotator and NLIDB trained on a small dataset.

One small model is trained per module (session-scoped fixtures) and
shared across tests to keep runtime reasonable.
"""

import numpy as np
import pytest

from repro.core import (
    NLIDB,
    NLIDBConfig,
    annotated_match,
    build_annotated_sql,
    evaluate,
    recover_sql,
)
from repro.core.annotator import Annotator, AnnotatorConfig
from repro.core.mention import ClassifierConfig
from repro.core.seq2seq.model import Seq2SeqConfig
from repro.data import generate_wikisql_style
from repro.errors import ModelError
from repro.text import WordEmbeddings, tokenize

EMB = WordEmbeddings(dim=32, seed=0)


@pytest.fixture(scope="module")
def dataset():
    return generate_wikisql_style(seed=11, train_size=80, dev_size=24,
                                  test_size=0, rows_per_table=8)


@pytest.fixture(scope="module")
def annotator(dataset):
    ann = Annotator(EMB, config=AnnotatorConfig(),
                    classifier_config=ClassifierConfig(word_dim=32))
    ann.fit(dataset.train, classifier_epochs=2, value_epochs=20)
    return ann


@pytest.fixture(scope="module")
def nlidb(dataset):
    cfg = NLIDBConfig(classifier_epochs=2, seq2seq_epochs=10,
                      seq2seq=Seq2SeqConfig(hidden=32, attention_dim=32))
    return NLIDB(EMB, cfg).fit(dataset.train)


class TestAnnotator:
    def test_annotation_covers_most_conditions(self, annotator, dataset):
        """Most gold condition columns end up annotated (explicitly or
        implicitly), and most values get a span."""
        col_hits = val_hits = total = 0
        for ex in dataset.dev:
            annotation = annotator.annotate(ex.question_tokens, ex.table)
            for cond in ex.query.conditions:
                total += 1
                if annotation.column_annotation(cond.column) is not None:
                    col_hits += 1
                value = annotation.value_annotation(cond.column)
                if value is not None and " ".join(tokenize(str(cond.value))) \
                        == value.surface:
                    val_hits += 1
        assert col_hits / total > 0.6
        assert val_hits / total > 0.5

    def test_symbol_indices_sequential_from_one(self, annotator, dataset):
        ex = dataset.dev[0]
        annotation = annotator.annotate(ex.question_tokens, ex.table)
        indices = sorted(a.index for a in annotation.columns)
        assert indices == list(range(1, len(indices) + 1))

    def test_values_share_column_index(self, annotator, dataset):
        for ex in dataset.dev[:8]:
            annotation = annotator.annotate(ex.question_tokens, ex.table)
            col_index = {a.column: a.index for a in annotation.columns}
            for value in annotation.values:
                assert value.index == col_index[value.column]

    def test_value_spans_disjoint(self, annotator, dataset):
        for ex in dataset.dev[:8]:
            annotation = annotator.annotate(ex.question_tokens, ex.table)
            taken = set()
            for value in annotation.values:
                span = set(range(*value.span))
                assert not span & taken
                taken |= span

    def test_annotate_empty_raises(self, annotator, dataset):
        with pytest.raises(ModelError):
            annotator.annotate([], dataset.dev[0].table)

    def test_fit_requires_examples(self):
        with pytest.raises(ModelError):
            Annotator(EMB).fit([])

    def test_roundtrip_through_recovery(self, annotator, dataset):
        """Gold target built from the annotation recovers to gold query
        (the annotation process is information-preserving for training)."""
        hits = 0
        for ex in dataset.dev:
            annotation = annotator.annotate(ex.question_tokens, ex.table)
            target = build_annotated_sql(annotation, ex.query)
            recovered = recover_sql(target, annotation)
            hits += recovered.query_match_equal(ex.query)
        assert hits / len(dataset.dev) > 0.85


class TestNLIDB:
    def test_beats_chance_on_dev(self, nlidb, dataset):
        preds = [nlidb.translate(e.question_tokens, e.table).query
                 for e in dataset.dev]
        # 80 training examples is a smoke-scale budget; chance level for
        # query match is ~0 (5 columns × values × aggregates).
        result = evaluate(preds, dataset.dev)
        assert result.acc_qm > 0.15
        assert result.acc_ex >= result.acc_qm * 0.8

    def test_translation_object_fields(self, nlidb, dataset):
        ex = dataset.dev[0]
        tr = nlidb.translate(ex.question_tokens, ex.table)
        assert tr.annotated_tokens
        assert tr.predicted_annotated_sql
        assert tr.annotation.table is ex.table

    def test_accepts_string_question(self, nlidb, dataset):
        ex = dataset.dev[0]
        tr = nlidb.translate(ex.question, ex.table)
        assert tr.annotated_tokens

    def test_translate_before_fit_raises(self, dataset):
        model = NLIDB(EMB)
        with pytest.raises(ModelError):
            model.translate("anything", dataset.dev[0].table)

    def test_fit_requires_examples(self):
        with pytest.raises(ModelError):
            NLIDB(EMB).fit([])

    def test_to_sql_returns_text(self, nlidb, dataset):
        from repro.errors import AnnotationError
        ex = dataset.dev[0]
        try:
            sql = nlidb.to_sql(ex.question_tokens, ex.table)
        except AnnotationError:
            pytest.skip("recovery failed on this example")
        assert sql.lower().startswith("select")

    def test_recovery_never_decreases_match(self, nlidb, dataset):
        """Table III property: Acc_after >= Acc_before on this sample."""
        before = after = 0
        for ex in dataset.dev:
            annotation = nlidb.annotator.annotate(ex.question_tokens,
                                                  ex.table)
            gold_target = build_annotated_sql(annotation, ex.query)
            tr = nlidb.translate(ex.question_tokens, ex.table)
            before += annotated_match(tr.predicted_annotated_sql, gold_target)
            if tr.query is not None and tr.query.query_match_equal(ex.query):
                after += 1
        assert after >= before

    def test_transfer_to_unseen_table(self, nlidb):
        """Zero-shot: translate against a totally new schema."""
        from repro.sqlengine import Column, DataType, Table
        table = Table("gyms", [Column("gym"), Column("city"),
                               Column("members", DataType.REAL)],
                      [("ironworks", "oslo", 300),
                       ("pulse", "bergen", 150)])
        tr = nlidb.translate("which gym is in the city oslo ?", table)
        assert tr.annotated_tokens  # pipeline runs end to end
        if tr.query is not None:
            assert tr.query.select_column in table.column_names
