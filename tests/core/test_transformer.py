"""Tests for the Transformer ablation."""

import numpy as np
import pytest

from repro.core.seq2seq.model import TrainingPair
from repro.core.seq2seq.transformer import (
    MultiHeadAttention,
    TransformerConfig,
    TransformerTranslator,
    sinusoidal_positions,
)
from repro.errors import ModelError, ShapeError
from repro.nn import Tensor
from repro.text import WordEmbeddings

EMB = WordEmbeddings(dim=32, seed=0)
RNG = np.random.default_rng(0)


class TestPositionalEncoding:
    def test_shape_and_range(self):
        table = sinusoidal_positions(10, 16)
        assert table.shape == (10, 16)
        assert (np.abs(table) <= 1.0).all()

    def test_positions_distinct(self):
        table = sinusoidal_positions(6, 16)
        assert np.abs(table[0] - table[3]).max() > 0.1


class TestMultiHeadAttention:
    def test_output_shape(self):
        attn = MultiHeadAttention(16, 4, RNG)
        q = Tensor(RNG.standard_normal((3, 16)))
        kv = Tensor(RNG.standard_normal((5, 16)))
        assert attn(q, kv, kv).shape == (3, 16)

    def test_indivisible_heads_raise(self):
        with pytest.raises(ShapeError):
            MultiHeadAttention(10, 3, RNG)

    def test_causal_mask_blocks_future(self):
        attn = MultiHeadAttention(8, 2, np.random.default_rng(1))
        x = RNG.standard_normal((4, 8))
        mask = np.tril(np.ones((4, 4), dtype=bool))
        base = attn(Tensor(x), Tensor(x), Tensor(x), mask=mask).numpy()
        x2 = x.copy()
        x2[3] += 10.0  # perturb the last position
        out2 = attn(Tensor(x2), Tensor(x2), Tensor(x2), mask=mask).numpy()
        np.testing.assert_allclose(base[0], out2[0], atol=1e-10)
        np.testing.assert_allclose(base[2], out2[2], atol=1e-10)
        assert np.abs(base[3] - out2[3]).max() > 1e-6


def make_pairs():
    return [
        TrainingPair(["which", "c1", "film", "v1", "x9", "?"],
                     ["select", "c1", "where", "c1", "=", "v1"],
                     ["film", "year"], ("c1", "v1")),
        TrainingPair(["count", "c1", "rows", "c2", "v2", "blue"],
                     ["select", "count", "c1", "where", "c2", "=", "v2"],
                     ["item", "color"], ("c1", "c2", "v2")),
    ]


class TestTransformerTranslator:
    def make_model(self):
        return TransformerTranslator(
            EMB, TransformerConfig(heads=2, layers=1, ff_hidden=32))

    def test_fit_reduces_loss(self):
        model = self.make_model()
        losses = model.fit(make_pairs(), epochs=10, lr=2e-3)
        assert losses[-1] < losses[0]

    def test_overfits_tiny_set(self):
        model = self.make_model()
        pairs = make_pairs()
        model.fit(pairs, epochs=40, lr=2e-3)
        out = model.translate(pairs[0].source, pairs[0].header_tokens,
                              pairs[0].extra_symbols)
        assert out == pairs[0].target

    def test_unreachable_target_raises(self):
        model = self.make_model()
        with pytest.raises(ModelError):
            model.loss(["a1"], ["zzz"], [], ())

    def test_encode_empty_raises(self):
        with pytest.raises(ModelError):
            self.make_model().encode([])

    def test_fit_requires_pairs(self):
        with pytest.raises(ModelError):
            self.make_model().fit([])

    def test_decode_bounded(self):
        model = self.make_model()
        model.fit(make_pairs(), epochs=2, lr=1e-3)
        out = model.translate(["a1", "b2"], [], ())
        assert len(out) <= model.config.max_decode_len
