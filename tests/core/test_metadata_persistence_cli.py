"""Tests for metadata mining, NLIDB persistence, and the CLI."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import (
    NLIDB,
    NLIDBConfig,
    build_knowledge_base,
    load_nlidb,
    mine_column_phrases,
    save_nlidb,
)
from repro.core.seq2seq.model import Seq2SeqConfig
from repro.data import generate_wikisql_style, load_jsonl, save_jsonl
from repro.errors import DataError, ModelError
from repro.text import WordEmbeddings

EMB = WordEmbeddings(dim=32, seed=0)


@pytest.fixture(scope="module")
def dataset():
    return generate_wikisql_style(seed=31, train_size=70, dev_size=12,
                                  test_size=0)


@pytest.fixture(scope="module")
def small_model(dataset):
    cfg = NLIDBConfig(classifier_epochs=1, seq2seq_epochs=4,
                      seq2seq=Seq2SeqConfig(hidden=24, attention_dim=24))
    return NLIDB(EMB, cfg).fit(dataset.train)


class TestMetadataMining:
    def test_mines_associated_phrases(self, dataset):
        mined = mine_column_phrases(dataset.train)
        assert mined
        columns = {m.column for m in mined}
        # Columns that appear in SQL should dominate the mined set.
        sql_columns = set()
        for e in dataset.train:
            sql_columns.add(e.query.select_column.lower())
            sql_columns.update(c.column.lower() for c in e.query.conditions)
        assert columns <= sql_columns

    def test_scores_and_support_positive(self, dataset):
        for mined in mine_column_phrases(dataset.train):
            assert mined.score >= 3.0
            assert mined.support >= 2

    def test_value_surfaces_excluded(self, dataset):
        mined = mine_column_phrases(dataset.train)
        value_surfaces = {str(c.value).lower() for e in dataset.train
                          for c in e.query.conditions}
        for m in mined:
            assert m.phrase not in value_surfaces

    def test_no_pure_stopword_phrases(self, dataset):
        from repro.text import is_stop_word
        for m in mine_column_phrases(dataset.train):
            tokens = m.phrase.split()
            assert not all(is_stop_word(t) for t in tokens)

    def test_build_knowledge_base(self, dataset):
        kb = build_knowledge_base(dataset.train)
        assert len(kb) > 0
        some_column = kb.columns()[0]
        assert kb.get(some_column).mention_phrases

    def test_empty_raises(self):
        with pytest.raises(DataError):
            mine_column_phrases([])

    def test_top_k_respected(self, dataset):
        from collections import Counter
        mined = mine_column_phrases(dataset.train, top_k=2)
        per_column = Counter(m.column for m in mined)
        assert max(per_column.values()) <= 2


class TestNLIDBPersistence:
    def test_roundtrip_identical_predictions(self, small_model, dataset,
                                             tmp_path):
        model_dir = tmp_path / "model"
        save_nlidb(small_model, model_dir)
        loaded = load_nlidb(model_dir)
        for example in dataset.dev[:4]:
            a = small_model.translate(example.question_tokens, example.table)
            b = loaded.translate(example.question_tokens, example.table)
            assert a.predicted_annotated_sql == b.predicted_annotated_sql

    def test_saved_files_exist(self, small_model, tmp_path):
        model_dir = tmp_path / "model"
        save_nlidb(small_model, model_dir)
        for name in ["config.json", "column_classifier.npz",
                     "value_classifier.npz", "translator.npz"]:
            assert (model_dir / name).exists()

    def test_config_json_readable(self, small_model, tmp_path):
        model_dir = tmp_path / "model"
        save_nlidb(small_model, model_dir)
        with open(model_dir / "config.json") as handle:
            config = json.load(handle)
        assert config["format_version"] == 1
        assert config["translator_kind"] == "AnnotatedSeq2Seq"

    def test_unfitted_save_raises(self, tmp_path):
        with pytest.raises(ModelError):
            save_nlidb(NLIDB(EMB), tmp_path / "x")

    def test_load_missing_dir_raises(self, tmp_path):
        with pytest.raises(ModelError):
            load_nlidb(tmp_path / "nothing")

    def test_bad_format_version_raises(self, small_model, tmp_path):
        model_dir = tmp_path / "model"
        save_nlidb(small_model, model_dir)
        config = json.loads((model_dir / "config.json").read_text())
        config["format_version"] = 99
        (model_dir / "config.json").write_text(json.dumps(config))
        with pytest.raises(ModelError):
            load_nlidb(model_dir)


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["generate", "--out", "x.jsonl"])
        assert args.command == "generate"

    def test_generate_command(self, tmp_path, capsys):
        out = tmp_path / "data.jsonl"
        code = main(["generate", "--out", str(out), "--size", "12"])
        assert code == 0
        assert len(load_jsonl(out)) == 12

    def test_query_and_evaluate_commands(self, small_model, dataset,
                                         tmp_path, capsys):
        model_dir = tmp_path / "model"
        save_nlidb(small_model, model_dir)
        data_file = tmp_path / "dev.jsonl"
        save_jsonl(dataset.dev[:4], data_file)

        code = main(["evaluate", "--data", str(data_file),
                     "--model-dir", str(model_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Acc_qm" in out

        code = main(["query", "--model-dir", str(model_dir),
                     "--data", str(data_file),
                     "--question", dataset.dev[0].question, "--execute"])
        assert code == 0
        out = capsys.readouterr().out
        assert "annotated:" in out

    def test_query_empty_dataset_fails(self, small_model, tmp_path):
        model_dir = tmp_path / "model"
        save_nlidb(small_model, model_dir)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code = main(["query", "--model-dir", str(model_dir),
                     "--data", str(empty), "--question", "hi"])
        assert code == 1
