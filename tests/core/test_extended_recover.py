"""Extended-grammar annotation round-trips and vocabulary stability.

Two contracts:

* annotated-SQL targets built from extended gold queries recover back
  to the same query (per-family round-trip through
  :func:`build_annotated_sql` / :func:`recover_sql`);
* the legacy candidate vocabulary is byte-identical with the extended
  grammar disabled, and the extended tokens slot in directly after the
  base structural block when enabled.
"""

import pytest

from repro.core import build_annotated_sql, recover_sql
from repro.core.annotate import (
    AnnotatedQuestion,
    ColumnAnnotation,
    ValueAnnotation,
)
from repro.core.seq2seq import STRUCTURAL_TOKENS, build_candidates
from repro.core.seq2seq.vocab import (
    EXTENDED_STRUCTURAL_TOKENS,
    structural_tokens,
)
from repro.data import generate_role_typed
from repro.sqlengine import execute, results_equal


def gold_annotation(example) -> AnnotatedQuestion:
    """Build the annotation a perfect mention detector would produce."""
    columns: list[ColumnAnnotation] = []
    values: list[ValueAnnotation] = []
    index_of: dict[str, int] = {}
    for mention in example.mentions:
        key = mention.column.lower()
        if key not in index_of:
            index_of[key] = len(index_of) + 1
            span = None if mention.start == mention.end \
                else (mention.start, mention.end)
            if mention.kind == "value":
                span = None  # column itself is implicit
            columns.append(ColumnAnnotation(mention.column, index_of[key],
                                            span))
        if mention.kind == "value":
            surface = " ".join(
                example.question_tokens[mention.start:mention.end])
            values.append(ValueAnnotation(mention.column, index_of[key],
                                          (mention.start, mention.end),
                                          surface))
    return AnnotatedQuestion(question_tokens=list(example.question_tokens),
                             table=example.table, columns=columns,
                             values=values)


@pytest.fixture(scope="module")
def examples():
    ds = generate_role_typed(seed=29, train_size=120, dev_size=30,
                             test_size=0)
    return ds.train + ds.dev


class TestExtendedRecovery:
    def test_round_trip_every_family(self, examples):
        seen = set()
        for example in examples:
            annotation = gold_annotation(example)
            target = build_annotated_sql(annotation, example.query)
            recovered = recover_sql(target, annotation)
            assert recovered.query_match_equal(example.query), \
                (example.question_tokens, target)
            assert results_equal(execute(recovered, example.table),
                                 execute(example.query, example.table))
            if example.query.is_extended:
                seen.add(target[0])
                seen.update(t for t in target
                            if t in EXTENDED_STRUCTURAL_TOKENS)
        # The corpus actually exercised the new grammar tokens.
        assert {"group", "by", "order", "limit"} <= seen

    def test_targets_stay_in_candidate_space(self, examples):
        """Every annotated-SQL token must be producible by the decoder:
        structural, an input symbol/word, or a header token."""
        for example in examples:
            annotation = gold_annotation(example)
            target = build_annotated_sql(annotation, example.query)
            input_tokens = annotation.annotated_tokens(
                append=True, header_encoding=True)
            header_tokens = [t for name in example.table.column_names
                            for t in name.lower().split()]
            extra = [f"c{c.index}" for c in annotation.columns]
            candidates = set(build_candidates(
                input_tokens, header_tokens, extra, extended=True))
            missing = [t for t in target if t not in candidates]
            assert not missing, (missing, example.question_tokens)


class TestCandidateVocabularyStability:
    INPUT = ["which", "c1", "city", "v1", "?"]
    HEADERS = ["name", "city", "pop"]

    def test_legacy_list_byte_identical(self):
        candidates = build_candidates(self.INPUT, self.HEADERS)
        assert candidates == STRUCTURAL_TOKENS + [
            "which", "c1", "city", "v1", "?", "name", "pop"]
        assert candidates == build_candidates(self.INPUT, self.HEADERS,
                                              extended=False)

    def test_extended_tokens_slot_after_base(self):
        legacy = build_candidates(self.INPUT, self.HEADERS)
        extended = build_candidates(self.INPUT, self.HEADERS, extended=True)
        base = len(STRUCTURAL_TOKENS)
        assert extended[:base] == legacy[:base]
        assert extended[base:base + len(EXTENDED_STRUCTURAL_TOKENS)] == \
            EXTENDED_STRUCTURAL_TOKENS
        assert extended[base + len(EXTENDED_STRUCTURAL_TOKENS):] == \
            legacy[base:]

    def test_extended_flag_dedups_grammar_words_in_question(self):
        # "or" in the question is a plain copyable word in legacy mode
        # but already structural in extended mode.
        tokens = ["now", "or", "never"]
        legacy = build_candidates(tokens, [])
        extended = build_candidates(tokens, [], extended=True)
        assert legacy.count("or") == 1 and legacy.index("or") >= len(
            STRUCTURAL_TOKENS)
        assert extended.count("or") == 1 and extended.index("or") < len(
            structural_tokens(extended=True))
