"""Model persistence: save/load round trips for the neural components."""

import numpy as np

from repro.core.mention import ColumnMentionClassifier
from repro.core.seq2seq.model import AnnotatedSeq2Seq, Seq2SeqConfig
from repro.core.seq2seq.transformer import TransformerConfig, TransformerTranslator
from repro.nn import load_module, save_module
from repro.text import WordEmbeddings, tokenize

EMB = WordEmbeddings(dim=32, seed=0)


class TestClassifierPersistence:
    def test_roundtrip_preserves_predictions(self, tmp_path):
        clf = ColumnMentionClassifier(EMB)
        pairs = [(tokenize("which film did he star in ?"),
                  ["film"], 1),
                 (tokenize("which film did he star in ?"),
                  ["year"], 0)]
        clf.fit(pairs, epochs=3, lr=5e-3)
        path = tmp_path / "classifier.npz"
        save_module(clf, path)

        other = ColumnMentionClassifier(EMB)
        load_module(other, path)
        question = tokenize("which film did he star in ?")
        assert other.predict_proba(question, ["film"]) == \
            clf.predict_proba(question, ["film"])


class TestSeq2SeqPersistence:
    def test_roundtrip_preserves_decoding(self, tmp_path):
        from repro.core.seq2seq.model import TrainingPair
        cfg = Seq2SeqConfig(hidden=12, attention_dim=12)
        model = AnnotatedSeq2Seq(EMB, cfg)
        pairs = [TrainingPair(["which", "c1", "x9", "v1", "?"],
                              ["select", "c1", "where", "c1", "=", "v1"],
                              ["a", "b"], ("c1", "v1"))]
        model.fit(pairs, epochs=15, lr=4e-3)
        path = tmp_path / "s2s.npz"
        save_module(model, path)

        other = AnnotatedSeq2Seq(EMB, cfg)
        load_module(other, path)
        out_a = model.translate(pairs[0].source, pairs[0].header_tokens,
                                pairs[0].extra_symbols)
        out_b = other.translate(pairs[0].source, pairs[0].header_tokens,
                                pairs[0].extra_symbols)
        assert out_a == out_b


class TestTransformerPersistence:
    def test_roundtrip_state_dict(self, tmp_path):
        cfg = TransformerConfig(heads=2, layers=1, ff_hidden=16)
        model = TransformerTranslator(EMB, cfg)
        path = tmp_path / "transformer.npz"
        save_module(model, path)
        other = TransformerTranslator(EMB, cfg)
        load_module(other, path)
        for (name_a, pa), (name_b, pb) in zip(model.named_parameters(),
                                              other.named_parameters()):
            assert name_a == name_b
            np.testing.assert_array_equal(pa.numpy(), pb.numpy())
