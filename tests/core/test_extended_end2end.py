"""End-to-end training over the extended grammar.

A tiny model with ``extended_grammar=True`` trains on a role-typed
corpus; every gold target must stay inside the decoder's candidate
space, gold targets must recover to the gold query, and per-sketch
evaluation must partition the eval set.  A persistence round-trip
preserves the grammar flag.
"""

import pytest

from repro.core import (
    NLIDB,
    NLIDBConfig,
    evaluate,
    evaluate_by_sketch,
    load_nlidb,
    save_nlidb,
    sketch_label,
)
from repro.core.seq2seq.model import Seq2SeqConfig
from repro.data import generate_role_typed
from repro.text import WordEmbeddings


def _config(extended: bool = True) -> NLIDBConfig:
    return NLIDBConfig(extended_grammar=extended, classifier_epochs=1,
                       seq2seq_epochs=2,
                       seq2seq=Seq2SeqConfig(hidden=24, attention_dim=24))


@pytest.fixture(scope="module")
def dataset():
    return generate_role_typed(seed=41, train_size=48, dev_size=12,
                               test_size=0)


@pytest.fixture(scope="module")
def model(dataset):
    nlidb = NLIDB(WordEmbeddings(dim=32, seed=0), _config())
    nlidb.fit(dataset.train)
    return nlidb


class TestExtendedTraining:
    def test_all_gold_targets_reachable(self, model, dataset):
        for example in dataset.train:
            pair = model.training_pair(example)
            assert model.translator.reachable(pair), example.question

    def test_gold_targets_recover_to_gold(self, model, dataset):
        for example in dataset.train:
            pair = model.training_pair(example)
            annotation = model.annotator.annotate(example.question_tokens,
                                                  example.table)
            translation = model.recover(pair.source, list(pair.target),
                                        annotation)
            assert translation.query is not None, translation.error
            assert translation.query.query_match_equal(example.query)

    def test_translate_returns_queries(self, model, dataset):
        predictions = [model.translate(e.question_tokens, e.table).query
                       for e in dataset.dev]
        result = evaluate(predictions, dataset.dev)
        assert result.n == len(dataset.dev)

    def test_by_sketch_partitions_eval_set(self, model, dataset):
        predictions = [model.translate(e.question_tokens, e.table).query
                       for e in dataset.dev]
        by_sketch = evaluate_by_sketch(predictions, dataset.dev)
        assert sum(r.n for r in by_sketch.values()) == len(dataset.dev)
        assert set(by_sketch) == {sketch_label(e.query)
                                  for e in dataset.dev}

    def test_persistence_preserves_grammar_flag(self, model, dataset,
                                                tmp_path):
        path = tmp_path / "extended.json"
        save_nlidb(model, path)
        loaded = load_nlidb(path)
        assert loaded.config.extended_grammar is True
        example = dataset.dev[0]
        original = model.translate(example.question_tokens, example.table)
        restored = loaded.translate(example.question_tokens, example.table)
        assert original.annotated_tokens == restored.annotated_tokens
        if original.query is None:
            assert restored.query is None
        else:
            assert restored.query is not None
            assert original.query.query_match_equal(restored.query)


class TestLegacyConfigUnchanged:
    def test_legacy_model_has_no_extended_tokens(self, dataset):
        from repro.core.seq2seq import STRUCTURAL_TOKENS, build_candidates
        legacy_examples = [e for e in dataset.train if e.sketch_compatible]
        nlidb = NLIDB(WordEmbeddings(dim=32, seed=0),
                      _config(extended=False))
        nlidb.fit(legacy_examples)
        assert nlidb.config.seq2seq.extended_grammar is False
        pair = nlidb.training_pair(legacy_examples[0])
        candidates = build_candidates(
            pair.source, pair.header_tokens, pair.extra_symbols,
            extended=nlidb.config.seq2seq.extended_grammar)
        base = len(STRUCTURAL_TOKENS)
        assert candidates[:base] == STRUCTURAL_TOKENS
        assert "(" not in candidates and ")" not in candidates
