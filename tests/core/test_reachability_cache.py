"""Tests for target reachability filtering and the annotator stats cache."""

import numpy as np

from repro.core.annotator import Annotator
from repro.core.seq2seq.model import AnnotatedSeq2Seq, Seq2SeqConfig, TrainingPair
from repro.core.seq2seq.transformer import TransformerConfig, TransformerTranslator
from repro.sqlengine import Column, Table
from repro.text import WordEmbeddings

EMB = WordEmbeddings(dim=32, seed=0)


class TestReachability:
    def make_pairs(self):
        good = TrainingPair(["which", "c1", "film", "v1"],
                            ["select", "c1", "where", "c1", "=", "v1"],
                            ["film"], ("c1", "v1"))
        # Target literal "215" appears nowhere in source/headers/symbols.
        bad = TrainingPair(["which", "c1", "v1"],
                           ["select", "c1", "where", "c1", "=", "215"],
                           ["film"], ("c1", "v1"))
        return good, bad

    def test_seq2seq_reachable(self):
        model = AnnotatedSeq2Seq(EMB, Seq2SeqConfig(hidden=8,
                                                    attention_dim=8))
        good, bad = self.make_pairs()
        assert model.reachable(good)
        assert not model.reachable(bad)

    def test_seq2seq_fit_skips_unreachable(self):
        model = AnnotatedSeq2Seq(EMB, Seq2SeqConfig(hidden=8,
                                                    attention_dim=8))
        good, bad = self.make_pairs()
        model.fit([good, bad], epochs=1, lr=1e-3)
        assert model.skipped_pairs == 1

    def test_transformer_reachable(self):
        model = TransformerTranslator(
            EMB, TransformerConfig(heads=2, layers=1, ff_hidden=16))
        good, bad = self.make_pairs()
        assert model.reachable(good)
        assert not model.reachable(bad)

    def test_transformer_fit_skips_unreachable(self):
        model = TransformerTranslator(
            EMB, TransformerConfig(heads=2, layers=1, ff_hidden=16))
        good, bad = self.make_pairs()
        model.fit([good, bad], epochs=1, lr=1e-3)
        assert model.skipped_pairs == 1


class TestStatsCache:
    def test_same_table_cached(self):
        annotator = Annotator(EMB)
        table = Table("t", [Column("a")], [("x",)])
        assert annotator._stats_for(table) is annotator._stats_for(table)

    def test_different_table_same_name_not_confused(self):
        annotator = Annotator(EMB)
        t1 = Table("t", [Column("a")], [("x",)])
        t2 = Table("t", [Column("a")], [("completely different",)])
        s1 = annotator._stats_for(t1)
        s2 = annotator._stats_for(t2)
        assert not np.allclose(s1["a"], s2["a"])

    def test_recycled_id_detected(self):
        """A new table at a recycled id must not get stale statistics.

        The cache keys on content fingerprints, so object identity (and
        hence CPython id reuse after GC) cannot alias entries; see
        tests/core/test_annotator_cache.py for the full churn test.
        """
        annotator = Annotator(EMB)
        t1 = Table("t", [Column("a")], [("x",)])
        s1 = annotator._stats_for(t1)
        del t1  # its id may now be recycled by any new object
        t2 = Table("t", [Column("a")], [("other words entirely",)])
        s2 = annotator._stats_for(t2)
        assert not np.allclose(s1["a"], s2["a"])
