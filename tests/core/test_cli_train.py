"""End-to-end CLI test: generate → train → evaluate through main()."""

import pytest

from repro.cli import main
from repro.data import load_jsonl


class TestCLITrainFlow:
    def test_generate_train_evaluate(self, tmp_path, capsys):
        train_file = tmp_path / "train.jsonl"
        model_dir = tmp_path / "model"

        assert main(["generate", "--out", str(train_file),
                     "--size", "40", "--seed", "3"]) == 0
        assert len(load_jsonl(train_file)) == 40

        assert main(["train", "--data", str(train_file),
                     "--model-dir", str(model_dir),
                     "--hidden", "24", "--classifier-epochs", "1",
                     "--seq2seq-epochs", "3", "--quiet"]) == 0
        assert (model_dir / "translator.npz").exists()

        assert main(["evaluate", "--data", str(train_file),
                     "--model-dir", str(model_dir)]) == 0
        out = capsys.readouterr().out
        assert "Acc_ex" in out

    def test_generate_dev_split(self, tmp_path):
        dev_file = tmp_path / "dev.jsonl"
        assert main(["generate", "--out", str(dev_file), "--size", "5",
                     "--split", "dev"]) == 0
        assert len(load_jsonl(dev_file)) == 5
