"""Regression tests for the annotator's column-statistics cache.

The cache used to be keyed on ``id(table)``: CPython reuses id values
after garbage collection, so a brand-new table could land on a dead
entry's slot, and the dict grew without bound.  It is now keyed on the
table *content fingerprint* with a bounded LRU — these tests pin the
invalidation and bounding behaviour.
"""

from repro.core.annotator import STATS_CACHE_SIZE, Annotator
from repro.sqlengine import Column, DataType, Table
from repro.text import WordEmbeddings

EMB = WordEmbeddings(dim=16, seed=0)


def make_table(name="films", rows=None):
    return Table(name, [Column("film"), Column("year", DataType.REAL)],
                 rows if rows is not None
                 else [("solaris", 1972), ("stalker", 1979)])


class TestStatsCache:
    def test_content_equal_recreated_table_shares_entry(self):
        annotator = Annotator(EMB)
        stats_a = annotator._stats_for(make_table())
        stats_b = annotator._stats_for(make_table(name="films_reloaded"))
        assert stats_b is stats_a  # one computation, one entry
        assert len(annotator._column_stats_cache) == 1

    def test_mutating_a_table_invalidates_the_entry(self):
        annotator = Annotator(EMB)
        table = make_table()
        before = annotator._stats_for(table)
        table.insert(("mirror", 1975))
        after = annotator._stats_for(table)
        assert after is not before
        assert len(annotator._column_stats_cache) == 2

    def test_dead_object_slot_cannot_be_hit_by_a_new_table(self):
        """The id()-reuse hazard: a new table created after another was
        collected must get its own statistics, not the dead entry's."""
        annotator = Annotator(EMB)
        vals = {}
        # Churn through many short-lived tables with distinct content;
        # under id() keying some of these would collide on recycled ids.
        for i in range(32):
            table = make_table(rows=[(f"film{i}", 1900 + i)])
            stats = annotator._stats_for(table)
            vals[i] = stats["year"].tobytes()
            del table
        # Distinct content produced distinct year statistics throughout.
        assert len(set(vals.values())) == 32

    def test_cache_is_bounded(self):
        annotator = Annotator(EMB)
        for i in range(STATS_CACHE_SIZE + 16):
            annotator._stats_for(make_table(rows=[(f"film{i}", i)]))
        assert len(annotator._column_stats_cache) == STATS_CACHE_SIZE
        assert annotator._column_stats_cache.evictions == 16

    def test_renamed_column_invalidates(self):
        annotator = Annotator(EMB)
        table = make_table()
        annotator._stats_for(table)
        renamed = Table("films", [Column("movie"), Column("year",
                                                          DataType.REAL)],
                        list(table.rows))
        stats = annotator._stats_for(renamed)
        assert "movie" in stats
        assert len(annotator._column_stats_cache) == 2
