"""Tests for the seq2seq translator, token embedder, and candidates."""

import numpy as np
import pytest

from repro.core.seq2seq import (
    EOS,
    STRUCTURAL_TOKENS,
    AnnotatedSeq2Seq,
    Seq2SeqConfig,
    TokenEmbedder,
    TrainingPair,
    build_candidates,
    is_symbol,
    symbol_parts,
)
from repro.errors import ModelError, VocabularyError
from repro.text import WordEmbeddings

EMB = WordEmbeddings(dim=32, seed=0)


class TestSymbols:
    def test_is_symbol(self):
        assert is_symbol("c1") and is_symbol("v12") and is_symbol("g3")
        assert not is_symbol("c") and not is_symbol("x1")
        assert not is_symbol("cat") and not is_symbol("c1x")

    def test_symbol_parts(self):
        assert symbol_parts("v12") == ("v", 12)
        with pytest.raises(VocabularyError):
            symbol_parts("select")


class TestTokenEmbedder:
    def setup_method(self):
        self.embedder = TokenEmbedder(EMB, max_symbol_index=10)

    def test_word_embedding_matches_hash_vectors(self):
        vec = self.embedder.embed("film").numpy()
        np.testing.assert_allclose(vec.reshape(-1), EMB.vector("film"))

    def test_symbol_embedding_is_type_plus_index(self):
        c1 = self.embedder.embed("c1").numpy()
        c2 = self.embedder.embed("c2").numpy()
        v1 = self.embedder.embed("v1").numpy()
        half = EMB.dim // 2
        # Same type, different index: first half equal.
        np.testing.assert_allclose(c1[0, :half], c2[0, :half])
        assert np.abs(c1[0, half:] - c2[0, half:]).max() > 0
        # Same index, different type: second half equal.
        np.testing.assert_allclose(c1[0, half:], v1[0, half:])
        assert np.abs(c1[0, :half] - v1[0, :half]).max() > 0

    def test_symbol_embeddings_trainable(self):
        out = self.embedder.embed("c1")
        out.sum().backward()
        assert self.embedder.type_embedding.weight.grad is not None

    def test_index_out_of_range_raises(self):
        with pytest.raises(VocabularyError):
            self.embedder.embed("c11")

    def test_odd_dim_raises(self):
        with pytest.raises(VocabularyError):
            TokenEmbedder(WordEmbeddings(dim=33))

    def test_candidate_matrix_shape(self):
        matrix = self.embedder.candidate_matrix(["select", "c1", "film"])
        assert matrix.shape == (3, EMB.dim)

    def test_empty_candidates_raise(self):
        with pytest.raises(VocabularyError):
            self.embedder.candidate_matrix([])


class TestBuildCandidates:
    def test_structural_first(self):
        out = build_candidates(["which", "film"], ["year"])
        assert out[:len(STRUCTURAL_TOKENS)] == STRUCTURAL_TOKENS

    def test_dedup(self):
        out = build_candidates(["film", "film", "select"], ["film"])
        assert out.count("film") == 1
        assert out.count("select") == 1

    def test_extra_symbols_included(self):
        out = build_candidates(["which"], [], extra_symbols=("c3",))
        assert "c3" in out

    def test_all_inputs_present(self):
        inputs = ["which", "c1", "film", "v1", "jerzy"]
        out = build_candidates(inputs, ["year", "name"])
        for token in inputs + ["year", "name"]:
            assert token in out


def make_pairs():
    return [
        TrainingPair(["which", "c1", "film", "c2", "year", "v2", "1999", "?"],
                     ["select", "c1", "where", "c2", "=", "v2"],
                     ["film", "year"], ("c1", "v2", "c2")),
        TrainingPair(["count", "c1", "items", "c2", "color", "v2", "red"],
                     ["select", "count", "c1", "where", "c2", "=", "v2"],
                     ["item", "color"], ("c1", "v2", "c2")),
    ]


class TestAnnotatedSeq2Seq:
    def make_model(self, **kwargs):
        cfg = Seq2SeqConfig(hidden=12, attention_dim=12, **kwargs)
        return AnnotatedSeq2Seq(EMB, cfg)

    def test_fit_reduces_loss(self):
        model = self.make_model()
        losses = model.fit(make_pairs(), epochs=10, lr=3e-3)
        assert losses[-1] < losses[0]

    def test_overfits_tiny_set(self):
        model = self.make_model()
        pairs = make_pairs()
        model.fit(pairs, epochs=40, lr=4e-3)
        for pair in pairs:
            out = model.translate(pair.source, pair.header_tokens,
                                  pair.extra_symbols)
            assert out == pair.target

    def test_loss_rejects_unreachable_target(self):
        model = self.make_model()
        pair = TrainingPair(["a1"], ["zzz"], [], ())
        with pytest.raises(ModelError):
            model.loss(pair)

    def test_encode_empty_raises(self):
        with pytest.raises(ModelError):
            self.make_model().encode([])

    def test_fit_requires_pairs(self):
        with pytest.raises(ModelError):
            self.make_model().fit([])

    def test_no_copy_config(self):
        model = self.make_model(use_copy=False)
        losses = model.fit(make_pairs(), epochs=5, lr=3e-3)
        assert np.isfinite(losses).all()

    def test_beam_width_one_works(self):
        model = self.make_model()
        model.fit(make_pairs(), epochs=5, lr=3e-3)
        out = model.translate(make_pairs()[0].source, ["film", "year"],
                              ("c1", "v2", "c2"), beam_width=1)
        assert isinstance(out, list)
        assert EOS not in out

    def test_decode_length_bounded(self):
        model = self.make_model()
        model.fit(make_pairs(), epochs=2, lr=1e-3)
        out = model.translate(["a1", "b2"], [], ())
        assert len(out) <= model.config.max_decode_len

    def test_copy_map(self):
        copy_map = AnnotatedSeq2Seq._copy_map(
            ["select", "film", "v1"], ["film", "v1", "unknown_tok"])
        assert copy_map.shape == (3, 3)
        assert copy_map[1, 0] == 1.0 and copy_map[2, 1] == 1.0
        assert copy_map.sum() == 2.0

    def test_gradcheck_loss(self):
        """Analytic gradient of the full pipeline matches finite diffs."""
        model = self.make_model()
        pair = make_pairs()[0]
        model.zero_grad()
        model.loss(pair).backward()
        param = model.out_proj.weight
        idx = tuple(np.unravel_index(np.argmax(np.abs(param.grad)),
                                     param.grad.shape))
        eps = 1e-6
        orig = param.data[idx]
        param.data[idx] = orig + eps
        plus = model.loss(pair).item()
        param.data[idx] = orig - eps
        minus = model.loss(pair).item()
        param.data[idx] = orig
        numeric = (plus - minus) / (2 * eps)
        assert numeric == pytest.approx(param.grad[idx], rel=1e-4, abs=1e-7)
