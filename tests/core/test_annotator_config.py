"""Tests for annotator configuration switches and detection internals."""

import numpy as np
import pytest

from repro.core.annotator import Annotator, AnnotatorConfig, _try_float
from repro.core.mention import ClassifierConfig
from repro.data import generate_wikisql_style
from repro.sqlengine import Column, DataType, Table
from repro.text import KnowledgeBase, WordEmbeddings

EMB = WordEmbeddings(dim=32, seed=0)


@pytest.fixture(scope="module")
def trained():
    ds = generate_wikisql_style(seed=41, train_size=60, dev_size=10,
                                test_size=0)
    annotator = Annotator(EMB, classifier_config=ClassifierConfig(word_dim=32))
    annotator.fit(ds.train, classifier_epochs=1, value_epochs=15)
    return annotator, ds


def census_table():
    return Table("census", [Column("county"), Column("name"),
                            Column("population", DataType.REAL)],
                 [("mayo", "carrowteige", 356),
                  ("galway", "aran", 1225)])


class TestNumericRanges:
    def test_detects_numeric_columns(self):
        ranges = Annotator._numeric_ranges(census_table())
        assert "population" in ranges
        assert "county" not in ranges

    def test_margin_extends_range(self):
        ranges = Annotator._numeric_ranges(census_table())
        lo, hi = ranges["population"]
        assert lo < 356 and hi > 1225

    def test_numeric_strings_count(self):
        table = Table("t", [Column("v")], [("10",), ("20",)])
        assert "v" in Annotator._numeric_ranges(table)

    def test_mixed_column_not_numeric(self):
        table = Table("t", [Column("v")], [("10",), ("abc",)])
        assert Annotator._numeric_ranges(table) == {}

    def test_try_float(self):
        assert _try_float("3.5") == 3.5
        assert _try_float("mayo") is None


class TestValueDetection:
    def test_in_range_number_binds_to_numeric_column(self, trained):
        annotator, _ = trained
        tokens = "which county has population 356 ?".split()
        values = annotator._detect_values(tokens, census_table())
        numeric = [v for v in values if tokens[v.start:v.end] == ["356"]]
        assert numeric
        assert "population" in numeric[0].columns

    def test_out_of_range_number_not_bound(self, trained):
        annotator, _ = trained
        tokens = "which county has population 9999999 ?".split()
        values = annotator._detect_values(tokens, census_table())
        for candidate in values:
            if tokens[candidate.start:candidate.end] == ["9999999"]:
                assert "population" not in candidate.columns

    def test_exact_cell_match_detected(self, trained):
        annotator, _ = trained
        tokens = "what is the population of mayo ?".split()
        values = annotator._detect_values(tokens, census_table())
        surfaces = {" ".join(tokens[v.start:v.end]) for v in values}
        assert "mayo" in surfaces

    def test_value_spans_never_overlap(self, trained):
        annotator, ds = trained
        for example in ds.dev:
            values = annotator._detect_values(example.question_tokens,
                                              example.table)
            taken = set()
            for v in values:
                span = set(range(v.start, v.end))
                assert not span & taken
                taken |= span


class TestConfigSwitches:
    def test_disable_value_classifier(self, trained):
        annotator, ds = trained
        original = annotator.config
        annotator.config = AnnotatorConfig(use_value_classifier=False)
        try:
            example = ds.dev[0]
            annotation = annotator.annotate(example.question_tokens,
                                            example.table)
            assert annotation is not None  # pipeline still runs
        finally:
            annotator.config = original

    def test_disable_column_classifier(self, trained):
        annotator, ds = trained
        original = annotator.config
        annotator.config = AnnotatorConfig(use_column_classifier=False)
        try:
            example = ds.dev[0]
            annotation = annotator.annotate(example.question_tokens,
                                            example.table)
            # Only matcher-based mentions remain; all have explicit spans
            # or are implicit via values.
            assert annotation is not None
        finally:
            annotator.config = original

    def test_contrastive_influence_path(self, trained):
        annotator, ds = trained
        original = annotator.config
        annotator.config = AnnotatorConfig(use_contrastive_influence=True)
        try:
            example = ds.dev[0]
            annotation = annotator.annotate(example.question_tokens,
                                            example.table)
            assert annotation is not None
        finally:
            annotator.config = original

    def test_context_free_mode_skips_classifiers(self, trained):
        # mode="context_free" must behave like a trained annotator with
        # both classifiers switched off: only matcher mentions and exact
        # cell matches survive.  It is the serving layer's degraded rung.
        annotator, ds = trained
        original = annotator.config
        annotator.config = AnnotatorConfig(use_column_classifier=False,
                                           use_value_classifier=False)
        try:
            for example in ds.dev[:5]:
                reference = annotator.annotate(example.question_tokens,
                                               example.table)
                annotator.config = original
                degraded = annotator.annotate(example.question_tokens,
                                              example.table,
                                              mode="context_free")
                annotator.config = AnnotatorConfig(
                    use_column_classifier=False,
                    use_value_classifier=False)
                assert degraded.annotated_tokens() \
                    == reference.annotated_tokens()
        finally:
            annotator.config = original

    def test_exact_cell_matches_survive_context_free(self, trained):
        annotator, _ = trained
        tokens = "which county has name carrowteige ?".split()
        annotation = annotator.annotate(tokens, census_table(),
                                        mode="context_free")
        assert any(v.surface == "carrowteige" for v in annotation.values)

    def test_unknown_mode_rejected(self, trained):
        annotator, _ = trained
        from repro.errors import ModelError
        with pytest.raises(ModelError):
            annotator.annotate(["x"], census_table(), mode="turbo")

    def test_knowledge_base_adds_candidates(self):
        kb = KnowledgeBase()
        kb.add("population", mention_phrases=["how many people live in"])
        annotator = Annotator(EMB, knowledge=kb)
        tokens = "how many people live in mayo ?".split()
        spans = annotator._detect_columns(tokens, census_table(), set())
        assert "population" in spans
        start, end = spans["population"]
        assert (start, end) == (0, 5)


class TestSymbolAllocation:
    def test_indices_follow_first_reference_order(self, trained):
        annotator, _ = trained
        tokens = "what is the population of mayo ?".split()
        annotation = annotator.annotate(tokens, census_table())
        positions = []
        for ann in annotation.columns:
            if ann.span is not None:
                positions.append((ann.index, ann.span[0]))
        # Higher indices never start before lower indices.
        for (i1, p1), (i2, p2) in zip(positions, positions[1:]):
            if i1 < i2:
                assert p1 <= p2
