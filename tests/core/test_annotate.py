"""Tests for AnnotatedQuestion, annotated-SQL building, and recovery."""

import pytest

from repro.core import (
    AnnotatedQuestion,
    ColumnAnnotation,
    ValueAnnotation,
    build_annotated_sql,
    recover_sql,
)
from repro.errors import AnnotationError
from repro.sqlengine import Column, DataType, Table, parse_sql
from repro.text import tokenize


def films_table():
    return Table("films", [Column("film name"), Column("director"),
                           Column("actor"), Column("year", DataType.REAL)])


def figure1_annotation():
    """The paper's Figure 1(c) example as an AnnotatedQuestion."""
    tokens = tokenize("which film directed by jerzy antczak did "
                      "piotr adamczyk star in ?")
    return AnnotatedQuestion(
        question_tokens=tokens,
        table=films_table(),
        columns=[
            ColumnAnnotation("film name", 1, (1, 2)),       # film
            ColumnAnnotation("director", 2, (2, 4)),        # directed by
            ColumnAnnotation("actor", 3, (9, 10)),          # star
        ],
        values=[
            ValueAnnotation("director", 2, (4, 6), "jerzy antczak"),
            ValueAnnotation("actor", 3, (7, 9), "piotr adamczyk"),
        ],
    )


class TestAnnotatedTokens:
    def test_append_mode_keeps_text(self):
        ann = figure1_annotation()
        tokens = ann.annotated_tokens(append=True, header_encoding=False)
        assert tokens == ["which", "c1", "film", "c2", "directed", "by",
                          "v2", "jerzy", "antczak", "did", "v3", "piotr",
                          "adamczyk", "c3", "star", "in", "?"]

    def test_substitute_mode_replaces_text(self):
        ann = figure1_annotation()
        tokens = ann.annotated_tokens(append=False, header_encoding=False)
        assert tokens == ["which", "c1", "c2", "v2", "did", "v3", "c3",
                          "in", "?"]

    def test_header_encoding_appends_g_symbols(self):
        ann = figure1_annotation()
        tokens = ann.annotated_tokens(append=True, header_encoding=True)
        tail = tokens[-9:]
        assert tail == ["g1", "film", "name", "g2", "director", "g3",
                        "actor", "g4", "year"]

    def test_implicit_columns_emit_no_symbol(self):
        ann = figure1_annotation()
        ann.columns.append(ColumnAnnotation("year", 4, None))
        tokens = ann.annotated_tokens(append=True, header_encoding=False)
        assert "c4" not in tokens

    def test_symbol_lookup(self):
        ann = figure1_annotation()
        assert ann.column_for_symbol("c2") == "director"
        assert ann.column_for_symbol("g4") == "year"
        assert ann.value_for_symbol("v3") == "piotr adamczyk"

    def test_bad_symbols_raise(self):
        ann = figure1_annotation()
        with pytest.raises(AnnotationError):
            ann.column_for_symbol("c9")
        with pytest.raises(AnnotationError):
            ann.column_for_symbol("g9")
        with pytest.raises(AnnotationError):
            ann.value_for_symbol("v9")
        with pytest.raises(AnnotationError):
            ann.column_for_symbol("x1")

    def test_annotation_views(self):
        ann = figure1_annotation()
        assert ann.column_annotation("DIRECTOR").index == 2
        assert ann.column_annotation("missing") is None
        assert ann.value_annotation("actor").surface == "piotr adamczyk"
        assert ann.value_annotation("film name") is None


class TestBuildAnnotatedSql:
    def test_figure1_target(self):
        """Figure 1: sᵃ = SELECT c1 WHERE c2 = v2 AND c3 = v3."""
        ann = figure1_annotation()
        gold = parse_sql('SELECT film name WHERE director = "jerzy antczak" '
                         'AND actor = "piotr adamczyk"')
        target = build_annotated_sql(ann, gold)
        assert target == ["select", "c1", "where", "c2", "=", "v2",
                          "and", "c3", "=", "v3"]

    def test_unmentioned_column_uses_header_symbol(self):
        ann = figure1_annotation()
        gold = parse_sql('SELECT year WHERE director = "jerzy antczak"')
        target = build_annotated_sql(ann, gold, header_encoding=True)
        assert target[:2] == ["select", "g4"]

    def test_unmentioned_column_literal_without_headers(self):
        ann = figure1_annotation()
        gold = parse_sql('SELECT year WHERE director = "jerzy antczak"')
        target = build_annotated_sql(ann, gold, header_encoding=False)
        assert target[:2] == ["select", "year"]

    def test_undetected_value_stays_literal(self):
        ann = figure1_annotation()
        gold = parse_sql('SELECT film name WHERE year = 2002')
        target = build_annotated_sql(ann, gold)
        assert target == ["select", "c1", "where", "g4", "=", "2002"]

    def test_aggregate_token(self):
        ann = figure1_annotation()
        gold = parse_sql("SELECT COUNT(film name)")
        assert build_annotated_sql(ann, gold) == ["select", "count", "c1"]

    def test_value_annotation_must_match_surface(self):
        """A value symbol is only used when surfaces agree exactly."""
        ann = figure1_annotation()
        gold = parse_sql('SELECT film name WHERE director = "someone else"')
        target = build_annotated_sql(ann, gold)
        assert target == ["select", "c1", "where", "c2", "=",
                          "someone", "else"]


class TestRecovery:
    def test_roundtrip_figure1(self):
        ann = figure1_annotation()
        gold = parse_sql('SELECT film name WHERE director = "jerzy antczak" '
                         'AND actor = "piotr adamczyk"')
        target = build_annotated_sql(ann, gold)
        recovered = recover_sql(target, ann)
        assert recovered.query_match_equal(gold)

    def test_recovers_header_symbol(self):
        ann = figure1_annotation()
        query = recover_sql(["select", "g4", "where", "c2", "=", "v2"], ann)
        assert query.select_column == "year"
        assert query.conditions[0].value == "jerzy antczak"

    def test_recovers_aggregate(self):
        ann = figure1_annotation()
        query = recover_sql(["select", "count", "c1"], ann)
        assert query.aggregate.value == "COUNT"

    def test_recovers_numeric_literal(self):
        ann = figure1_annotation()
        query = recover_sql(["select", "c1", "where", "g4", "=", "2002"], ann)
        assert query.conditions[0].value == 2002

    def test_recovers_multiword_literals(self):
        ann = figure1_annotation()
        query = recover_sql(
            ["select", "c1", "where", "g4", ">", "some", "text"], ann)
        assert query.conditions[0].value == "some text"

    @pytest.mark.parametrize("bad", [
        [],
        ["where", "c1"],
        ["select"],
        ["select", "c1", "where"],
        ["select", "c1", "where", "c2"],
        ["select", "c1", "where", "c2", "=", ""][:5],
    ])
    def test_malformed_sequences_raise(self, bad):
        with pytest.raises(AnnotationError):
            recover_sql(bad, figure1_annotation())

    def test_recovery_never_hurts_well_formed_targets(self):
        """Round-tripping gold targets through recovery is lossless."""
        ann = figure1_annotation()
        for sql in ['SELECT film name WHERE director = "jerzy antczak"',
                    "SELECT MAX(year)",
                    'SELECT COUNT(film name) WHERE actor = "piotr adamczyk"']:
            gold = parse_sql(sql)
            target = build_annotated_sql(ann, gold)
            assert recover_sql(target, ann).query_match_equal(gold)
