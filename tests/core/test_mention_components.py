"""Tests for matcher, value classifier, resolution, and adversarial
mechanics (fast paths; trained-model integration lives in
test_pipeline.py)."""

import numpy as np
import pytest

from repro.core.mention import (
    ColumnMatcher,
    ColumnMentionClassifier,
    InfluenceProfile,
    ValueCandidate,
    ValueDetectionClassifier,
    candidate_spans,
    compute_influence,
    contrastive_profile,
    locate_mention,
    resolve_mentions,
)
from repro.errors import ModelError
from repro.text import KnowledgeBase, WordEmbeddings, tokenize

EMB = WordEmbeddings(dim=32, seed=0)


class TestColumnMatcher:
    def setup_method(self):
        self.matcher = ColumnMatcher(EMB)

    def test_exact_match(self):
        tokens = tokenize("what is the population of mayo ?")
        best = self.matcher.best(tokens, "population")
        assert best is not None
        assert (best.start, best.end) == (3, 4)
        assert best.method == "exact"

    def test_multiword_exact_match(self):
        tokens = tokenize("the english name of the place")
        best = self.matcher.best(tokens, "english name")
        assert (best.start, best.end) == (1, 3)

    def test_semantic_synonym_match(self):
        tokens = tokenize("which movie did he like ?")
        best = self.matcher.best(tokens, "film")
        assert best is not None
        assert tokens[best.start:best.end] == ["movie"]
        assert best.method == "semantic"

    def test_edit_distance_match(self):
        # "best actress of year 2011" vs column "best actor 2011" spans
        tokens = tokenize("who is the best actres of 2011 ?")
        found = self.matcher.find(tokens, "best actres of 2011")
        assert found  # exact; now try a typo'd column
        found = self.matcher.find(tokens, "best actress of 2011")
        assert any(c.method in ("edit", "exact") for c in found)

    def test_no_match_returns_none(self):
        tokens = tokenize("completely unrelated words here")
        assert self.matcher.best(tokens, "launch date") is None

    def test_knowledge_base_phrases(self):
        kb = KnowledgeBase()
        kb.add("population", mention_phrases=["how many people live in"])
        matcher = ColumnMatcher(EMB, knowledge=kb)
        tokens = tokenize("how many people live in mayo ?")
        best = matcher.best(tokens, "population")
        assert best is not None
        assert best.method in ("knowledge", "exact")
        assert (best.start, best.end) == (0, 5)

    def test_knowledge_describing_expressions(self):
        kb = KnowledgeBase()
        kb.add("price", describing_expressions=["level off"])
        matcher = ColumnMatcher(EMB, knowledge=kb)
        tokens = tokenize("when did it level off ?")
        best = matcher.best(tokens, "price")
        assert best is not None
        assert tokens[best.start:best.end] == ["level", "off"]

    def test_candidates_sorted_best_first(self):
        tokens = tokenize("the population of the county")
        found = self.matcher.find(tokens, "population")
        assert found[0].method == "exact"

    def test_find_cell_values(self):
        tokens = tokenize("films by jerzy antczak in 2002")
        cands = self.matcher.find_cell_values(
            tokens, "director", ["jerzy antczak", "nana djordjadze"])
        assert len(cands) == 1
        assert (cands[0].start, cands[0].end) == (2, 4)

    def test_find_cell_values_numeric(self):
        tokens = tokenize("which one has 2002 ?")
        cands = self.matcher.find_cell_values(tokens, "year", [2002, 1999])
        assert len(cands) == 1


class TestCandidateSpans:
    def test_excludes_stop_words(self):
        spans = candidate_spans(tokenize("the mayo county"), max_length=3)
        assert (0, 1) not in spans          # "the"
        assert (1, 2) in spans and (1, 3) in spans

    def test_excludes_punctuation(self):
        spans = candidate_spans(tokenize("mayo ?"), max_length=2)
        assert spans == [(0, 1)]

    def test_max_length_respected(self):
        spans = candidate_spans(["a1", "b2", "c3", "d4"], max_length=2)
        assert all(e - s <= 2 for s, e in spans)

    def test_empty(self):
        assert candidate_spans([], 3) == []


class TestValueClassifier:
    def test_learns_person_vs_number_columns(self):
        clf = ValueDetectionClassifier(EMB, hidden=16, seed=0)
        rng = np.random.default_rng(0)
        people = ["john smith", "mary johnson", "piotr adamczyk",
                  "anna larsen", "luca rossi", "peter novak"]
        numbers = [str(n) for n in rng.integers(100, 9000, size=6)]
        person_stats = np.mean([clf.span_stats(tokenize(p)) for p in people],
                               axis=0)
        number_stats = np.mean([clf.span_stats(tokenize(n)) for n in numbers],
                               axis=0)
        rows = []
        for p in people:
            rows.append((clf.span_stats(tokenize(p)), person_stats, 1.0))
            rows.append((clf.span_stats(tokenize(p)), number_stats, 0.0))
        for n in numbers:
            rows.append((clf.span_stats(tokenize(n)), number_stats, 1.0))
            rows.append((clf.span_stats(tokenize(n)), person_stats, 0.0))
        clf.fit(rows, epochs=60)
        # Counterfactual person name (never in training).
        new_person = clf.span_stats(tokenize("greta fischer"))
        assert clf.predict_proba(new_person, person_stats) > \
            clf.predict_proba(new_person, number_stats)

    def test_feature_shape_validation(self):
        clf = ValueDetectionClassifier(EMB)
        with pytest.raises(ModelError):
            clf.features(np.zeros(8), np.zeros(32))

    def test_fit_requires_rows(self):
        with pytest.raises(ModelError):
            ValueDetectionClassifier(EMB).fit([])

    def test_predict_in_unit_interval(self):
        clf = ValueDetectionClassifier(EMB)
        p = clf.predict_proba(np.zeros(32), np.ones(32))
        assert 0.0 < p < 1.0


class TestResolution:
    def test_paper_example(self):
        """Jerzy→director, Piotr→actor by dependency closeness."""
        tokens = tokenize("which film directed by jerzy antczak did "
                          "piotr adamczyk star in ?")
        column_mentions = {"film name": (1, 2), "director": (2, 4),
                           "actor": (9, 10)}
        values = [
            ValueCandidate(4, 6, ("director", "actor")),
            ValueCandidate(7, 9, ("director", "actor")),
        ]
        resolved = resolve_mentions(tokens, column_mentions, values)
        assignment = {(p.value_start, p.value_end): p.column for p in resolved}
        assert assignment[(4, 6)] == "director"
        assert assignment[(7, 9)] == "actor"

    def test_each_column_gets_at_most_one_value(self):
        tokens = tokenize("a b c d e")
        column_mentions = {"x": (0, 1)}
        values = [ValueCandidate(2, 3, ("x",)), ValueCandidate(4, 5, ("x",))]
        resolved = resolve_mentions(tokens, column_mentions, values)
        assert len(resolved) == 1

    def test_overlapping_spans_not_paired(self):
        tokens = tokenize("alpha beta gamma")
        column_mentions = {"x": (0, 2)}
        values = [ValueCandidate(1, 2, ("x",))]  # overlaps the column span
        assert resolve_mentions(tokens, column_mentions, values) == []

    def test_implicit_mention_anchoring(self):
        tokens = tokenize("how many people live in mayo ?")
        column_mentions = {"county": (5, 5)}  # implicit at position 5
        values = [ValueCandidate(5, 6, ("county",))]
        resolved = resolve_mentions(tokens, column_mentions, values)
        assert resolved == []  # anchor overlaps its own value span

    def test_scores_break_ties(self):
        tokens = tokenize("x1 v v x2")
        column_mentions = {"a": (0, 1), "b": (3, 4)}
        values = [ValueCandidate(1, 3, ("a", "b"), (0.2, 0.9))]
        resolved = resolve_mentions(tokens, column_mentions, values)
        assert len(resolved) == 1

    def test_empty_inputs(self):
        assert resolve_mentions(["x"], {}, []) == []


class TestAdversarialMechanics:
    def setup_method(self):
        self.clf = ColumnMentionClassifier(EMB)
        self.tokens = tokenize("which film did he star in ?")

    def test_influence_shapes(self):
        profile = compute_influence(self.clf, self.tokens, ["film"])
        assert len(profile.tokens) == len(self.tokens)
        assert profile.word_influence.shape == (len(self.tokens),)
        assert profile.char_influence.shape == (len(self.tokens),)
        assert (profile.word_influence >= 0).all()

    def test_alpha_beta_weighting(self):
        word_only = compute_influence(self.clf, self.tokens, ["film"],
                                      alpha=1.0, beta=0.0)
        np.testing.assert_allclose(word_only.combined,
                                   word_only.word_influence)
        char_only = compute_influence(self.clf, self.tokens, ["film"],
                                      alpha=0.0, beta=1.0)
        np.testing.assert_allclose(char_only.combined,
                                   char_only.char_influence)

    @pytest.mark.parametrize("norm", ["l1", "l2", "linf"])
    def test_norms(self, norm):
        profile = compute_influence(self.clf, self.tokens, ["film"],
                                    norm=norm)
        assert np.isfinite(profile.combined).all()

    def test_l1_dominates_linf(self):
        l1 = compute_influence(self.clf, self.tokens, ["film"], norm="l1")
        linf = compute_influence(self.clf, self.tokens, ["film"], norm="linf")
        assert (l1.combined >= linf.combined - 1e-12).all()

    def test_unknown_norm_raises(self):
        with pytest.raises(ModelError):
            compute_influence(self.clf, self.tokens, ["film"], norm="l3")

    def test_locate_returns_valid_span(self):
        profile = compute_influence(self.clf, self.tokens, ["film"])
        start, end = locate_mention(profile, max_length=3)
        assert 0 <= start < end <= len(self.tokens)
        assert end - start <= 3

    def test_locate_skips_stop_words_and_punct(self):
        profile = InfluenceProfile(
            ["the", "film", "?"], np.array([5.0, 1.0, 9.0]),
            np.zeros(3), np.array([5.0, 1.0, 9.0]))
        start, end = locate_mention(profile, max_length=1)
        assert (start, end) == (1, 2)

    def test_locate_respects_blocked(self):
        profile = InfluenceProfile(
            ["alpha", "beta", "gamma"], np.array([1.0, 9.0, 2.0]),
            np.zeros(3), np.array([1.0, 9.0, 2.0]))
        start, end = locate_mention(profile, max_length=1, blocked={1})
        assert (start, end) == (2, 3)

    def test_locate_empty_raises(self):
        profile = InfluenceProfile([], np.zeros(0), np.zeros(0), np.zeros(0))
        with pytest.raises(ModelError):
            locate_mention(profile)

    def test_top_token(self):
        profile = InfluenceProfile(["a1", "b2"], np.zeros(2), np.zeros(2),
                                   np.array([0.1, 0.9]))
        assert profile.top_token() == "b2"

    def test_contrastive_profile(self):
        base = InfluenceProfile(["a", "b"], np.zeros(2), np.zeros(2),
                                np.array([2.0, 2.0]))
        other = InfluenceProfile(["a", "b"], np.zeros(2), np.zeros(2),
                                 np.array([2.0, 0.0]))
        out = contrastive_profile(base, [other])
        np.testing.assert_allclose(out.combined, [0.0, 2.0])

    def test_contrastive_no_background_identity(self):
        base = InfluenceProfile(["a"], np.zeros(1), np.zeros(1),
                                np.array([1.0]))
        assert contrastive_profile(base, []) is base


class TestClassifierMechanics:
    def test_forward_validates_inputs(self):
        clf = ColumnMentionClassifier(EMB)
        with pytest.raises(ModelError):
            clf([], ["col"])
        with pytest.raises(ModelError):
            clf(["word"], [])

    def test_embedding_dim_mismatch_raises(self):
        with pytest.raises(ModelError):
            ColumnMentionClassifier(WordEmbeddings(dim=16))

    def test_fit_requires_pairs(self):
        with pytest.raises(ModelError):
            ColumnMentionClassifier(EMB).fit([])

    def test_predict_proba_in_unit_interval(self):
        clf = ColumnMentionClassifier(EMB)
        p = clf.predict_proba(tokenize("a question here"), ["column"])
        assert 0.0 < p < 1.0

    def test_long_columns_truncated(self):
        clf = ColumnMentionClassifier(EMB)
        logit, _ = clf(tokenize("a question"), ["a", "b", "c", "d", "e", "f"])
        assert logit.shape == (1,)

    def test_capture_leaves_have_grads_after_backward(self):
        clf = ColumnMentionClassifier(EMB)
        profile = compute_influence(clf, tokenize("some words here"), ["col"])
        assert profile.combined.sum() > 0
