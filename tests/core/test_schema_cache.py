"""Tests for the fingerprint-keyed schema-encoding cache."""

import numpy as np
import pytest

from repro.core import NLIDB, SchemaEncoding, build_schema_encoding
from repro.core.annotator import Annotator
from repro.core.mention import ClassifierConfig
from repro.core.seq2seq.vocab import STRUCTURAL_TOKENS, is_symbol
from repro.data import generate_wikisql_style
from repro.serving import TranslationService
from repro.sqlengine import Table
from repro.text import WordEmbeddings


@pytest.fixture()
def table(corpus):
    return corpus[0].table


class TestSchemaCache:
    def test_miss_then_hit_same_object(self, nlidb, table):
        annotator = nlidb.annotator
        annotator._schema_cache.clear()
        first, status1 = annotator.schema_encoding(table)
        second, status2 = annotator.schema_encoding(table)
        assert (status1, status2) == ("miss", "hit")
        assert first is second

    def test_recreated_equal_table_hits(self, nlidb, table):
        annotator = nlidb.annotator
        annotator._schema_cache.clear()
        _, status1 = annotator.schema_encoding(table)
        clone = Table(table.name, columns=list(table.columns),
                      rows=[tuple(row) for row in table.rows])
        assert clone is not table
        _, status2 = annotator.schema_encoding(clone)
        assert (status1, status2) == ("miss", "hit")

    def test_changed_data_misses(self, nlidb, table):
        annotator = nlidb.annotator
        annotator._schema_cache.clear()
        annotator.schema_encoding(table)
        edited = Table(table.name, columns=list(table.columns),
                       rows=[tuple(row) for row in table.rows[:-1]])
        _, status = annotator.schema_encoding(edited)
        assert status == "miss"

    def test_peek_never_builds(self, nlidb, table):
        annotator = nlidb.annotator
        annotator._schema_cache.clear()
        misses = annotator._schema_cache.misses
        assert annotator.peek_schema_encoding(table) is None
        assert annotator._schema_cache.misses == misses
        annotator.schema_encoding(table)
        assert annotator.peek_schema_encoding(table) is not None

    def test_stats_shape(self, nlidb, table):
        annotator = nlidb.annotator
        annotator._schema_cache.clear()
        annotator.schema_encoding(table)
        annotator.schema_encoding(table)
        stats = annotator.schema_cache_stats()
        assert stats["size"] == 1
        assert stats["misses"] >= 1 and stats["hits"] >= 1
        assert 0.0 < stats["hit_rate"] <= 1.0


class TestSchemaEncodingContents:
    def test_matches_nlidb_header_tokens(self, nlidb, table):
        encoding, _ = nlidb.annotator.schema_encoding(table)
        assert encoding.header_tokens == NLIDB.header_tokens(table)
        assert encoding.column_names == list(table.column_names)

    def test_columns_encoded_when_classifier_trained(self, nlidb, table):
        encoding, _ = nlidb.annotator.schema_encoding(table)
        assert encoding.columns is not None
        assert len(encoding.columns) == len(table.column_names)

    def test_token_vectors_cover_candidates_without_symbols(self, nlidb,
                                                            table):
        encoding, _ = nlidb.annotator.schema_encoding(table)
        for token in STRUCTURAL_TOKENS:
            if not is_symbol(token):
                assert token in encoding.token_vectors
        for token in encoding.header_tokens:
            assert token in encoding.token_vectors
            np.testing.assert_array_equal(
                encoding.token_vectors[token],
                nlidb.embeddings.vector(token))
        assert not any(is_symbol(t) for t in encoding.token_vectors)

    def test_encoded_subset_selects_named_columns(self, nlidb, table):
        encoding, _ = nlidb.annotator.schema_encoding(table)
        names = list(table.column_names)[:2]
        subset = encoding.encoded_subset(names)
        assert len(subset) == 2
        assert subset.tokens == [encoding.column_tokens[n] for n in names]

    def test_build_is_plain_numpy(self, nlidb, table):
        """The artifact must not pin an autodiff graph in the cache."""
        encoding = build_schema_encoding(nlidb.annotator, table)
        assert isinstance(encoding, SchemaEncoding)
        for state in encoding.columns.states:
            assert isinstance(state, np.ndarray)
        assert isinstance(encoding.columns.units, np.ndarray)


class TestInvalidation:
    def test_fit_drops_cached_encodings(self):
        dataset = generate_wikisql_style(seed=5, train_size=6, dev_size=0,
                                         test_size=0, rows_per_table=4)
        emb = WordEmbeddings(dim=16, seed=1)
        annotator = Annotator(emb,
                              classifier_config=ClassifierConfig(
                                  word_dim=16, hidden=8))
        annotator.fit(dataset.train, classifier_epochs=1, value_epochs=2)
        table = dataset.train[0].table
        annotator.schema_encoding(table)
        assert annotator.peek_schema_encoding(table) is not None
        annotator.fit(dataset.train, classifier_epochs=1, value_epochs=2)
        assert annotator.peek_schema_encoding(table) is None


class TestServingVisibility:
    def test_service_stats_expose_schema_cache(self, nlidb, corpus):
        service = TranslationService(nlidb, cache_size=8)
        nlidb.annotator._schema_cache.clear()
        example = corpus[0]
        service.translate(example.question_tokens, example.table)
        service.translate(list(example.question_tokens) + ["please"],
                          example.table)
        stats = service.stats()["schema_cache"]
        assert stats["misses"] >= 1
        assert stats["hits"] >= 1
        assert stats["hit_rate"] > 0.0
