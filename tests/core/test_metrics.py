"""Tests for the evaluation metrics."""

import pytest

from repro.core import EvalResult, annotated_match, evaluate, mention_detection_accuracy
from repro.data import Example
from repro.sqlengine import Column, DataType, Table, parse_sql


def example(sql='SELECT name WHERE city = "mayo"'):
    table = Table("t", [Column("name"), Column("city"),
                        Column("pop", DataType.REAL)],
                  [("anna", "mayo", 10), ("bob", "cork", 20)])
    return Example(question="who lives in mayo ?", table=table,
                   query=parse_sql(sql))


class TestEvaluate:
    def test_perfect_predictions(self):
        ex = example()
        result = evaluate([ex.query], [ex])
        assert result.acc_lf == result.acc_qm == result.acc_ex == 1.0

    def test_none_prediction_counts_wrong(self):
        result = evaluate([None], [example()])
        assert result.acc_lf == result.acc_qm == result.acc_ex == 0.0

    def test_condition_order_distinguishes_lf_from_qm(self):
        ex = example('SELECT name WHERE city = "mayo" AND pop = 10')
        pred = parse_sql('SELECT name WHERE pop = 10 AND city = "mayo"')
        result = evaluate([pred], [ex])
        assert result.acc_lf == 0.0
        assert result.acc_qm == 1.0
        assert result.acc_ex == 1.0

    def test_execution_equivalence_without_query_match(self):
        # Different queries, same result set on this table.
        ex = example('SELECT name WHERE city = "mayo"')
        pred = parse_sql("SELECT name WHERE pop = 10")
        result = evaluate([pred], [ex])
        assert result.acc_qm == 0.0
        assert result.acc_ex == 1.0

    def test_invalid_column_fails_execution(self):
        pred = parse_sql("SELECT nothing")
        result = evaluate([pred], [example()])
        assert result.acc_ex == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            evaluate([], [example()])

    def test_empty_set(self):
        result = evaluate([], [])
        assert result.n == 0

    def test_as_row_format(self):
        row = EvalResult(0.5, 0.6, 0.7, 10).as_row()
        assert "50.0%" in row and "60.0%" in row and "70.0%" in row


class TestMentionDetectionAccuracy:
    def test_matching_where_clause(self):
        ex = example('SELECT name WHERE city = "mayo"')
        pred = parse_sql('SELECT pop WHERE city = "MAYO"')  # select differs
        assert mention_detection_accuracy([pred], [ex]) == 1.0

    def test_wrong_value(self):
        ex = example()
        pred = parse_sql('SELECT name WHERE city = "cork"')
        assert mention_detection_accuracy([pred], [ex]) == 0.0

    def test_none_counts_zero(self):
        assert mention_detection_accuracy([None], [example()]) == 0.0

    def test_empty(self):
        assert mention_detection_accuracy([], []) == 0.0


class TestAnnotatedMatch:
    def test_exact(self):
        assert annotated_match(["select", "c1", "where", "c2", "=", "v2"],
                               ["select", "c1", "where", "c2", "=", "v2"])

    def test_condition_order_ignored(self):
        a = ["select", "c1", "where", "c2", "=", "v2", "and", "c3", "=", "v3"]
        b = ["select", "c1", "where", "c3", "=", "v3", "and", "c2", "=", "v2"]
        assert annotated_match(a, b)

    def test_symbol_mismatch_fails(self):
        """c1 vs g1 differ pre-recovery even if they resolve alike."""
        assert not annotated_match(["select", "c1"], ["select", "g1"])

    def test_malformed_never_matches(self):
        assert not annotated_match(["where"], ["where"])

    def test_no_where(self):
        assert annotated_match(["select", "max", "c1"],
                               ["select", "max", "c1"])
