"""Property-based tests: annotation targets always recover to gold.

For any annotation state and any gold query over the table, the
training-target construction followed by deterministic recovery must be
information-preserving (canonically equal to gold).  This is the
invariant that guarantees the seq2seq's supervision is lossless.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnnotatedQuestion, ColumnAnnotation, ValueAnnotation
from repro.core import build_annotated_sql, recover_sql
from repro.sqlengine import (
    Aggregate,
    Column,
    Condition,
    DataType,
    Operator,
    Query,
    Table,
)

COLUMN_NAMES = ["alpha", "beta", "gamma", "delta"]
WORDS = ["mayo", "cork", "film", "quill", "harbor", "356", "2006"]


@st.composite
def annotation_and_query(draw):
    n_cols = draw(st.integers(2, 4))
    names = COLUMN_NAMES[:n_cols]
    table = Table("t", [Column(n, DataType.TEXT) for n in names])

    # Question tokens: a pool of words; mentions point into it.
    tokens = draw(st.lists(st.sampled_from(WORDS), min_size=4, max_size=8))

    # Randomly annotate a subset of columns.
    annotated = draw(st.lists(st.sampled_from(names), unique=True,
                              max_size=n_cols))
    columns = []
    values = []
    for i, name in enumerate(annotated, start=1):
        explicit = draw(st.booleans())
        span = None
        if explicit:
            start = draw(st.integers(0, len(tokens) - 1))
            span = (start, start + 1)
        columns.append(ColumnAnnotation(name, i, span))
        if draw(st.booleans()):
            vstart = draw(st.integers(0, len(tokens) - 1))
            values.append(ValueAnnotation(name, i, (vstart, vstart + 1),
                                          tokens[vstart]))
    annotation = AnnotatedQuestion(question_tokens=tokens, table=table,
                                   columns=columns, values=values)

    # A gold query over the table's columns.
    select = draw(st.sampled_from(names))
    aggregate = draw(st.sampled_from(list(Aggregate)))
    n_conds = draw(st.integers(0, 2))
    cond_cols = draw(st.lists(st.sampled_from(names), unique=True,
                              min_size=n_conds, max_size=n_conds))
    conditions = [Condition(c, Operator.EQ, draw(st.sampled_from(WORDS)))
                  for c in cond_cols]
    return annotation, Query(select, aggregate, conditions)


class TestLosslessSupervision:
    @given(annotation_and_query())
    @settings(max_examples=120, deadline=None)
    def test_build_then_recover_matches_gold(self, pair):
        annotation, query = pair
        target = build_annotated_sql(annotation, query, header_encoding=True)
        recovered = recover_sql(target, annotation)
        assert recovered.query_match_equal(query), (target, query.to_sql())

    @given(annotation_and_query())
    @settings(max_examples=60, deadline=None)
    def test_build_without_headers_still_recovers(self, pair):
        annotation, query = pair
        target = build_annotated_sql(annotation, query, header_encoding=False)
        recovered = recover_sql(target, annotation)
        assert recovered.query_match_equal(query)

    @given(annotation_and_query())
    @settings(max_examples=60, deadline=None)
    def test_annotated_tokens_well_formed(self, pair):
        annotation, _query = pair
        for append in (True, False):
            for headers in (True, False):
                tokens = annotation.annotated_tokens(
                    append=append, header_encoding=headers)
                assert all(isinstance(t, str) and t for t in tokens)
                if headers:
                    n_cols = len(annotation.table.columns)
                    assert f"g{n_cols}" in tokens
