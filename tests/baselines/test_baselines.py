"""Tests for the Seq2SQL-, SQLNet-, and TypeSQL-like baselines."""

import pytest

from repro.baselines import Seq2SQLBaseline, SQLNetBaseline, TypeSQLBaseline
from repro.core import evaluate
from repro.core.seq2seq.model import Seq2SeqConfig
from repro.data import generate_wikisql_style
from repro.errors import ModelError
from repro.sqlengine import Aggregate
from repro.text import WordEmbeddings

EMB = WordEmbeddings(dim=32, seed=0)


@pytest.fixture(scope="module")
def dataset():
    return generate_wikisql_style(seed=21, train_size=60, dev_size=20,
                                  test_size=0, rows_per_table=8)


@pytest.fixture(scope="module")
def sqlnet(dataset):
    return SQLNetBaseline(EMB).fit(dataset.train, epochs=15)


@pytest.fixture(scope="module")
def typesql(dataset):
    return TypeSQLBaseline(EMB).fit(dataset.train, epochs=15)


class TestSQLNet:
    def test_produces_sketch_queries(self, sqlnet, dataset):
        for ex in dataset.dev[:10]:
            query = sqlnet.translate(ex.question_tokens, ex.table)
            assert query is not None
            assert ex.table.has_column(query.select_column)
            assert len(query.conditions) <= 2

    def test_beats_chance(self, sqlnet, dataset):
        preds = [sqlnet.translate(e.question_tokens, e.table)
                 for e in dataset.dev]
        # Select-column accuracy alone should beat uniform (1/5).
        hits = sum(p.select_column.lower() == e.query.select_column.lower()
                   for p, e in zip(preds, dataset.dev))
        assert hits / len(dataset.dev) > 0.3

    def test_aggregate_vocabulary(self, sqlnet, dataset):
        ex = dataset.dev[0]
        query = sqlnet.translate(ex.question_tokens, ex.table)
        assert isinstance(query.aggregate, Aggregate)

    def test_untrained_raises(self, dataset):
        with pytest.raises(ModelError):
            SQLNetBaseline(EMB).translate("q", dataset.dev[0].table)

    def test_fit_requires_examples(self):
        with pytest.raises(ModelError):
            SQLNetBaseline(EMB).fit([])


class TestTypeSQL:
    def test_content_sensitive_flag(self, typesql):
        assert typesql.content_sensitive

    def test_produces_queries(self, typesql, dataset):
        for ex in dataset.dev[:10]:
            query = typesql.translate(ex.question_tokens, ex.table)
            assert query is not None

    def test_type_evidence_found_for_in_table_values(self, typesql, dataset):
        for ex in dataset.dev:
            for cond in ex.query.conditions:
                cells = {str(v).lower()
                         for v in ex.table.column_values(cond.column)}
                if str(cond.value).lower() in cells:
                    evidence = typesql._content_evidence(
                        ex.question_tokens, ex.table)
                    assert evidence
                    return
        pytest.skip("no in-table value in this sample")

    def test_typesql_mention_accuracy_at_least_sqlnet(self, sqlnet, typesql,
                                                      dataset):
        """Content sensitivity should not hurt WHERE-clause detection."""
        from repro.core import mention_detection_accuracy
        sn = [sqlnet.translate(e.question_tokens, e.table)
              for e in dataset.dev]
        ts = [typesql.translate(e.question_tokens, e.table)
              for e in dataset.dev]
        assert (mention_detection_accuracy(ts, dataset.dev)
                >= mention_detection_accuracy(sn, dataset.dev) - 0.10)


class TestSeq2SQL:
    @pytest.fixture(scope="class")
    def seq2sql(self, dataset):
        model = Seq2SQLBaseline(EMB, Seq2SeqConfig(hidden=24,
                                                   attention_dim=24))
        return model.fit(dataset.train, epochs=4)

    def test_translate_runs(self, seq2sql, dataset):
        ex = dataset.dev[0]
        query = seq2sql.translate(ex.question_tokens, ex.table)
        assert query is None or query.select_column

    def test_evaluation_runs(self, seq2sql, dataset):
        preds = [seq2sql.translate(e.question_tokens, e.table)
                 for e in dataset.dev]
        result = evaluate(preds, dataset.dev)
        assert 0.0 <= result.acc_qm <= 1.0

    def test_untrained_raises(self, dataset):
        with pytest.raises(ModelError):
            Seq2SQLBaseline(EMB).translate("q", dataset.dev[0].table)
