"""Report assembly over real model rungs (satellite 4).

Runs the full harness — suite, gate, two ladder rungs — over a small
corpus slice with the session-trained model, and pins the degraded-rung
contract: ``mode="context_free"`` is scored under attack like any other
config but can never contribute transfer curves.
"""

from __future__ import annotations

import json

import pytest

from repro.eval import (
    ModelRung,
    TransferPoint,
    admit_suite,
    build_report,
    generate_suite,
    score_suite,
    standard_attacks,
)

SLICE = 8


@pytest.fixture(scope="module")
def harness(nlidb, corpus):
    examples = corpus[:SLICE]
    attacks = standard_attacks(nlidb.annotator.column_classifier)
    suite = generate_suite(examples, attacks, seed=3)
    admission = admit_suite(suite)
    rungs = [
        ModelRung("full_adversarial", nlidb, mode="full"),
        ModelRung("matcher_only", nlidb, mode="context_free",
                  transfer_eligible=False),
    ]
    report = build_report(rungs, examples, admission, suite, seed=3)
    return rungs, suite, admission, report


def test_report_covers_both_rungs(harness):
    _, _, _, report = harness
    assert set(report["configs"]) == {"full_adversarial", "matcher_only"}
    assert report["configs"]["full_adversarial"]["mode"] == "full"
    degraded = report["configs"]["matcher_only"]
    assert degraded["mode"] == "context_free"
    assert degraded["transfer_eligible"] is False
    assert report["seed"] == 3
    assert report["transfer"] == {}


def test_clean_and_attack_sections_consistent(harness):
    _, suite, admission, report = harness
    assert report["suite"]["corpus_size"] == SLICE
    assert report["suite"]["generated"] == len(suite.variants)
    assert report["suite"]["generated"] == \
        report["suite"]["admitted"] + report["suite"]["rejected"]
    for config in report["configs"].values():
        clean = config["clean"]
        assert clean["n"] == SLICE
        for attack, row in config["attacks"].items():
            assert row["n"] >= 1
            assert row["delta_qm"] == pytest.approx(
                clean["acc_qm"] - row["acc_qm"])
            assert row["delta_ex"] == pytest.approx(
                clean["acc_ex"] - row["acc_ex"])
            assert attack in report["suite"]["per_attack"]


def test_degraded_rung_is_scored_under_attack(harness):
    """The ladder's availability story needs the degraded numbers."""
    rungs, _, admission, report = harness
    degraded_rung = rungs[1]
    scored = score_suite(degraded_rung, admission)
    assert scored, "degraded rung produced no attack scores"
    assert set(report["configs"]["matcher_only"]["attacks"]) == set(scored)


def test_degraded_rung_excluded_from_transfer(harness):
    rungs, suite, admission, _ = harness
    curves = {"ships": [TransferPoint(shots=5, acc_qm=0.5, acc_ex=0.5,
                                      n_eval=4)]}
    with pytest.raises(ValueError, match="not transfer-eligible"):
        build_report(rungs, [], admission, suite,
                     transfer={"matcher_only": curves})
    report = build_report(rungs, [], admission, suite,
                          transfer={"full_adversarial": curves})
    assert report["transfer"] == {
        "full_adversarial": {"ships": [
            {"shots": 5, "acc_qm": 0.5, "acc_ex": 0.5, "n_eval": 4}]}}


def test_report_is_json_serializable(harness):
    _, _, _, report = harness
    payload = json.loads(json.dumps(report, sort_keys=True))
    assert payload["configs"].keys() == report["configs"].keys()
