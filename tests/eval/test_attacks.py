"""Attack-generator behavior and the seeded determinism contract.

Satellite 2: same seed over the same corpus must produce a
byte-identical variant set — across runs and across fresh attack
instances — mirroring the ``FaultInjector`` seeding contract.  The
per-family tests pin what each generator is allowed to change.
"""

from __future__ import annotations

from repro.eval import generate_suite, standard_attacks
from repro.eval.attacks import OPERATOR_CUES
from repro.text.edit_distance import levenshtein
from repro.text.lexicon import synonym_group_of
from repro.text.stopwords import is_stop_word
from repro.text.tokenizer import tokenize

from .conftest import SUITE_SEED


def _fresh_attacks(nlidb):
    return standard_attacks(nlidb.annotator.column_classifier)


def _variants(attack_suite, name):
    grouped = attack_suite.by_attack()
    assert grouped.get(name), f"suite generated no {name!r} variants"
    return grouped[name]


# ----------------------------------------------------------------------
# Determinism contract
# ----------------------------------------------------------------------


def test_same_seed_is_byte_identical(nlidb, corpus, attack_suite):
    again = generate_suite(corpus, _fresh_attacks(nlidb), seed=SUITE_SEED)
    assert again.signature() == attack_suite.signature()
    assert again.skipped == attack_suite.skipped
    assert again.corpus_size == attack_suite.corpus_size


def test_different_seed_differs(nlidb, corpus, attack_suite):
    other = generate_suite(corpus, _fresh_attacks(nlidb),
                           seed=SUITE_SEED + 1)
    assert other.signature() != attack_suite.signature()


def test_prefix_corpus_reproduces_prefix_variants(nlidb, corpus,
                                                  attack_suite):
    """Per-(attack, example) RNGs: a corpus prefix yields a variant
    subset of the full run, untouched by how many pairs follow."""
    small = generate_suite(corpus[:10], _fresh_attacks(nlidb),
                           seed=SUITE_SEED)
    full_signatures = {v.signature() for v in attack_suite.variants}
    assert small.variants
    assert all(v.signature() in full_signatures for v in small.variants)


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------


def test_every_pair_is_variant_or_skip(attack_suite, corpus):
    assert len(attack_suite.skipped) == 6  # all six families ran
    total = len(attack_suite.variants) + sum(attack_suite.skipped.values())
    assert total == len(attack_suite.skipped) * len(corpus)
    assert attack_suite.corpus_size == len(corpus)


# ----------------------------------------------------------------------
# Per-family behavior
# ----------------------------------------------------------------------


def test_paraphrase_substitutes_one_synonym(attack_suite):
    for v in _variants(attack_suite, "paraphrase"):
        assert v.preserves_query
        assert len(v.tokens) == len(v.origin_tokens)
        diff = [i for i, (new, old)
                in enumerate(zip(v.tokens, v.origin_tokens)) if new != old]
        assert len(diff) == 1, "exactly one token substituted"
        i = diff[0]
        assert synonym_group_of(v.tokens[i]) == \
            synonym_group_of(v.origin_tokens[i])
        assert v.origin_tokens[i] not in OPERATOR_CUES


def test_value_swap_updates_one_condition_from_table(attack_suite):
    for v in _variants(attack_suite, "value_swap"):
        assert not v.preserves_query
        assert v.tokens != v.origin_tokens
        assert v.query.select_column == v.origin_query.select_column
        assert v.query.aggregate == v.origin_query.aggregate
        changed = [(new, old) for new, old
                   in zip(v.query.conditions, v.origin_query.conditions)
                   if new != old]
        assert len(changed) == 1, "exactly one condition rewritten"
        new, old = changed[0]
        assert new.column == old.column
        assert new.operator is old.operator
        assert new.value != old.value
        column_index = v.table.column_index(new.column)
        assert new.value in [row[column_index] for row in v.table.rows], \
            "replacement value must be a real cell of the same column"


def test_distractor_names_unused_column(attack_suite):
    for v in _variants(attack_suite, "distractor"):
        assert v.preserves_query
        assert len(v.tokens) > len(v.origin_tokens)
        column = v.note.split("'")[1]
        assert column in v.table.column_names
        used = {v.query.select_column.lower()}
        used.update(c.column.lower() for c in v.query.conditions)
        assert column.lower() not in used
        assert " ".join(tokenize(column)) in v.question


def test_influence_drop_removes_one_unprotected_token(attack_suite):
    for v in _variants(attack_suite, "influence_drop"):
        assert v.preserves_query
        assert len(v.tokens) == len(v.origin_tokens) - 1
        dropped = v.note.split("'")[1]
        assert dropped in v.origin_tokens
        assert dropped not in OPERATOR_CUES


def test_typo_is_single_small_edit_on_content_word(attack_suite):
    for v in _variants(attack_suite, "typo"):
        assert v.preserves_query
        diff = [(new, old) for new, old in zip(v.tokens, v.origin_tokens)
                if new != old]
        assert len(v.tokens) == len(v.origin_tokens)
        assert len(diff) == 1, "exactly one token typo'd"
        new, old = diff[0]
        assert 1 <= levenshtein(new, old) <= 2  # swap counts as 2
        assert old.isalpha() and len(old) >= 4
        assert old not in OPERATOR_CUES and not is_stop_word(old)
        # interior edit: word boundaries anchor recognition
        assert new[0] == old[0] and new[-1] == old[-1]
