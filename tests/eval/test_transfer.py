"""Few-shot transfer curve mechanics, tested with a stub model.

The stub answers the gold query for a table if and only if its fit set
contained at least ``THRESHOLD`` examples of that table, so curve
correctness is keyed entirely to what ``few_shot_curve`` put in each
support set — the property under test.  (Real-model curves run in
``benchmarks/bench_robustness.py``.)
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.data import generate_heldout, held_out_domains
from repro.errors import DataError
from repro.eval import TransferPoint, curves_to_dict, few_shot_curve

THRESHOLD = 10
PER_DOMAIN = 30


class _CurveModel:
    """Answers gold iff fit saw >= THRESHOLD examples of the table."""

    def __init__(self, gold):
        self.gold = gold
        self.seen = []

    def fit(self, examples):
        self.seen = list(examples)
        return self

    def translate(self, tokens, table, **_kwargs):
        support = sum(1 for e in self.seen if e.table.name == table.name)
        query = None
        if support >= THRESHOLD:
            query = self.gold.get((" ".join(tokens), table.name))
        return SimpleNamespace(query=query)


@pytest.fixture(scope="module")
def held():
    held = generate_heldout(seed=9, per_domain=PER_DOMAIN)
    assert len(held) == len(held_out_domains())
    assert len(held) >= 2
    return held


def _factory_for(held):
    gold = {(" ".join(e.question_tokens), e.table.name): e.query
            for examples in held.values() for e in examples}
    calls = []

    def factory():
        calls.append(1)
        return _CurveModel(gold)

    return factory, calls


def test_curves_step_exactly_at_support_threshold(held):
    factory, calls = _factory_for(held)
    curves = few_shot_curve(factory, [], held, shots=(0, 5, 10, 25), seed=3)

    assert sorted(curves) == sorted(held)
    # A fresh model per (domain, K) point — no training leaks across points.
    assert len(calls) == len(held) * 4
    for points in curves.values():
        assert [p.shots for p in points] == [0, 5, 10, 25]
        # One fixed eval slice per domain, disjoint from every support set.
        assert {p.n_eval for p in points} == {PER_DOMAIN - 25}
        by_k = {p.shots: p for p in points}
        assert by_k[0].acc_qm == 0.0
        assert by_k[5].acc_qm == 0.0
        assert by_k[10].acc_qm == 1.0
        assert by_k[25].acc_qm == 1.0
        assert by_k[10].acc_ex == 1.0


def test_curves_are_deterministic(held):
    first, _ = _factory_for(held)
    second, _ = _factory_for(held)
    a = few_shot_curve(first, [], held, shots=(5, 10), seed=7)
    b = few_shot_curve(second, [], held, shots=(5, 10), seed=7)
    assert a == b


def test_eval_limit_caps_slice(held):
    factory, _ = _factory_for(held)
    curves = few_shot_curve(factory, [], held, shots=(5,), seed=1,
                            eval_limit=3)
    assert all(p.n_eval == 3 for points in curves.values() for p in points)


def test_unsorted_duplicate_shots_are_normalized(held):
    factory, _ = _factory_for(held)
    curves = few_shot_curve(factory, [], held, shots=(10, 5, 10), seed=2)
    for points in curves.values():
        assert [p.shots for p in points] == [5, 10]


def test_domain_too_small_for_shots_raises(held):
    factory, _ = _factory_for(held)
    name = sorted(held)[0]
    with pytest.raises(DataError):
        few_shot_curve(factory, [], {name: held[name][:10]}, shots=(10,))


def test_degenerate_shot_lists_raise(held):
    factory, _ = _factory_for(held)
    with pytest.raises(DataError):
        few_shot_curve(factory, [], held, shots=())
    with pytest.raises(DataError):
        few_shot_curve(factory, [], held, shots=(-1, 5))


def test_curves_to_dict_shape():
    curves = {"ships": [TransferPoint(shots=5, acc_qm=0.5, acc_ex=0.25,
                                      n_eval=4)]}
    assert curves_to_dict(curves) == {
        "ships": [{"shots": 5, "acc_qm": 0.5, "acc_ex": 0.25, "n_eval": 4}]}
