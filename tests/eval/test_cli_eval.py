"""End-to-end `repro eval-robustness` CLI test at a tiny budget."""

from __future__ import annotations

import json

from repro.cli import build_parser, main


def test_parser_accepts_eval_robustness():
    args = build_parser().parse_args(
        ["eval-robustness", "--out", "x.json", "--skip-transfer",
         "--shots", "1,2"])
    assert args.command == "eval-robustness"
    assert args.out == "x.json"
    assert args.skip_transfer is True
    assert args.shots == "1,2"


def test_eval_robustness_writes_record(tmp_path, capsys):
    out = tmp_path / "robustness.json"
    code = main([
        "eval-robustness", "--out", str(out), "--seed", "1",
        "--train-size", "24", "--eval-size", "6", "--hidden", "16",
        "--classifier-epochs", "1", "--seq2seq-epochs", "2",
        "--skip-transfer", "--quiet",
    ])
    assert code == 0
    assert f"wrote {out}" in capsys.readouterr().out

    payload = json.loads(out.read_text())
    assert payload["seed"] == 1
    assert set(payload["configs"]) == {"full_adversarial", "matcher_only"}
    assert payload["configs"]["matcher_only"]["transfer_eligible"] is False
    assert payload["transfer"] == {}
    suite = payload["suite"]
    assert suite["corpus_size"] == 6
    assert suite["generated"] == suite["admitted"] + suite["rejected"]
    for config in payload["configs"].values():
        assert config["clean"]["n"] == 6
        assert len(config["attacks"]) >= 3
        for row in config["attacks"].values():
            assert row["n"] >= 1
            assert "delta_qm" in row and "delta_ex" in row
