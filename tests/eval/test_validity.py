"""Differential tests for the executor-backed admission gate.

Satellite 3: every admitted variant re-executes to its recorded gold
denotation; invalid variants are counted and logged through the
``repro.eval.validity`` logger, never silently dropped.
"""

from __future__ import annotations

import logging

from repro.eval import AttackSuite, AttackVariant, admit_suite, check_variant
from repro.sqlengine import (
    Aggregate,
    Condition,
    Operator,
    Query,
    execute,
    results_equal,
)


def test_admitted_variants_reexecute_to_gold_denotation(admission):
    assert admission.admitted, "gate admitted nothing — suite is broken"
    for entry in admission.admitted:
        variant = entry.variant
        denotation = execute(variant.query, variant.table)
        assert results_equal(denotation, entry.denotation)
        if variant.preserves_query:
            origin = execute(variant.origin_query, variant.table)
            assert results_equal(origin, denotation), \
                "meaning-preserving variant drifted from gold denotation"


def test_rejections_are_counted_never_dropped(attack_suite, admission):
    counts = admission.counts()
    for row in counts.values():
        assert row["generated"] == row["admitted"] + row["rejected"]
    assert sum(r["generated"] for r in counts.values()) \
        == len(attack_suite.variants)
    assert len(admission.admitted) + len(admission.rejected) \
        == len(attack_suite.variants)


def _bogus_variant(example, query, tokens=None):
    return AttackVariant(
        attack="bogus",
        tokens=tuple(tokens) if tokens is not None
        else tuple(example.question_tokens) + ("really",),
        query=query, table=example.table,
        origin_tokens=tuple(example.question_tokens),
        origin_query=example.query)


def test_inexecutable_variant_rejected_and_logged(corpus, caplog):
    example = corpus[0]
    broken = Query(select_column="no such column",
                   aggregate=example.query.aggregate, conditions=[])
    suite = AttackSuite(seed=0, variants=[_bogus_variant(example, broken)],
                        skipped={"bogus": 0}, corpus_size=1)
    with caplog.at_level(logging.INFO, logger="repro.eval.validity"):
        report = admit_suite(suite)
    assert not report.admitted
    assert len(report.rejected) == 1
    _, reason = report.rejected[0]
    assert "failed to execute" in reason
    assert report.counts()["bogus"] == {"generated": 1, "admitted": 0,
                                        "rejected": 1}
    logged = [r for r in caplog.records if r.name == "repro.eval.validity"]
    assert logged and "rejected" in logged[0].getMessage()


def test_noop_perturbation_rejected(corpus):
    example = corpus[0]
    variant = _bogus_variant(example, example.query,
                             tokens=example.question_tokens)
    denotation, reason = check_variant(variant)
    assert denotation is None
    assert "no-op" in reason


def test_empty_denotation_swap_rejected(corpus):
    example = next(
        e for e in corpus
        if e.query.aggregate is Aggregate.NONE
        and any(c.operator is Operator.EQ and isinstance(c.value, str)
                for c in e.query.conditions))
    conditions = [
        Condition(c.column, c.operator, "zzz nonexistent cell")
        if c.operator is Operator.EQ and isinstance(c.value, str) else c
        for c in example.query.conditions]
    phantom = Query(select_column=example.query.select_column,
                    aggregate=example.query.aggregate,
                    conditions=conditions)
    denotation, reason = check_variant(_bogus_variant(example, phantom))
    assert denotation is None
    assert "empty denotation" in reason
