"""Hypothesis property tests for the Section IV-C influence machinery.

``locate_mention`` and ``contrastive_profile`` are pure functions of an
:class:`InfluenceProfile`, so the properties are checked over directly
constructed profiles — arbitrary token mixes (content, stop words,
punctuation) with arbitrary finite scores, including the negative
scores a contrastive subtraction produces.  One closing test feeds a
profile from the real trained classifier through the same contract.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.mention.adversarial import (
    InfluenceProfile,
    compute_influence,
    contrastive_profile,
    locate_mention,
)
from repro.text.stopwords import is_stop_word
from repro.text.tokenizer import tokenize

_CONTENT = ("river", "salary", "film", "director", "score", "captain",
            "harbor", "votes", "album", "tonnage", "clifden", "17")
_GLUE = ("the", "of", "is", "a", "in", "what", "and", "?", ",", "'")
_VOCAB = _CONTENT + _GLUE


def _skippable(token: str) -> bool:
    """Mirror of locate_mention's rule under skip_stop_words=True."""
    return not any(ch.isalnum() for ch in token) or is_stop_word(token)


def _scores(n: int, low: float = 0.0, high: float = 10.0):
    return st.lists(
        st.floats(min_value=low, max_value=high, allow_nan=False,
                  allow_infinity=False, width=32),
        min_size=n, max_size=n,
    ).map(lambda xs: np.asarray(xs, dtype=float))


@st.composite
def profiles(draw, low: float = 0.0):
    tokens = draw(st.lists(st.sampled_from(_VOCAB), min_size=1, max_size=12))
    combined = draw(_scores(len(tokens), low=low))
    zeros = np.zeros(len(tokens))
    return InfluenceProfile(list(tokens), zeros, zeros, combined)


@st.composite
def profile_with_background(draw):
    profile = draw(profiles())
    n = len(profile.tokens)
    backgrounds = [
        InfluenceProfile(list(profile.tokens), np.zeros(n), np.zeros(n),
                         draw(_scores(n)))
        for _ in range(draw(st.integers(1, 3)))
    ]
    return profile, backgrounds


def _assert_span_contract(profile, start, end, max_length):
    n = len(profile.tokens)
    assert 0 <= start < end <= n, "span must be non-empty and in range"
    assert end - start <= max_length, "span must respect max_length"
    assert not _skippable(profile.tokens[start]), \
        "span must not start on a skippable token"
    assert not _skippable(profile.tokens[end - 1]), \
        "span must not end on a skippable token"


@given(profile=profiles(), max_length=st.integers(1, 6),
       rel=st.floats(0.0, 1.0))
@settings(max_examples=150, deadline=None)
def test_located_span_satisfies_contract(profile, max_length, rel):
    assume(any(not _skippable(t) for t in profile.tokens))
    start, end = locate_mention(profile, max_length=max_length,
                                rel_threshold=rel)
    _assert_span_contract(profile, start, end, max_length)


@given(profile=profiles(low=-10.0), max_length=st.integers(1, 6),
       rel=st.floats(0.0, 1.0))
@settings(max_examples=100, deadline=None)
def test_contract_survives_negative_scores(profile, max_length, rel):
    """Contrastive profiles go negative; the contract must not care."""
    assume(any(not _skippable(t) for t in profile.tokens))
    start, end = locate_mention(profile, max_length=max_length,
                                rel_threshold=rel)
    _assert_span_contract(profile, start, end, max_length)


@given(profile=profiles(), data=st.data())
@settings(max_examples=100, deadline=None)
def test_blocked_positions_stay_outside_span(profile, data):
    free = [i for i, t in enumerate(profile.tokens) if not _skippable(t)]
    assume(free)
    blocked = data.draw(
        st.sets(st.integers(0, len(profile.tokens) - 1)), label="blocked")
    assume(any(i not in blocked for i in free))
    start, end = locate_mention(profile, blocked=blocked)
    assert set(range(start, end)).isdisjoint(blocked)
    _assert_span_contract(profile, start, end, max_length=4)


@given(pair=profile_with_background())
@settings(max_examples=100, deadline=None)
def test_contrastive_is_elementwise_mean_subtraction(pair):
    profile, backgrounds = pair
    out = contrastive_profile(profile, backgrounds)
    assert out.tokens == profile.tokens
    assert out.word_influence is profile.word_influence
    assert out.char_influence is profile.char_influence
    expected = profile.combined - np.mean(
        [b.combined for b in backgrounds], axis=0)
    np.testing.assert_allclose(out.combined, expected)


@given(profile=profiles())
@settings(max_examples=50, deadline=None)
def test_contrastive_empty_background_is_identity(profile):
    assert contrastive_profile(profile, []) is profile


@given(pair=profile_with_background(), max_length=st.integers(1, 6))
@settings(max_examples=100, deadline=None)
def test_contrastive_output_still_locatable(pair, max_length):
    profile, backgrounds = pair
    out = contrastive_profile(profile, backgrounds)
    assume(any(not _skippable(t) for t in out.tokens))
    start, end = locate_mention(out, max_length=max_length)
    _assert_span_contract(out, start, end, max_length)


def test_real_classifier_profile_satisfies_contract(nlidb, corpus):
    """The contract holds for profiles off the trained classifier too."""
    classifier = nlidb.annotator.column_classifier
    for example in corpus[:5]:
        profile = compute_influence(
            classifier, example.question_tokens,
            tokenize(example.query.select_column))
        if not any(not _skippable(t) for t in profile.tokens):
            continue
        start, end = locate_mention(profile)
        _assert_span_contract(profile, start, end, max_length=4)
