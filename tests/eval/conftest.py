"""Shared attack-suite fixtures for the robustness-harness tests.

The full four-family suite over the 54-pair serving corpus is built
once per session (the influence family runs one backward pass per
example) and shared by the determinism, validity, and harness suites.
"""

import pytest

from repro.eval import admit_suite, generate_suite, standard_attacks

SUITE_SEED = 5


@pytest.fixture(scope="session")
def attack_suite(nlidb, corpus):
    attacks = standard_attacks(nlidb.annotator.column_classifier)
    return generate_suite(corpus, attacks, seed=SUITE_SEED)


@pytest.fixture(scope="session")
def admission(attack_suite):
    return admit_suite(attack_suite)
