"""Multi-token phrase paraphrase attack + RNG-stream stability.

Two contracts:

* :class:`PhraseParaphraseAttack` swaps whole lexicon phrases (never
  inside gold value spans) and leaves the gold query untouched;
* appending the family to ``standard_attacks`` did not disturb the
  existing families' per-pair RNG streams — variants of the old
  families are byte-identical with and without the new family present.
"""

import numpy as np
import pytest

from repro.data import generate_role_typed, generate_wikisql_style
from repro.data.records import Example, MentionSpan
from repro.eval import PhraseParaphraseAttack, generate_suite, standard_attacks
from repro.eval.attacks import (
    DistractorColumnAttack,
    ParaphraseAttack,
    TypoAttack,
    ValueSwapAttack,
)
from repro.sqlengine import Column, Condition, Operator, Query, Table
from repro.text import tokenize
from repro.text.lexicon import PHRASE_SYNONYMS, phrase_group_of


def _example(question: str, query: Query, table: Table,
             mentions=()) -> Example:
    return Example(question=question, table=table, query=query,
                   mentions=list(mentions), domain="test")


def _table():
    return Table("t", [Column("name"), Column("year won")],
                 [("anna", "1999"), ("bob", "2004")])


class TestPhraseParaphrase:
    def test_multi_token_phrase_is_replaced(self):
        query = Query("name", conditions=[
            Condition("year won", Operator.EQ, "1999")])
        example = _example("which name has year won = 1999 ?", query,
                           _table())
        variant = PhraseParaphraseAttack().perturb(
            example, np.random.default_rng(0))
        assert variant is not None
        assert variant.query == query
        assert list(variant.tokens) != list(example.question_tokens)
        # The replacement phrase comes from the same synonym group.
        gid = phrase_group_of("year won")
        assert gid is not None
        group = PHRASE_SYNONYMS[gid]
        assert any(" ".join(variant.tokens).find(p) >= 0
                   for p in group if p != "year won")

    def test_value_spans_are_protected(self):
        # The only phrase match sits inside a gold value span → no
        # variant can be produced.
        query = Query("name", conditions=[
            Condition("name", Operator.EQ, "year won")])
        tokens = "who is year won ?"
        example = _example(
            tokens, query, _table(),
            mentions=[MentionSpan("name", "value", 2, 4)])
        assert PhraseParaphraseAttack().perturb(
            example, np.random.default_rng(0)) is None

    def test_no_phrase_means_no_variant(self):
        query = Query("name", conditions=[])
        example = _example("zebra quantum flux ?", query, _table())
        assert PhraseParaphraseAttack().perturb(
            example, np.random.default_rng(0)) is None

    def test_deterministic_per_rng(self):
        query = Query("name", conditions=[])
        example = _example("how many name have year won = 4 ?", query,
                           _table())
        attack = PhraseParaphraseAttack()
        a = attack.perturb(example, np.random.default_rng(7))
        b = attack.perturb(example, np.random.default_rng(7))
        assert a is not None and b is not None
        assert a.tokens == b.tokens and a.note == b.note

    def test_groups_are_non_trivial(self):
        for group in PHRASE_SYNONYMS:
            assert len(group) >= 2
            assert len(set(group)) == len(group)
            # Phrase families are multi-token by definition.
            assert all(len(tokenize(p)) >= 2 for p in group)


class TestRngStreamStability:
    """Appending the phrase family must not re-seed the old families."""

    @pytest.fixture(scope="class")
    def corpus(self):
        ds = generate_wikisql_style(seed=31, train_size=0, dev_size=24,
                                    test_size=0)
        return ds.dev

    def test_old_family_variants_byte_identical(self, corpus):
        old_families = [ParaphraseAttack(), ValueSwapAttack(),
                        DistractorColumnAttack(), TypoAttack()]
        with_new = old_families + [PhraseParaphraseAttack()]
        baseline = generate_suite(corpus, old_families, seed=5)
        extended = generate_suite(corpus, with_new, seed=5)
        old_names = {a.name for a in old_families}
        kept = [v for v in extended.variants if v.attack in old_names]
        assert [(v.attack, v.tokens, v.note) for v in baseline.variants] == \
            [(v.attack, v.tokens, v.note) for v in kept]

    def test_standard_attacks_order_contract(self):
        names = [a.name for a in standard_attacks()]
        assert names == ["paraphrase", "value_swap", "distractor",
                         "typo", "phrase_paraphrase"]

    def test_phrase_family_fires_on_extended_corpus(self):
        ds = generate_role_typed(seed=3, train_size=0, dev_size=40,
                                 test_size=0)
        suite = generate_suite(ds.dev, [PhraseParaphraseAttack()], seed=1)
        assert suite.variants, "phrase paraphrase never fired"
        for variant in suite.variants:
            assert variant.query == variant.origin_query
            assert variant.tokens != variant.origin_tokens
