"""Tests for the WikiSQL-style generator: spans, executability, splits."""

import numpy as np
import pytest

from repro.data import (
    DomainSpec,
    generate_wikisql_style,
    render,
    training_domains,
)
from repro.sqlengine import execute
from repro.text import tokenize

DATASET = generate_wikisql_style(seed=3, train_size=120, dev_size=40,
                                 test_size=40)
ALL_EXAMPLES = DATASET.train + DATASET.dev + DATASET.test


class TestDomains:
    def test_eleven_domains(self):
        assert len(training_domains()) == 11

    def test_every_domain_has_templates(self):
        for domain in training_domains():
            assert domain.templates, domain.name

    def test_no_overnight_domain_leakage(self):
        names = {d.name for d in training_domains()}
        assert names.isdisjoint(
            {"basketball", "calendar", "housing", "recipes", "restaurants"})

    def test_build_table_shapes(self):
        rng = np.random.default_rng(0)
        domain = training_domains()[0]
        table = domain.build_table(rng, 7)
        assert len(table) == 7
        assert table.column_names == [c.name for c in domain.columns]


class TestSplits:
    def test_sizes(self):
        assert (len(DATASET.train), len(DATASET.dev), len(DATASET.test)) == \
            (120, 40, 40)

    def test_tables_disjoint_across_splits(self):
        train = DATASET.table_names("train")
        assert train.isdisjoint(DATASET.table_names("dev"))
        assert train.isdisjoint(DATASET.table_names("test"))

    def test_deterministic(self):
        again = generate_wikisql_style(seed=3, train_size=120, dev_size=40,
                                       test_size=40)
        assert [e.question for e in again.train] == \
            [e.question for e in DATASET.train]

    def test_different_seed_differs(self):
        other = generate_wikisql_style(seed=4, train_size=30, dev_size=10,
                                       test_size=10)
        assert [e.question for e in other.train[:20]] != \
            [e.question for e in DATASET.train[:20]]

    def test_domain_coverage(self):
        domains = {e.domain for e in DATASET.train}
        assert len(domains) == 11

    def test_empty_split(self):
        ds = generate_wikisql_style(seed=0, train_size=10, dev_size=0,
                                    test_size=0)
        assert ds.dev == [] and ds.test == []


class TestExampleInvariants:
    def test_gold_queries_execute(self):
        for example in ALL_EXAMPLES:
            execute(example.query, example.table)  # must not raise

    def test_query_columns_exist_in_table(self):
        for example in ALL_EXAMPLES:
            assert example.table.has_column(example.query.select_column)
            for cond in example.query.conditions:
                assert example.table.has_column(cond.column)

    def test_mention_spans_within_question(self):
        for example in ALL_EXAMPLES:
            n = len(example.question_tokens)
            for mention in example.mentions:
                assert 0 <= mention.start <= mention.end <= n

    def test_value_mentions_match_condition_values(self):
        """The tokens under a value span must be the condition's value."""
        for example in ALL_EXAMPLES:
            tokens = example.question_tokens
            for cond in example.query.conditions:
                span = example.value_mentions().get(cond.column)
                assert span is not None, example.question
                surface = " ".join(tokens[span.start:span.end])
                expected = " ".join(tokenize(str(cond.value)))
                assert surface == expected

    def test_every_condition_column_has_column_mention_record(self):
        """Explicit or implicit, every condition column is recorded."""
        for example in ALL_EXAMPLES:
            mentioned = {m.column for m in example.mentions
                         if m.kind == "column"}
            for cond in example.query.conditions:
                assert cond.column in mentioned

    def test_some_implicit_mentions_exist(self):
        implicit = [m for e in ALL_EXAMPLES for m in e.mentions
                    if m.kind == "column" and m.is_implicit]
        assert implicit  # challenge 3 is exercised

    def test_some_counterfactual_values_exist(self):
        """Some questions mention values not present in their table."""
        count = 0
        for example in ALL_EXAMPLES:
            for cond in example.query.conditions:
                cells = {str(v).lower()
                         for v in example.table.column_values(cond.column)}
                if str(cond.value).lower() not in cells:
                    count += 1
        assert count > 0  # challenge 4 is exercised

    def test_aggregates_present(self):
        aggs = {e.query.aggregate for e in ALL_EXAMPLES}
        assert len(aggs) >= 5

    def test_multi_condition_questions_present(self):
        assert any(len(e.query.conditions) == 2 for e in ALL_EXAMPLES)


class TestRenderErrors:
    def test_render_needs_rows(self):
        from repro.errors import DataError
        domain = training_domains()[0]
        rng = np.random.default_rng(0)
        empty = domain.build_table(rng, 0)
        with pytest.raises(DataError):
            render(domain.templates[0], domain, empty, rng)
