"""Tests for the template DSL internals and ColumnSpec/DomainSpec."""

import numpy as np
import pytest

from repro.data import ColumnSpec, DomainSpec, QuestionTemplate, make_template, render
from repro.data.pools import enum, integer, person_name
from repro.errors import DataError
from repro.sqlengine import Aggregate, DataType, Operator

RNG = np.random.default_rng(0)


def toy_domain():
    columns = [
        ColumnSpec("hero", DataType.TEXT, person_name, ["hero", "champion"]),
        ColumnSpec("city", DataType.TEXT, enum(["oslo", "cork"]), ["city"]),
        ColumnSpec("level", DataType.REAL, integer(1, 100), ["level"]),
    ]
    templates = [
        make_template([("text", "which"), ("sel", None), ("text", "has"),
                       ("col", 0), ("val", 0), ("text", "?")],
                      operators=[Operator.EQ]),
    ]
    return DomainSpec("toy", "hero", columns, templates)


class TestColumnSpec:
    def test_default_mentions_is_name(self):
        spec = ColumnSpec("some col", DataType.TEXT, person_name)
        assert spec.mentions == ["some col"]

    def test_domain_column_lookup(self):
        domain = toy_domain()
        assert domain.column("HERO").name == "hero"
        with pytest.raises(DataError):
            domain.column("villain")


class TestQuestionTemplate:
    def test_numeric_aggregate_forces_real_select(self):
        template = make_template([("sel", None)], aggregate=Aggregate.MAX)
        assert template.select_dtype == DataType.REAL

    def test_count_does_not_force_real(self):
        template = make_template([("sel", None)], aggregate=Aggregate.COUNT)
        assert template.select_dtype is None

    def test_cond_columns_length_checked(self):
        with pytest.raises(DataError):
            QuestionTemplate(segments=[], operators=[Operator.EQ],
                             cond_columns=["a", "b"])

    def test_defaults_fill_cond_columns(self):
        template = make_template([("sel", None)],
                                 operators=[Operator.EQ, Operator.EQ])
        assert template.cond_columns == [None, None]


class TestRender:
    def test_renders_example_with_spans(self):
        domain = toy_domain()
        table = domain.build_table(RNG, 6)
        example = render(domain.templates[0], domain, table,
                         np.random.default_rng(1))
        assert example.query.conditions
        assert example.mentions
        for mention in example.mentions:
            assert mention.end <= len(example.question_tokens)

    def test_unknown_segment_kind_raises(self):
        domain = toy_domain()
        table = domain.build_table(RNG, 4)
        bad = make_template([("wat", None)])
        with pytest.raises(DataError):
            render(bad, domain, table, np.random.default_rng(0))

    def test_colp_segment_records_mention(self):
        domain = toy_domain()
        table = domain.build_table(RNG, 4)
        template = make_template(
            [("text", "find"), ("selp", "champion"),
             ("colp", (0, "from the city of")), ("val", 0)],
            operators=[Operator.EQ], select="hero", cond_columns=["city"])
        example = render(template, domain, table, np.random.default_rng(2))
        mentions = example.column_mentions()
        assert "hero" in mentions and "city" in mentions
        tokens = example.question_tokens
        span = mentions["city"]
        assert tokens[span.start:span.end] == ["from", "the", "city", "of"]

    def test_implicit_mention_recorded_when_no_col_segment(self):
        domain = toy_domain()
        table = domain.build_table(RNG, 4)
        template = make_template(
            [("text", "who is in"), ("val", 0), ("text", "?")],
            operators=[Operator.EQ], select="hero", cond_columns=["city"])
        example = render(template, domain, table, np.random.default_rng(3))
        mention = example.column_mentions()["city"]
        assert mention.is_implicit

    def test_counterfactual_rate_one_always_samples_fresh(self):
        domain = toy_domain()
        table = domain.build_table(RNG, 1)  # single row
        rng = np.random.default_rng(4)
        fresh = 0
        for _ in range(20):
            example = render(domain.templates[0], domain, table, rng,
                             counterfactual_rate=1.0)
            cond = example.query.conditions[0]
            cells = {str(v).lower()
                     for v in table.column_values(cond.column)}
            fresh += str(cond.value).lower() not in cells
        assert fresh > 5  # fresh draws usually miss the single row

    def test_zero_counterfactual_uses_row_values(self):
        domain = toy_domain()
        table = domain.build_table(RNG, 5)
        rng = np.random.default_rng(5)
        for _ in range(10):
            example = render(domain.templates[0], domain, table, rng,
                             counterfactual_rate=0.0)
            cond = example.query.conditions[0]
            if cond.operator is Operator.EQ:
                cells = {str(v).lower()
                         for v in table.column_values(cond.column)}
                assert str(cond.value).lower() in cells

    def test_empty_table_raises(self):
        domain = toy_domain()
        table = domain.build_table(RNG, 0)
        with pytest.raises(DataError):
            render(domain.templates[0], domain, table,
                   np.random.default_rng(0))
