"""Tests for the OVERNIGHT-style and ParaphraseBench-style generators."""

import pytest

from repro.data import (
    CATEGORIES,
    SUBDOMAINS,
    build_patients_table,
    generate_overnight,
    generate_paraphrase_bench,
    overnight_domains,
    training_domains,
)
from repro.errors import DataError
from repro.sqlengine import execute


class TestOvernightDomains:
    def test_five_subdomains(self):
        assert sorted(overnight_domains()) == sorted(SUBDOMAINS)

    def test_schemas_unseen_in_training(self):
        """Transfer schemas are new: no training table has the same
        column set, and most transfer columns are individually novel."""
        train_schemas = [{c.name for c in d.columns} for d in training_domains()]
        train_cols = set().union(*train_schemas)
        for domain in overnight_domains().values():
            schema = {c.name for c in domain.columns}
            assert schema not in train_schemas
            novel = schema - train_cols
            assert len(novel) >= 3, (domain.name, novel)

    def test_basketball_uses_opaque_stats(self):
        cols = [c.name for c in overnight_domains()["basketball"].columns]
        assert "ppg" in cols and "apg" in cols


class TestGenerateOvernight:
    DATA = generate_overnight(seed=5, per_domain=30)

    def test_per_domain_counts(self):
        assert set(self.DATA) == set(SUBDOMAINS)
        for examples in self.DATA.values():
            assert len(examples) == 30

    def test_incompatible_fraction(self):
        flat = [e for v in self.DATA.values() for e in v]
        incompatible = [e for e in flat if not e.sketch_compatible]
        assert 0.10 < len(incompatible) / len(flat) < 0.45

    def test_incompatible_questions_have_markers(self):
        for examples in self.DATA.values():
            for e in examples:
                if not e.sketch_compatible:
                    assert "with the" in e.question

    def test_compatible_queries_execute(self):
        for examples in self.DATA.values():
            for e in examples:
                if e.sketch_compatible:
                    execute(e.query, e.table)

    def test_deterministic(self):
        again = generate_overnight(seed=5, per_domain=30)
        assert [e.question for e in again["recipes"]] == \
            [e.question for e in self.DATA["recipes"]]

    def test_bad_rate_raises(self):
        with pytest.raises(DataError):
            generate_overnight(incompatible_rate=1.0)


class TestParaphraseBench:
    DATA = generate_paraphrase_bench(seed=7, n_rows=6)

    def test_all_categories(self):
        assert sorted(self.DATA) == sorted(CATEGORIES)

    def test_equal_sizes_across_categories(self):
        sizes = {len(v) for v in self.DATA.values()}
        assert len(sizes) == 1

    def test_same_gold_query_across_categories(self):
        """Category i's k-th record matches category j's k-th gold SQL."""
        naive = self.DATA["naive"]
        for category in CATEGORIES[1:]:
            for a, b in zip(naive, self.DATA[category]):
                assert a.query.query_match_equal(b.query)

    def test_questions_differ_across_categories(self):
        naive = [e.question for e in self.DATA["naive"]]
        semantic = [e.question for e in self.DATA["semantic"]]
        assert naive != semantic

    def test_missing_category_lacks_column_words(self):
        for example in self.DATA["missing"]:
            select = example.query.select_column.split()[0]
            assert select not in example.question

    def test_semantic_category_avoids_column_surface(self):
        for example in self.DATA["semantic"]:
            assert example.query.select_column not in example.question

    def test_gold_queries_execute_nonempty(self):
        for example in self.DATA["naive"]:
            result = execute(example.query, example.table)
            assert result  # patient names are unique, so exactly one hit

    def test_patients_table_unique_names(self):
        table = build_patients_table(n_rows=10)
        names = table.column_values("patient name")
        assert len(set(names)) == len(names)

    def test_value_mentions_present_except_missing(self):
        for category in ["naive", "syntactic", "lexical", "semantic"]:
            for example in self.DATA[category]:
                assert example.value_mentions().get("patient name") is not None
