"""Role-typed intent generators and augmentation passes."""

import numpy as np
import pytest

from repro.data import (
    ColumnShuffle,
    GenPlan,
    OperatorSubset,
    Role,
    ValueVariation,
    apply_passes,
    generate_role_typed,
    standard_intents,
)
from repro.data.domains import held_out_domains, training_domains
from repro.errors import DataError
from repro.sqlengine import Operator, execute, parse_sql
from repro.core import sketch_label


@pytest.fixture(scope="module")
def dataset():
    return generate_role_typed(seed=5, train_size=160, dev_size=40,
                               test_size=40)


@pytest.fixture(scope="module")
def examples(dataset):
    return dataset.train + dataset.dev + dataset.test


class TestRoleMatching:
    def test_every_training_domain_has_an_identifier(self):
        for domain in training_domains():
            assert domain.columns_with_role(Role.IDENTIFIER), domain.name

    def test_applicability_follows_roles(self):
        by_name = {d.name: d for d in held_out_domains()}
        intents = {g.name: g for g in standard_intents()}
        # hospitals and observatories carry category columns → all
        # eight families apply; ships has no category column, so the
        # category-dependent families must bow out.
        for name in ("hospitals", "observatories"):
            assert all(g.applicable(by_name[name])
                       for g in intents.values()), name
        ships = by_name["ships"]
        assert not intents["group_agg"].applicable(ships)
        assert not intents["disjunction"].applicable(ships)
        assert intents["filter"].applicable(ships)
        assert intents["topn"].applicable(ships)

    def test_all_families_generated(self, dataset):
        labels = {sketch_label(e.query) for e in dataset.train}
        assert labels == {"filter", "count", "aggregate", "range", "topn",
                          "group_agg", "negation", "disjunction"}

    def test_held_out_domains_are_refused(self):
        with pytest.raises(DataError, match="held-out"):
            generate_role_typed(seed=0, train_size=8, dev_size=2, test_size=2,
                                domains=held_out_domains())

    def test_held_out_domains_usable_with_override(self):
        ds = generate_role_typed(seed=0, train_size=12, dev_size=3,
                                 test_size=3, domains=held_out_domains(),
                                 allow_held_out=True)
        assert len(ds.train) == 12


class TestGeneratedExamples:
    def test_gold_queries_round_trip_and_execute(self, examples):
        for example in examples:
            assert parse_sql(example.query.to_sql()) == example.query
            execute(example.query, example.table)

    def test_sketch_compatible_mirrors_grammar(self, examples):
        for example in examples:
            assert example.sketch_compatible == (not example.query.is_extended)

    def test_copyable_digits_are_surfaced(self, examples):
        """LIMIT and HAVING literals must appear in the question tokens
        so the pointer decoder can copy them."""
        for example in examples:
            query = example.query
            if query.limit is not None:
                assert str(query.limit) in example.question_tokens
            if query.having is not None:
                assert str(query.having.value) in example.question_tokens

    def test_mentions_cover_condition_columns(self, examples):
        for example in examples:
            mentioned = {m.column.lower() for m in example.mentions
                         if m.column}
            for leaf in example.query.where_leaves():
                assert leaf.column.lower() in mentioned


class TestAugmentationPasses:
    def _plan(self):
        return GenPlan(domain=training_domains()[0])

    def test_column_shuffle_permutes_only(self):
        rng = np.random.default_rng(3)
        plan = apply_passes(self._plan(), [ColumnShuffle()], rng)
        original = self._plan().domain.columns
        assert sorted(c.name for c in plan.domain.columns) == \
            sorted(c.name for c in original)

    def test_operator_subset_restricts(self):
        rng = np.random.default_rng(3)
        plan = apply_passes(self._plan(), [OperatorSubset((Operator.EQ,))],
                            rng)
        assert plan.allowed_operators == (Operator.EQ,)

    def test_operator_subset_rejects_empty_intersection(self):
        rng = np.random.default_rng(3)
        restricted = apply_passes(self._plan(),
                                  [OperatorSubset((Operator.EQ,))], rng)
        with pytest.raises(DataError):
            apply_passes(restricted, [OperatorSubset((Operator.GT,))], rng)

    def test_passes_compose_into_generation(self):
        ds = generate_role_typed(
            seed=4, train_size=40, dev_size=10, test_size=10,
            passes=(ColumnShuffle(), OperatorSubset((Operator.EQ,)),
                    ValueVariation(0.1)))
        for example in ds.train:
            assert parse_sql(example.query.to_sql()) == example.query
            execute(example.query, example.table)
            # An EQ-only subset excludes the range family entirely, so
            # no WHERE leaf anywhere in the corpus uses an ordering op.
            for leaf in example.query.where_leaves():
                assert leaf.operator is Operator.EQ

    def test_small_corpora_cover_extended_families(self):
        """The staggered round-robin reaches extended intents even at
        smoke-size corpora (regression: legacy-first starvation)."""
        ds = generate_role_typed(seed=0, train_size=50, dev_size=16,
                                 test_size=16)
        labels = {sketch_label(e.query) for e in ds.train}
        assert {"topn", "group_agg", "negation", "disjunction"} <= labels
