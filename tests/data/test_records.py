"""Tests for Example/MentionSpan and JSONL round-tripping."""

import pytest

from repro.data import Example, MentionSpan, load_jsonl, save_jsonl
from repro.errors import DataError
from repro.sqlengine import Column, DataType, Query, Table, parse_sql


def make_example():
    table = Table("films", [Column("film"), Column("director"),
                            Column("year", DataType.REAL)],
                  [("chopin", "jerzy antczak", 2002)])
    return Example(
        question="which film did jerzy antczak direct ?",
        table=table,
        query=parse_sql('SELECT film WHERE director = "jerzy antczak"'),
        mentions=[MentionSpan("film", "column", 1, 2),
                  MentionSpan("director", "value", 3, 5)],
        domain="films",
    )


class TestMentionSpan:
    def test_valid(self):
        span = MentionSpan("c", "column", 1, 3)
        assert not span.is_implicit

    def test_implicit(self):
        assert MentionSpan("c", "column", 2, 2).is_implicit

    def test_bad_kind_raises(self):
        with pytest.raises(DataError):
            MentionSpan("c", "header", 0, 1)

    def test_bad_span_raises(self):
        with pytest.raises(DataError):
            MentionSpan("c", "column", 3, 1)
        with pytest.raises(DataError):
            MentionSpan("c", "column", -1, 1)


class TestExample:
    def test_question_tokens(self):
        example = make_example()
        assert example.question_tokens[0] == "which"

    def test_mention_views(self):
        example = make_example()
        assert "film" in example.column_mentions()
        assert "director" in example.value_mentions()
        assert "director" not in example.column_mentions()

    def test_default_sketch_compatible(self):
        assert make_example().sketch_compatible


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "data.jsonl"
        original = [make_example(), make_example()]
        save_jsonl(original, path)
        loaded = load_jsonl(path)
        assert len(loaded) == 2
        first = loaded[0]
        assert first.question == original[0].question
        assert first.query.query_match_equal(original[0].query)
        assert first.table.column_names == original[0].table.column_names
        assert first.table.rows == original[0].table.rows
        assert first.mentions == original[0].mentions
        assert first.domain == "films"

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "data.jsonl"
        save_jsonl([make_example()], path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(load_jsonl(path)) == 1

    def test_malformed_record_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        with open(path, "w") as handle:
            handle.write('{"question": "q"}\n')
        with pytest.raises(DataError):
            load_jsonl(path)

    def test_incompatible_flag_roundtrips(self, tmp_path):
        example = make_example()
        example.sketch_compatible = False
        path = tmp_path / "data.jsonl"
        save_jsonl([example], path)
        assert not load_jsonl(path)[0].sketch_compatible
