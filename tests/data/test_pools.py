"""Tests for the value samplers."""

import numpy as np
import pytest

from repro.data import pools


def rng(seed=0):
    return np.random.default_rng(seed)


class TestSamplers:
    def test_person_name_two_words(self):
        name = pools.person_name(rng())
        first, last = name.split()
        assert first in pools.FIRST_NAMES
        assert last in pools.LAST_NAMES

    def test_place_name_from_pool(self):
        assert pools.place_name(rng()) in pools.PLACES

    def test_date_text_format(self):
        date = pools.date_text(rng())
        month, day, year = date.split()
        assert month in pools.MONTHS
        assert 1 <= int(day) <= 28
        assert 1990 <= int(year) <= 2020

    def test_year_range(self):
        sampler = pools.year(2000, 2010)
        for _ in range(20):
            assert 2000 <= sampler(rng()) < 2010

    def test_integer_range(self):
        sampler = pools.integer(5, 8)
        values = {sampler(rng(i)) for i in range(30)}
        assert values <= {5, 6, 7}

    def test_decimal_rounding(self):
        sampler = pools.decimal(0.0, 1.0, digits=2)
        value = sampler(rng())
        assert value == round(value, 2)
        assert 0.0 <= value < 1.0

    def test_enum_from_options(self):
        sampler = pools.enum(["a", "b"])
        assert sampler(rng()) in {"a", "b"}

    def test_enum_empty_raises(self):
        with pytest.raises(ValueError):
            pools.enum([])

    def test_compound_joins(self):
        sampler = pools.compound(pools.enum(["the"]), pools.enum(["end"]))
        assert sampler(rng()) == "the end"

    def test_compound_custom_separator(self):
        sampler = pools.compound(pools.enum(["a"]), pools.enum(["b"]),
                                 sep="-")
        assert sampler(rng()) == "a-b"

    def test_determinism_per_seed(self):
        a = pools.person_name(rng(7))
        b = pools.person_name(rng(7))
        assert a == b

    def test_different_seeds_vary(self):
        names = {pools.person_name(rng(i)) for i in range(25)}
        assert len(names) > 5
