"""Tests for edit distance, embeddings, and the stemmer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    WordEmbeddings,
    levenshtein,
    normalized_edit_similarity,
    stem,
    synonym_group_of,
)

WORDS = st.text(alphabet="abcdefgh", min_size=0, max_size=12)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("actor", "actor") == 0

    def test_known_values(self):
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("actor", "actress") == 4

    def test_empty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3
        assert levenshtein("", "") == 0

    @given(WORDS, WORDS)
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(WORDS, WORDS, WORDS)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(WORDS, WORDS)
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_longest(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))


class TestNormalizedSimilarity:
    def test_identical_is_one(self):
        assert normalized_edit_similarity("best actor 2011", "best actor 2011") == 1.0

    def test_empty_pair_is_one(self):
        assert normalized_edit_similarity("", "") == 1.0

    def test_paper_example_close(self):
        # "best actress of year 2011" vs column "best actor 2011"
        assert normalized_edit_similarity(
            "best actress of year 2011", "best actor 2011") > 0.55

    @given(WORDS, WORDS)
    @settings(max_examples=60, deadline=None)
    def test_in_unit_interval(self, a, b):
        sim = normalized_edit_similarity(a, b)
        assert 0.0 <= sim <= 1.0


class TestStem:
    @pytest.mark.parametrize("a,b", [
        ("candidates", "candidate"),
        ("golfers", "golfer"),
        ("directed", "direct"),
        ("cities", "city"),
        ("scored", "score"),
        ("winning", "winn"),
    ])
    def test_shared_stems(self, a, b):
        assert stem(a) == stem(b) or stem(a) == stem(stem(b))

    def test_short_words_untouched(self):
        assert stem("was") == "was"
        assert stem("is") == "is"

    def test_idempotent_enough(self):
        for word in ["candidates", "playing", "golfer", "films"]:
            assert stem(stem(word)) == stem(stem(stem(word)))


class TestSynonymGroups:
    def test_group_membership(self):
        assert synonym_group_of("golfer") == synonym_group_of("player")
        assert synonym_group_of("movie") == synonym_group_of("film")

    def test_morphological_fallback(self):
        assert synonym_group_of("golfers") == synonym_group_of("golfer")

    def test_unknown_word(self):
        assert synonym_group_of("zzzxqy") is None


class TestWordEmbeddings:
    def setup_method(self):
        self.emb = WordEmbeddings(dim=32, seed=0)

    def test_deterministic(self):
        other = WordEmbeddings(dim=32, seed=0)
        np.testing.assert_array_equal(self.emb.vector("actor"), other.vector("actor"))

    def test_different_seed_different_space(self):
        other = WordEmbeddings(dim=32, seed=1)
        assert not np.allclose(self.emb.vector("actor"), other.vector("actor"))

    def test_unit_norm(self):
        assert np.linalg.norm(self.emb.vector("anything")) == pytest.approx(1.0)

    def test_synonyms_close_strangers_far(self):
        syn = self.emb.similarity("golfer", "athlete")
        far = self.emb.similarity("golfer", "calendar")
        assert syn > 0.8
        assert far < 0.5
        assert syn > far

    def test_morphological_variants_close(self):
        assert self.emb.similarity("candidates", "candidate") > 0.9

    def test_semantic_distance_ordering(self):
        assert self.emb.distance("film", "movie") < self.emb.distance("film", "salary")

    def test_phrase_vector_average(self):
        v = self.emb.phrase_vector("people live")
        manual = (self.emb.vector("people") + self.emb.vector("live")) / 2
        np.testing.assert_allclose(v, manual)

    def test_phrase_similarity_paraphrase(self):
        # "people live" relates to "population" via the synonym lexicon.
        assert (self.emb.phrase_similarity("people live", "population")
                > self.emb.phrase_similarity("people live", "film director"))

    def test_empty_phrase(self):
        assert self.emb.phrase_similarity("", "population") == 0.0
        np.testing.assert_array_equal(self.emb.phrase_vector(""), np.zeros(32))

    def test_matrix_shape(self):
        assert self.emb.matrix(["a", "b", "c"]).shape == (3, 32)
        assert self.emb.matrix([]).shape == (0, 32)

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            WordEmbeddings(dim=1)
        with pytest.raises(ValueError):
            WordEmbeddings(group_weight=1.0)

    def test_cache_returns_same_object(self):
        a = self.emb.vector("actor")
        b = self.emb.vector("actor")
        assert a is b
