"""Tests for column statistics, stop words, and the knowledge base."""

import numpy as np
import pytest

from repro.text import (
    STOP_WORDS,
    ColumnKnowledge,
    KnowledgeBase,
    WordEmbeddings,
    column_statistics,
    is_stop_word,
    span_statistics,
)

EMB = WordEmbeddings(dim=32, seed=3)


class TestColumnStatistics:
    def test_shape(self):
        s = column_statistics(["Piotr Adamczyk", "Levan U"], EMB.vector, 32)
        assert s.shape == (32,)

    def test_empty_column(self):
        np.testing.assert_array_equal(
            column_statistics([], EMB.vector, 32), np.zeros(32))

    def test_constant_size_regardless_of_rows(self):
        small = column_statistics(["Mayo"], EMB.vector, 32)
        big = column_statistics(["Mayo"] * 500, EMB.vector, 32)
        np.testing.assert_allclose(small, big)

    def test_numeric_cells_stringified(self):
        s = column_statistics([356, 1225], EMB.vector, 32)
        assert np.isfinite(s).all()

    def test_counterfactual_value_still_near_column(self):
        """A name NOT in the column is nearer person-name stats than numbers."""
        person_stats = column_statistics(
            ["john smith", "mary johnson", "peter brown"], EMB.vector, 32)
        number_stats = column_statistics(["1225", "356", "410"], EMB.vector, 32)
        new_name = span_statistics(["alice", "walker"], EMB.vector, 32)
        d_person = np.linalg.norm(new_name - person_stats)
        d_number = np.linalg.norm(new_name - number_stats)
        assert d_person < d_number

    def test_multiword_cell_averaged_per_cell(self):
        """Each cell contributes equally regardless of its word count."""
        stats = column_statistics(["a b", "c"], EMB.vector, 32)
        manual = ((EMB.vector("a") + EMB.vector("b")) / 2 + EMB.vector("c")) / 2
        np.testing.assert_allclose(stats, manual)


class TestSpanStatistics:
    def test_empty_span(self):
        np.testing.assert_array_equal(
            span_statistics([], EMB.vector, 32), np.zeros(32))

    def test_mean_of_words(self):
        s = span_statistics(["jerzy", "antczak"], EMB.vector, 32)
        manual = (EMB.vector("jerzy") + EMB.vector("antczak")) / 2
        np.testing.assert_allclose(s, manual)


class TestStopWords:
    def test_common_words_are_stop(self):
        for w in ["the", "of", "in", "did", "which"]:
            assert is_stop_word(w)

    def test_content_words_are_not(self):
        for w in ["film", "mayo", "population", "2006"]:
            assert not is_stop_word(w)

    def test_case_insensitive(self):
        assert is_stop_word("The")

    def test_frozen(self):
        assert isinstance(STOP_WORDS, frozenset)


class TestKnowledgeBase:
    def test_add_and_get(self):
        kb = KnowledgeBase()
        kb.add("Population", mention_phrases=["how many people live in"])
        knowledge = kb.get("population")
        assert "how many people live in" in knowledge.mention_phrases

    def test_get_unknown_is_empty(self):
        knowledge = KnowledgeBase().get("nothing")
        assert knowledge.mention_phrases == []
        assert knowledge.describing_expressions == []

    def test_extend_existing(self):
        kb = KnowledgeBase()
        kb.add("Price", describing_expressions=["soar"])
        kb.add("price", describing_expressions=["dive", "level off"])
        assert kb.get("PRICE").describing_expressions == ["soar", "dive", "level off"]
        assert len(kb) == 1

    def test_columns_listing(self):
        kb = KnowledgeBase()
        kb.add("b")
        kb.add("a")
        assert kb.columns() == ["a", "b"]

    def test_column_knowledge_dataclass(self):
        ck = ColumnKnowledge(mention_phrases=["x"])
        assert ck.describing_expressions == []
