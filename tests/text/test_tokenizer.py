"""Tests for tokenization and character ids."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import CHAR_VOCAB_SIZE, char_ids, detokenize, normalize, tokenize


class TestTokenize:
    def test_basic_sentence(self):
        assert tokenize("Which film did he star in?") == [
            "which", "film", "did", "he", "star", "in", "?"]

    def test_preserves_case_when_asked(self):
        assert tokenize("Jerzy Antczak", lowercase=False) == ["Jerzy", "Antczak"]

    def test_numbers_kept_whole(self):
        assert tokenize("on November 16, 2006") == ["on", "november", "16", ",", "2006"]

    def test_decimal(self):
        assert "2.5" in tokenize("score of 2.5 points")

    def test_season_span_single_token(self):
        # Figure 7's third example depends on "2006-07" staying together.
        assert "2006-07" in tokenize("the toronto team in 2006-07")

    def test_percent(self):
        assert "64%" in tokenize("speakers at 64%")

    def test_contraction(self):
        assert tokenize("who's the coach") == ["who's", "the", "coach"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("   ") == []

    def test_punctuation_separated(self):
        assert tokenize("hello, world!") == ["hello", ",", "world", "!"]


class TestDetokenize:
    def test_roundtrip_simple(self):
        text = "which film did he star in ?"
        assert detokenize(tokenize(text)) == "which film did he star in?"

    def test_empty(self):
        assert detokenize([]) == ""

    @given(st.lists(st.sampled_from(["film", "star", "2006", "the"]), max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_tokenize_detokenize_stable(self, words):
        text = " ".join(words)
        assert tokenize(detokenize(tokenize(text))) == tokenize(text)


class TestCharIds:
    def test_in_range(self):
        ids = char_ids("Antczak!")
        assert all(0 <= i < CHAR_VOCAB_SIZE for i in ids)

    def test_deterministic(self):
        assert char_ids("abc") == char_ids("abc")

    def test_distinct_chars_distinct_ids(self):
        a, b = char_ids("a")[0], char_ids("b")[0]
        assert a != b

    def test_non_ascii_maps_to_unknown(self):
        assert char_ids("é") == [0]

    def test_empty_word_gets_placeholder(self):
        assert char_ids("") == [0]

    @given(st.text(min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_length_preserved(self, word):
        assert len(char_ids(word)) == len(word)


class TestNormalize:
    def test_lowers_and_collapses(self):
        assert normalize("  Film   NAME ") == "film name"
