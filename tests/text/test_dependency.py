"""Tests for the heuristic dependency parser and tree distances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import parse_dependency, tokenize


def tree_for(text):
    tokens = tokenize(text)
    return tokens, parse_dependency(tokens)


def index_of(tokens, word):
    return tokens.index(word)


class TestTreeStructure:
    def test_empty(self):
        tree = parse_dependency([])
        assert tree.tokens == []

    def test_single_token(self):
        tree = parse_dependency(["hello"])
        assert tree.parents == [-1]
        assert tree.root == 0

    def test_exactly_one_root(self):
        for text in ["Which film did he star in?",
                     "How many people live in Mayo?",
                     "name of the venue"]:
            _, tree = tree_for(text)
            assert tree.parents.count(-1) == 1

    def test_all_tokens_reach_root(self):
        tokens, tree = tree_for("Which film directed by Jerzy Antczak did "
                                "Piotr Adamczyk star in?")
        root = tree.root
        for i in range(len(tokens)):
            assert tree.distance(i, root) < len(tokens)

    @given(st.lists(st.sampled_from(
        ["which", "film", "directed", "by", "jerzy", "did", "star", "in",
         "the", "venue", "2006", "?"]), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_any_token_list_yields_valid_tree(self, tokens):
        tree = parse_dependency(tokens)
        assert tree.parents.count(-1) == 1
        root = tree.root
        for i in range(len(tokens)):
            assert tree.distance(i, root) <= len(tokens)


class TestDistances:
    def test_distance_symmetric(self):
        tokens, tree = tree_for("Which film did Piotr Adamczyk star in?")
        assert tree.distance(1, 4) == tree.distance(4, 1)

    def test_distance_zero_to_self(self):
        _, tree = tree_for("hello world")
        assert tree.distance(0, 0) == 0

    def test_paper_resolution_example(self):
        """Values should sit structurally closer to their own column verb.

        "Which film directed by Jerzy Antczak did Piotr Adamczyk star in?"
        — "Jerzy Antczak" pairs with "directed" (Director) and
        "Piotr Adamczyk" pairs with "star" (Actor).
        """
        tokens, tree = tree_for(
            "Which film directed by Jerzy Antczak did Piotr Adamczyk star in?")
        jerzy = index_of(tokens, "jerzy")
        piotr = index_of(tokens, "piotr")
        directed = index_of(tokens, "directed")
        star = index_of(tokens, "star")
        assert tree.distance(jerzy, directed) < tree.distance(jerzy, star)
        assert tree.distance(piotr, star) < tree.distance(piotr, directed)

    def test_preposition_object_attaches_to_preposition(self):
        tokens, tree = tree_for("people live in Mayo")
        mayo = index_of(tokens, "mayo")
        in_idx = index_of(tokens, "in")
        assert tree.parents[mayo] == in_idx

    def test_multiword_entity_chains(self):
        tokens, tree = tree_for("directed by Jerzy Antczak")
        jerzy = index_of(tokens, "jerzy")
        antczak = index_of(tokens, "antczak")
        assert tree.parents[antczak] == jerzy

    def test_span_distance(self):
        tokens, tree = tree_for(
            "Which film directed by Jerzy Antczak did Piotr Adamczyk star in?")
        jerzy_span = (index_of(tokens, "jerzy"), index_of(tokens, "antczak") + 1)
        directed_span = (index_of(tokens, "directed"), index_of(tokens, "directed") + 1)
        star_span = (index_of(tokens, "star"), index_of(tokens, "star") + 1)
        assert (tree.span_distance(jerzy_span, directed_span)
                < tree.span_distance(jerzy_span, star_span))

    def test_determiner_attaches_forward(self):
        tokens, tree = tree_for("the venue opened")
        the = index_of(tokens, "the")
        venue = index_of(tokens, "venue")
        assert tree.parents[the] == venue
