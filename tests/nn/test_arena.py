"""Arena semantics, allocation-free kernel twins, and grad-mode scoping.

Every hot inference op grew a float32 "kernel twin" that writes into
:class:`InferenceArena` slabs instead of building Tensors.  These tests
pin three contracts: the arena's reuse semantics (same key -> same
memory, warm path never grows), numerical parity between each twin and
its float64 Tensor original (float32 round-off tolerance; 1e-4 for the
int8 head), and the thread-locality of the ``no_grad`` switch that lets
twins run concurrently with training threads.
"""

import threading

import numpy as np
import pytest

from repro.nn import (
    BiLSTM,
    GRUCell,
    InferenceArena,
    LSTM,
    LSTMCell,
    Linear,
    Tensor,
    bump_generation,
    is_grad_enabled,
    no_grad,
    sigmoid_,
    softmax_rows_,
    tanh_,
)
from repro.nn.attention import AdditiveAttention


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestInferenceArena:
    def test_same_key_returns_same_memory(self):
        arena = InferenceArena()
        a = arena.take("x", (3, 4))
        b = arena.take("x", (3, 4))
        assert a.base is b.base
        assert arena.grows == 1
        assert arena.takes == 2

    def test_smaller_request_reuses_slab(self):
        arena = InferenceArena()
        arena.take("x", (8, 8))
        small = arena.take("x", (2, 2))
        assert small.shape == (2, 2)
        assert arena.grows == 1

    def test_larger_request_grows_once(self):
        arena = InferenceArena()
        arena.take("x", (2, 2))
        arena.take("x", (8, 8))
        arena.take("x", (4, 4))
        assert arena.grows == 2

    def test_reset_keeps_slabs(self):
        arena = InferenceArena()
        first = arena.take("x", (5,))
        arena.reset()
        assert arena.grows == 0 and arena.takes == 0
        again = arena.take("x", (5,))
        assert again.base is first.base
        assert arena.grows == 0  # reuse, not a fresh allocation

    def test_dtype_change_reallocates(self):
        arena = InferenceArena()
        arena.take("x", (4,), dtype=np.float32)
        arena.take("x", (4,), dtype=np.float64)
        assert arena.grows == 2

    def test_stats(self):
        arena = InferenceArena()
        arena.take("a", (4,))
        arena.take("b", (2, 2), dtype=np.float64)
        stats = arena.stats()
        assert stats["buffers"] == 2
        assert stats["bytes"] == 4 * 4 + 4 * 8
        assert stats["grows"] == 2 and stats["takes"] == 2


class TestInPlaceHelpers:
    def test_sigmoid_(self, rng):
        x = rng.standard_normal((3, 5)).astype(np.float32)
        expected = 1.0 / (1.0 + np.exp(-x.astype(np.float64)))
        out = sigmoid_(x)
        assert out is x
        np.testing.assert_allclose(x, expected, atol=1e-6)

    def test_tanh_(self, rng):
        x = rng.standard_normal((3, 5)).astype(np.float32)
        expected = np.tanh(x.astype(np.float64))
        assert tanh_(x) is x
        np.testing.assert_allclose(x, expected, atol=1e-6)

    def test_softmax_rows_(self, rng):
        x = rng.standard_normal((4, 7)).astype(np.float32)
        x64 = x.astype(np.float64)
        expected = np.exp(x64 - x64.max(axis=1, keepdims=True))
        expected /= expected.sum(axis=1, keepdims=True)
        scratch = np.empty((4, 1), dtype=np.float32)
        assert softmax_rows_(x, scratch) is x
        np.testing.assert_allclose(x, expected, atol=1e-6)
        np.testing.assert_allclose(x.sum(axis=1), 1.0, atol=1e-6)


class TestRNNKernelTwins:
    def test_lstm_cell_step_matches_forward(self, rng):
        cell = LSTMCell(6, 4, rng)
        arena = InferenceArena()
        x = rng.standard_normal((3, 6))
        h = rng.standard_normal((3, 4))
        c = rng.standard_normal((3, 4))
        ref_h, ref_c = cell(Tensor(x), Tensor(h), Tensor(c))

        xh = np.concatenate([x, h], axis=1).astype(np.float32)
        h_out = np.empty((3, 4), dtype=np.float32)
        c_out = np.empty((3, 4), dtype=np.float32)
        cell.step_np(xh, c.astype(np.float32), h_out, c_out, arena, "t")
        np.testing.assert_allclose(h_out, ref_h.numpy(), atol=1e-6)
        np.testing.assert_allclose(c_out, ref_c.numpy(), atol=1e-6)

    def test_gru_cell_step_matches_forward(self, rng):
        cell = GRUCell(5, 4, rng)
        arena = InferenceArena()
        x = rng.standard_normal((2, 5))
        h = rng.standard_normal((2, 4))
        ref = cell(Tensor(x), Tensor(h))

        xh = np.concatenate([x, h], axis=1).astype(np.float32)
        h_out = np.empty((2, 4), dtype=np.float32)
        cell.step_np(xh, h.astype(np.float32), h_out, arena, "t")
        np.testing.assert_allclose(h_out, ref.numpy(), atol=1e-6)

    def test_lstm_forward_batch_np_matches(self, rng):
        lstm = LSTM(3, 4, rng, num_layers=2)
        t, b = 5, 3
        inputs = rng.standard_normal((t, b, 3))
        lengths = np.array([5, 3, 1])
        steps = [Tensor(inputs[i]) for i in range(t)]
        ref = lstm.forward_batch(steps, lengths)

        arena = InferenceArena()
        out = lstm.forward_batch_np(inputs.astype(np.float32), lengths,
                                    arena, "t")
        for i in range(t):
            np.testing.assert_allclose(out[i], ref[i].numpy(), atol=1e-5)

    def test_bilstm_forward_batch_np_matches_and_reuses(self, rng):
        net = BiLSTM(3, 4, rng)
        t, b = 4, 2
        inputs = rng.standard_normal((t, b, 3))
        lengths = np.array([4, 2])
        ref = net.forward_batch([Tensor(inputs[i]) for i in range(t)],
                                lengths)

        arena = InferenceArena()
        out = net.forward_batch_np(inputs.astype(np.float32), lengths,
                                   arena, "t")
        for i in range(t):
            np.testing.assert_allclose(out[i], ref[i].numpy(), atol=1e-5)

        # Second pass over the same shapes must not grow the arena.
        arena.reset()
        net.forward_batch_np(inputs.astype(np.float32), lengths, arena, "t")
        assert arena.grows == 0


class TestLinearTwins:
    def test_forward_np_matches(self, rng):
        layer = Linear(6, 3, rng)
        x = rng.standard_normal((4, 6))
        ref = layer(Tensor(x)).numpy()
        out = np.empty((4, 3), dtype=np.float32)
        layer.forward_np(x.astype(np.float32), out)
        np.testing.assert_allclose(out, ref, atol=1e-6)

    def test_forward_q8_within_pin(self, rng):
        layer = Linear(64, 8, rng)
        # Mixed-magnitude rows, like the classifier head's feature mix.
        layer.weight.data[:32] *= 40.0
        x = rng.standard_normal((5, 64))
        ref = layer(Tensor(x)).numpy()
        arena = InferenceArena()
        out = np.empty((5, 8), dtype=np.float32)
        layer.forward_q8(x.astype(np.float32), out, arena, "q")
        # Scale-aware pin: the classifier head's O(1) scores inherit the
        # absolute 1e-4 differential from this relative bound.
        err = float(np.abs(out - ref).max())
        assert err <= 1e-4 * max(1.0, float(np.abs(ref).max()))

    def test_q8_reconstruction_error_bound(self, rng):
        layer = Linear(32, 4, rng)
        q1, s1, q2, s2, _ = layer.weights_q8()
        recon = q1 * s1[:, None].astype(np.float64) \
            + q2 * s2[:, None].astype(np.float64)
        err = np.abs(recon - layer.weight.data).max(axis=1)
        row_max = np.abs(layer.weight.data).max(axis=1)
        # Residual plane bounds error at ~row_max / 127^2.
        assert (err <= row_max / 127.0 ** 2 + 1e-9).all()


class TestAttentionTwin:
    def test_forward_batch_np_matches(self, rng):
        att = AdditiveAttention(memory_dim=6, query_dim=4, attention_dim=5,
                                rng=rng)
        memory = rng.standard_normal((7, 6))
        queries = rng.standard_normal((3, 4))
        ref_ctx, ref_w = att.forward_batch(Tensor(memory), Tensor(queries))

        arena = InferenceArena()
        m32 = memory.astype(np.float32)
        mp = att.project_memory_np(m32, arena, "mp")
        ctx, weights = att.forward_batch_np(
            m32, mp, queries.astype(np.float32), arena, "a")
        np.testing.assert_allclose(ctx, ref_ctx.numpy(), atol=1e-5)
        np.testing.assert_allclose(weights, ref_w.numpy(), atol=1e-5)


class TestGenerationCache:
    def test_weights32_cached_until_generation_bump(self, rng):
        layer = Linear(4, 3, rng)
        w_a, _ = layer.weights32()
        w_b, _ = layer.weights32()
        assert w_a is w_b  # cached snapshot, no recomputation
        layer.weight.data[0, 0] += 1.0
        w_stale, _ = layer.weights32()
        assert w_stale is w_a  # mutation alone is invisible...
        bump_generation()
        w_fresh, _ = layer.weights32()
        assert w_fresh is not w_a  # ...until the generation moves
        np.testing.assert_allclose(w_fresh, layer.weight.data, atol=1e-6)

    def test_q8_planes_refresh_on_bump(self, rng):
        layer = Linear(4, 3, rng)
        q_a = layer.weights_q8()
        assert layer.weights_q8() is q_a
        bump_generation()
        assert layer.weights_q8() is not q_a


class TestThreadLocalGradMode:
    def test_fresh_thread_defaults_to_enabled(self):
        seen = {}

        def worker():
            seen["enabled"] = is_grad_enabled()

        with no_grad():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert not is_grad_enabled()  # this thread is still inside
        assert seen["enabled"] is True

    def test_no_grad_does_not_leak_across_threads(self):
        entered = threading.Event()
        release = threading.Event()
        results = {}

        def inference_worker():
            with no_grad():
                entered.set()
                release.wait(timeout=5.0)
                results["worker"] = is_grad_enabled()

        thread = threading.Thread(target=inference_worker)
        thread.start()
        assert entered.wait(timeout=5.0)
        # Main thread keeps building graphs while the worker is frozen.
        results["main"] = is_grad_enabled()
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = (x * x).sum()
        release.set()
        thread.join()
        assert results["main"] is True
        assert results["worker"] is False
        y.backward()
        assert x.grad is not None
