"""Gradient-correctness tests for the autodiff engine.

Every differentiable op is verified against central finite differences.
"""

import numpy as np
import pytest

from repro.errors import GradientError, ShapeError
from repro.nn.tensor import Tensor, concat, is_grad_enabled, no_grad, stack

RNG = np.random.default_rng(1234)
EPS = 1e-6
TOL = 1e-5


def numerical_grad(fn, x: np.ndarray) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn`` at ``x``."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        plus = fn(x)
        flat[i] = orig - EPS
        minus = fn(x)
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2 * EPS)
    return grad


def check_op(op, shape=(3, 4), positive=False):
    """Assert analytic gradient of ``sum(op(x))`` matches numeric."""
    base = RNG.standard_normal(shape)
    if positive:
        base = np.abs(base) + 0.5
    x = Tensor(base.copy(), requires_grad=True)
    out = op(x)
    loss = out.sum()
    loss.backward()

    def scalar_fn(arr):
        return op(Tensor(arr)).sum().item()

    expected = numerical_grad(scalar_fn, base.copy())
    np.testing.assert_allclose(x.grad, expected, atol=TOL, rtol=TOL)


class TestElementwiseGrads:
    def test_add(self):
        check_op(lambda x: x + 2.5)

    def test_add_tensor(self):
        other = Tensor(RNG.standard_normal((3, 4)))
        check_op(lambda x: x + other)

    def test_add_broadcast(self):
        other = Tensor(RNG.standard_normal((4,)))
        check_op(lambda x: x + other)

    def test_neg(self):
        check_op(lambda x: -x)

    def test_sub(self):
        check_op(lambda x: x - 1.5)

    def test_rsub(self):
        check_op(lambda x: 1.5 - x)

    def test_mul(self):
        other = Tensor(RNG.standard_normal((3, 4)))
        check_op(lambda x: x * other)

    def test_mul_broadcast_scalar(self):
        check_op(lambda x: x * 3.0)

    def test_div(self):
        other = Tensor(np.abs(RNG.standard_normal((3, 4))) + 1.0)
        check_op(lambda x: x / other)

    def test_rdiv(self):
        check_op(lambda x: 2.0 / x, positive=True)

    def test_pow(self):
        check_op(lambda x: x ** 3)

    def test_pow_fractional(self):
        check_op(lambda x: x ** 0.5, positive=True)

    def test_exp(self):
        check_op(lambda x: x.exp())

    def test_log(self):
        check_op(lambda x: x.log(), positive=True)

    def test_tanh(self):
        check_op(lambda x: x.tanh())

    def test_sigmoid(self):
        check_op(lambda x: x.sigmoid())

    def test_relu(self):
        # Shift away from 0 to avoid the kink in the numeric check.
        check_op(lambda x: (x + 0.3).relu())


class TestMatmulGrads:
    def test_matmul_2d(self):
        other = Tensor(RNG.standard_normal((4, 5)))
        check_op(lambda x: x @ other)

    def test_matmul_grad_wrt_rhs(self):
        a = RNG.standard_normal((3, 4))
        b = RNG.standard_normal((4, 5))
        bt = Tensor(b.copy(), requires_grad=True)
        (Tensor(a) @ bt).sum().backward()
        expected = numerical_grad(lambda arr: (Tensor(a) @ Tensor(arr)).sum().item(), b.copy())
        np.testing.assert_allclose(bt.grad, expected, atol=TOL)

    def test_vec_mat(self):
        other = Tensor(RNG.standard_normal((4, 5)))
        check_op(lambda x: x @ other, shape=(4,))

    def test_mat_vec(self):
        vec = Tensor(RNG.standard_normal((4,)))
        check_op(lambda x: x @ vec)

    def test_vec_vec(self):
        vec = Tensor(RNG.standard_normal((4,)))
        check_op(lambda x: (x @ vec).reshape(1), shape=(4,))


class TestReductionsAndShapes:
    def test_sum_all(self):
        check_op(lambda x: x.sum().reshape(1))

    def test_sum_axis(self):
        check_op(lambda x: x.sum(axis=0))

    def test_sum_keepdims(self):
        check_op(lambda x: x.sum(axis=1, keepdims=True))

    def test_mean(self):
        check_op(lambda x: x.mean(axis=1))

    def test_max(self):
        check_op(lambda x: x.max(axis=1))

    def test_reshape(self):
        check_op(lambda x: x.reshape(4, 3))

    def test_transpose(self):
        check_op(lambda x: x.T)

    def test_getitem_slice(self):
        check_op(lambda x: x[1:, :2])

    def test_getitem_int_rows(self):
        check_op(lambda x: x[np.array([0, 2, 2])])

    def test_take_rows_repeats_accumulate(self):
        table = Tensor(RNG.standard_normal((5, 3)), requires_grad=True)
        out = table.take_rows([1, 1, 4])
        out.sum().backward()
        assert table.grad[1, 0] == pytest.approx(2.0)
        assert table.grad[4, 0] == pytest.approx(1.0)
        assert table.grad[0, 0] == pytest.approx(0.0)

    def test_concat(self):
        other = Tensor(RNG.standard_normal((3, 2)))
        check_op(lambda x: concat([x, other], axis=1))

    def test_concat_axis0(self):
        other = Tensor(RNG.standard_normal((2, 4)))
        check_op(lambda x: concat([other, x], axis=0))

    def test_stack(self):
        other = Tensor(RNG.standard_normal((3, 4)))
        check_op(lambda x: stack([x, other], axis=0))


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_diamond_graph(self):
        x = Tensor([1.5], requires_grad=True)
        a = x * 2.0
        b = a + a  # diamond: a used twice
        b.sum().backward()
        assert x.grad[0] == pytest.approx(4.0)

    def test_deep_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(200):
            y = y * 1.01
        y.backward()
        assert x.grad[0] == pytest.approx(1.01 ** 200, rel=1e-9)

    def test_backward_twice_accumulates(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        (x * 2.0).backward()
        assert x.grad[0] == pytest.approx(4.0)

    def test_detach_blocks_gradient(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach() * 3.0
        assert not y.requires_grad

    def test_no_grad_context(self):
        x = Tensor([1.0], requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
            assert not y.requires_grad
        assert is_grad_enabled()

    def test_backward_nonscalar_requires_grad_arg(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2).backward()

    def test_backward_without_requires_grad_raises(self):
        x = Tensor([1.0])
        with pytest.raises(GradientError):
            x.backward()

    def test_backward_bad_grad_shape(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2
        with pytest.raises(ShapeError):
            y.backward(np.ones(4))

    def test_explicit_grad_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2
        y.backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(x.grad, [2.0, 4.0, 6.0])

    def test_item_on_vector_raises(self):
        with pytest.raises(ShapeError):
            Tensor(np.ones(3)).item()

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_concat_empty_raises(self):
        with pytest.raises(ShapeError):
            concat([])

    def test_stack_empty_raises(self):
        with pytest.raises(ShapeError):
            stack([])

    def test_repr(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4
