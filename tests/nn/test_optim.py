"""Tests for SGD/Adam and gradient clipping: convergence + mechanics."""

import numpy as np
import pytest

from repro.nn import Adam, Linear, SGD, Tensor, clip_grad_norm
from repro.nn.module import Parameter


def quadratic_loss(param: Parameter) -> Tensor:
    """(p - 3)^2 summed — minimized at p == 3."""
    diff = param - Tensor(np.full(param.shape, 3.0))
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.numpy(), np.full(4, 3.0), atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.zeros(1))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return abs(p.numpy()[0] - 3.0)

        assert run(0.9) < run(0.0)

    def test_skips_params_without_grad(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.5)
        opt.step()  # no grad accumulated — must be a no-op
        np.testing.assert_array_equal(p.numpy(), np.ones(2))


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.numpy(), np.full(4, 3.0), atol=1e-3)

    def test_first_step_size_is_lr(self):
        """With bias correction, the first Adam step ≈ lr * sign(grad)."""
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=0.05)
        opt.zero_grad()
        quadratic_loss(p).backward()
        opt.step()
        assert p.numpy()[0] == pytest.approx(0.05, rel=1e-3)

    def test_trains_linear_regression(self):
        rng = np.random.default_rng(0)
        true_w = np.array([[2.0], [-1.0]])
        x = rng.standard_normal((64, 2))
        y = x @ true_w
        layer = Linear(2, 1, rng)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            pred = layer(Tensor(x))
            err = pred - Tensor(y)
            (err * err).mean().backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.numpy(), true_w, atol=0.02)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([0.1, 0.1, 0.1])
        norm = clip_grad_norm([p], max_norm=5.0)
        assert norm == pytest.approx(np.sqrt(0.03))
        np.testing.assert_allclose(p.grad, [0.1, 0.1, 0.1])

    def test_clips_above_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([30.0, 40.0])  # norm 50
        norm = clip_grad_norm([p], max_norm=5.0)
        assert norm == pytest.approx(50.0)
        assert np.linalg.norm(p.grad) == pytest.approx(5.0)

    def test_global_norm_across_params(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad, b.grad = np.array([3.0]), np.array([4.0])
        clip_grad_norm([a, b], max_norm=1.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0)

    def test_handles_missing_grads(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad = np.array([10.0])
        norm = clip_grad_norm([a, b], max_norm=1.0)
        assert norm == pytest.approx(10.0)
