"""Tests for Linear/Embedding/MLP/Dropout layers and Module mechanics."""

import numpy as np
import pytest

from repro.errors import ModelError, ShapeError
from repro.nn import MLP, Dropout, Embedding, Linear, Module, Parameter, Tensor
from repro.nn.serialization import load_module, save_module

RNG = np.random.default_rng(42)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 7, RNG)
        out = layer(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 7)

    def test_matches_manual_affine(self):
        layer = Linear(2, 2, RNG)
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.weight.numpy() + layer.bias.numpy()
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), expected)

    def test_no_bias(self):
        layer = Linear(3, 3, RNG, bias=False)
        assert layer.bias is None
        np.testing.assert_allclose(
            layer(Tensor(np.zeros((1, 3)))).numpy(), np.zeros((1, 3)))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            Linear(4, 2, RNG)(Tensor(np.ones((3, 5))))

    def test_gradients_flow_to_weight_and_bias(self):
        layer = Linear(3, 2, RNG)
        layer(Tensor(np.ones((2, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 5, RNG)
        assert emb([1, 2, 3]).shape == (3, 5)

    def test_lookup_2d(self):
        emb = Embedding(10, 5, RNG)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 5)

    def test_out_of_range_raises(self):
        emb = Embedding(10, 5, RNG)
        with pytest.raises(ShapeError):
            emb([10])
        with pytest.raises(ShapeError):
            emb([-1])

    def test_gradient_only_on_used_rows(self):
        emb = Embedding(6, 3, RNG)
        emb([2, 2, 5]).sum().backward()
        grad = emb.weight.grad
        np.testing.assert_allclose(grad[2], 2 * np.ones(3))
        np.testing.assert_allclose(grad[5], np.ones(3))
        np.testing.assert_allclose(grad[0], np.zeros(3))

    def test_load_pretrained(self):
        emb = Embedding(4, 2, RNG)
        matrix = np.arange(8.0).reshape(4, 2)
        emb.load_pretrained(matrix)
        np.testing.assert_array_equal(emb.weight.numpy(), matrix)

    def test_load_pretrained_freeze(self):
        emb = Embedding(4, 2, RNG)
        emb.load_pretrained(np.zeros((4, 2)), freeze=True)
        assert not emb.weight.requires_grad

    def test_load_pretrained_bad_shape(self):
        emb = Embedding(4, 2, RNG)
        with pytest.raises(ShapeError):
            emb.load_pretrained(np.zeros((3, 2)))


class TestMLP:
    def test_sizes(self):
        mlp = MLP([4, 8, 2], RNG)
        assert mlp(Tensor(np.ones((5, 4)))).shape == (5, 2)

    def test_sigmoid_output_in_unit_interval(self):
        mlp = MLP([3, 5, 1], RNG, output_activation="sigmoid")
        out = mlp(Tensor(RNG.standard_normal((10, 3)))).numpy()
        assert ((out > 0) & (out < 1)).all()

    def test_tanh_output(self):
        mlp = MLP([3, 1], RNG, output_activation="tanh")
        out = mlp(Tensor(RNG.standard_normal((10, 3)))).numpy()
        assert (np.abs(out) < 1).all()

    def test_unknown_activation_raises(self):
        mlp = MLP([3, 1], RNG, output_activation="gelu")
        with pytest.raises(ShapeError):
            mlp(Tensor(np.ones((1, 3))))

    def test_too_few_sizes_raises(self):
        with pytest.raises(ShapeError):
            MLP([3], RNG)


class TestModuleMechanics:
    def make_nested(self):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(2, 2, RNG)

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.layers = [Linear(2, 2, RNG), Linear(2, 2, RNG)]
                self.scale = Parameter(np.ones(1))

        return Outer()

    def test_named_parameters_recursive(self):
        model = self.make_nested()
        names = {name for name, _ in model.named_parameters()}
        assert "inner.lin.weight" in names
        assert "layers.0.weight" in names
        assert "layers.1.bias" in names
        assert "scale" in names

    def test_num_parameters(self):
        model = self.make_nested()
        # 3 Linear(2,2) layers: 3*(4+2) = 18, plus scale = 19.
        assert model.num_parameters() == 19

    def test_zero_grad(self):
        model = self.make_nested()
        (model.inner.lin(Tensor(np.ones((1, 2))))).sum().backward()
        assert model.inner.lin.weight.grad is not None
        model.zero_grad()
        assert model.inner.lin.weight.grad is None

    def test_train_eval_propagates(self):
        model = self.make_nested()
        model.eval()
        assert not model.inner.training
        model.train()
        assert model.inner.training

    def test_state_dict_roundtrip(self):
        model = self.make_nested()
        state = model.state_dict()
        other = self.make_nested()
        other.load_state_dict(state)
        np.testing.assert_array_equal(
            other.inner.lin.weight.numpy(), model.inner.lin.weight.numpy())

    def test_load_state_dict_missing_key_raises(self):
        model = self.make_nested()
        state = model.state_dict()
        state.pop("scale")
        with pytest.raises(ModelError):
            model.load_state_dict(state)

    def test_load_state_dict_bad_shape_raises(self):
        model = self.make_nested()
        state = model.state_dict()
        state["scale"] = np.ones(2)
        with pytest.raises(ModelError):
            model.load_state_dict(state)

    def test_save_load_npz(self, tmp_path):
        model = self.make_nested()
        path = tmp_path / "model.npz"
        save_module(model, path)
        other = self.make_nested()
        load_module(other, path)
        np.testing.assert_array_equal(other.scale.numpy(), model.scale.numpy())


class TestDropoutLayer:
    def test_eval_mode_identity(self):
        layer = Dropout(0.9, np.random.default_rng(0))
        layer.eval()
        x = Tensor(np.ones((3, 3)))
        np.testing.assert_array_equal(layer(x).numpy(), x.numpy())

    def test_train_mode_drops(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        out = layer(Tensor(np.ones((50, 50)))).numpy()
        assert (out == 0).any()
