"""Tests for LSTM/GRU cells and sequence layers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import LSTM, BiGRU, BiLSTM, GRU, GRUCell, LSTMCell, Tensor

RNG = np.random.default_rng(11)


def make_steps(t=4, batch=2, dim=3, seed=0):
    rng = np.random.default_rng(seed)
    return [Tensor(rng.standard_normal((batch, dim)), requires_grad=True)
            for _ in range(t)]


class TestLSTMCell:
    def test_state_shapes(self):
        cell = LSTMCell(3, 5, RNG)
        h, c = cell.initial_state(2)
        h2, c2 = cell(Tensor(np.ones((2, 3))), h, c)
        assert h2.shape == (2, 5) and c2.shape == (2, 5)

    def test_bad_input_raises(self):
        cell = LSTMCell(3, 5, RNG)
        h, c = cell.initial_state(2)
        with pytest.raises(ShapeError):
            cell(Tensor(np.ones((2, 4))), h, c)

    def test_hidden_bounded_by_tanh(self):
        cell = LSTMCell(3, 5, RNG)
        h, c = cell.initial_state(1)
        for _ in range(20):
            h, c = cell(Tensor(RNG.standard_normal((1, 3)) * 10), h, c)
        assert (np.abs(h.numpy()) <= 1.0).all()

    def test_gradient_reaches_early_input(self):
        cell = LSTMCell(3, 4, RNG)
        steps = make_steps(t=6, dim=3)
        h, c = cell.initial_state(2)
        for x in steps:
            h, c = cell(x, h, c)
        (h * h).sum().backward()
        assert steps[0].grad is not None
        assert np.abs(steps[0].grad).sum() > 0


class TestGRUCell:
    def test_state_shape(self):
        cell = GRUCell(3, 5, RNG)
        h = cell.initial_state(2)
        assert cell(Tensor(np.ones((2, 3))), h).shape == (2, 5)

    def test_bad_input_raises(self):
        cell = GRUCell(3, 5, RNG)
        with pytest.raises(ShapeError):
            cell(Tensor(np.ones((2, 4))), cell.initial_state(2))

    def test_interpolation_property(self):
        # With zero hidden state and candidate, output stays bounded by tanh.
        cell = GRUCell(2, 3, RNG)
        h = cell.initial_state(1)
        for _ in range(10):
            h = cell(Tensor(RNG.standard_normal((1, 2))), h)
        assert (np.abs(h.numpy()) < 1.0).all()


class TestSequenceLayers:
    @pytest.mark.parametrize("cls,out_mult", [
        (LSTM, 1), (GRU, 1), (BiLSTM, 2), (BiGRU, 2),
    ])
    def test_output_shapes(self, cls, out_mult):
        layer = cls(3, 5, RNG, num_layers=2)
        outs = layer(make_steps())
        assert len(outs) == 4
        assert outs[0].shape == (2, 5 * out_mult)

    @pytest.mark.parametrize("cls", [LSTM, GRU, BiLSTM, BiGRU])
    def test_empty_sequence_raises(self, cls):
        layer = cls(3, 5, RNG)
        with pytest.raises(ShapeError):
            layer([])

    def test_bilstm_backward_half_sees_future(self):
        """The backward half at step 0 must depend on the last step."""
        layer = BiLSTM(2, 3, np.random.default_rng(5))
        steps = make_steps(t=3, batch=1, dim=2, seed=1)
        base = layer(steps)[0].numpy().copy()
        # Perturb the final input; the backward state at step 0 should move.
        steps2 = [Tensor(s.numpy().copy()) for s in steps]
        steps2[-1] = Tensor(steps2[-1].numpy() + 1.0)
        perturbed = layer(steps2)[0].numpy()
        fwd_dim = 3
        np.testing.assert_allclose(base[:, :fwd_dim], perturbed[:, :fwd_dim])
        assert np.abs(base[:, fwd_dim:] - perturbed[:, fwd_dim:]).max() > 1e-8

    def test_unidirectional_is_causal(self):
        """A unidirectional GRU output at step t ignores steps > t."""
        layer = GRU(2, 3, np.random.default_rng(5))
        steps = make_steps(t=3, batch=1, dim=2, seed=1)
        base = layer(steps)[0].numpy().copy()
        steps2 = [Tensor(s.numpy().copy()) for s in steps]
        steps2[-1] = Tensor(steps2[-1].numpy() + 5.0)
        perturbed = layer(steps2)[0].numpy()
        np.testing.assert_allclose(base, perturbed)

    def test_gradients_flow_through_stack(self):
        layer = BiGRU(3, 4, RNG, num_layers=2)
        steps = make_steps()
        outs = layer(steps)
        total = outs[0].sum()
        for o in outs[1:]:
            total = total + o.sum()
        total.backward()
        for step in steps:
            assert step.grad is not None

    def test_num_layers_changes_parameter_count(self):
        one = LSTM(3, 4, np.random.default_rng(0), num_layers=1)
        two = LSTM(3, 4, np.random.default_rng(0), num_layers=2)
        assert two.num_parameters() > one.num_parameters()

    def test_deterministic_given_seed(self):
        a = GRU(3, 4, np.random.default_rng(9))
        b = GRU(3, 4, np.random.default_rng(9))
        steps = make_steps(seed=3)
        np.testing.assert_allclose(a(steps)[-1].numpy(), b(steps)[-1].numpy())
