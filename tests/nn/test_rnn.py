"""Tests for LSTM/GRU cells and sequence layers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import (
    LSTM,
    BiGRU,
    BiLSTM,
    GRU,
    GRUCell,
    LSTMCell,
    Tensor,
    pack_steps,
)

RNG = np.random.default_rng(11)


def make_steps(t=4, batch=2, dim=3, seed=0):
    rng = np.random.default_rng(seed)
    return [Tensor(rng.standard_normal((batch, dim)), requires_grad=True)
            for _ in range(t)]


def make_sequences(lengths, dim=3, seed=0):
    """B per-item sequences of (1, dim) step Tensors, varying lengths."""
    rng = np.random.default_rng(seed)
    return [[Tensor(rng.standard_normal((1, dim))) for _ in range(n)]
            for n in lengths]


class TestLSTMCell:
    def test_state_shapes(self):
        cell = LSTMCell(3, 5, RNG)
        h, c = cell.initial_state(2)
        h2, c2 = cell(Tensor(np.ones((2, 3))), h, c)
        assert h2.shape == (2, 5) and c2.shape == (2, 5)

    def test_bad_input_raises(self):
        cell = LSTMCell(3, 5, RNG)
        h, c = cell.initial_state(2)
        with pytest.raises(ShapeError):
            cell(Tensor(np.ones((2, 4))), h, c)

    def test_hidden_bounded_by_tanh(self):
        cell = LSTMCell(3, 5, RNG)
        h, c = cell.initial_state(1)
        for _ in range(20):
            h, c = cell(Tensor(RNG.standard_normal((1, 3)) * 10), h, c)
        assert (np.abs(h.numpy()) <= 1.0).all()

    def test_gradient_reaches_early_input(self):
        cell = LSTMCell(3, 4, RNG)
        steps = make_steps(t=6, dim=3)
        h, c = cell.initial_state(2)
        for x in steps:
            h, c = cell(x, h, c)
        (h * h).sum().backward()
        assert steps[0].grad is not None
        assert np.abs(steps[0].grad).sum() > 0


class TestGRUCell:
    def test_state_shape(self):
        cell = GRUCell(3, 5, RNG)
        h = cell.initial_state(2)
        assert cell(Tensor(np.ones((2, 3))), h).shape == (2, 5)

    def test_bad_input_raises(self):
        cell = GRUCell(3, 5, RNG)
        with pytest.raises(ShapeError):
            cell(Tensor(np.ones((2, 4))), cell.initial_state(2))

    def test_interpolation_property(self):
        # With zero hidden state and candidate, output stays bounded by tanh.
        cell = GRUCell(2, 3, RNG)
        h = cell.initial_state(1)
        for _ in range(10):
            h = cell(Tensor(RNG.standard_normal((1, 2))), h)
        assert (np.abs(h.numpy()) < 1.0).all()


class TestSequenceLayers:
    @pytest.mark.parametrize("cls,out_mult", [
        (LSTM, 1), (GRU, 1), (BiLSTM, 2), (BiGRU, 2),
    ])
    def test_output_shapes(self, cls, out_mult):
        layer = cls(3, 5, RNG, num_layers=2)
        outs = layer(make_steps())
        assert len(outs) == 4
        assert outs[0].shape == (2, 5 * out_mult)

    @pytest.mark.parametrize("cls", [LSTM, GRU, BiLSTM, BiGRU])
    def test_empty_sequence_raises(self, cls):
        layer = cls(3, 5, RNG)
        with pytest.raises(ShapeError):
            layer([])

    def test_bilstm_backward_half_sees_future(self):
        """The backward half at step 0 must depend on the last step."""
        layer = BiLSTM(2, 3, np.random.default_rng(5))
        steps = make_steps(t=3, batch=1, dim=2, seed=1)
        base = layer(steps)[0].numpy().copy()
        # Perturb the final input; the backward state at step 0 should move.
        steps2 = [Tensor(s.numpy().copy()) for s in steps]
        steps2[-1] = Tensor(steps2[-1].numpy() + 1.0)
        perturbed = layer(steps2)[0].numpy()
        fwd_dim = 3
        np.testing.assert_allclose(base[:, :fwd_dim], perturbed[:, :fwd_dim])
        assert np.abs(base[:, fwd_dim:] - perturbed[:, fwd_dim:]).max() > 1e-8

    def test_unidirectional_is_causal(self):
        """A unidirectional GRU output at step t ignores steps > t."""
        layer = GRU(2, 3, np.random.default_rng(5))
        steps = make_steps(t=3, batch=1, dim=2, seed=1)
        base = layer(steps)[0].numpy().copy()
        steps2 = [Tensor(s.numpy().copy()) for s in steps]
        steps2[-1] = Tensor(steps2[-1].numpy() + 5.0)
        perturbed = layer(steps2)[0].numpy()
        np.testing.assert_allclose(base, perturbed)

    def test_gradients_flow_through_stack(self):
        layer = BiGRU(3, 4, RNG, num_layers=2)
        steps = make_steps()
        outs = layer(steps)
        total = outs[0].sum()
        for o in outs[1:]:
            total = total + o.sum()
        total.backward()
        for step in steps:
            assert step.grad is not None

    def test_num_layers_changes_parameter_count(self):
        one = LSTM(3, 4, np.random.default_rng(0), num_layers=1)
        two = LSTM(3, 4, np.random.default_rng(0), num_layers=2)
        assert two.num_parameters() > one.num_parameters()

    def test_deterministic_given_seed(self):
        a = GRU(3, 4, np.random.default_rng(9))
        b = GRU(3, 4, np.random.default_rng(9))
        steps = make_steps(seed=3)
        np.testing.assert_allclose(a(steps)[-1].numpy(), b(steps)[-1].numpy())


class TestPackSteps:
    def test_pads_to_longest(self):
        steps, lengths = pack_steps(make_sequences([3, 1, 2]))
        assert len(steps) == 3
        assert steps[0].shape == (3, 3)
        np.testing.assert_array_equal(lengths, [3, 1, 2])

    def test_padding_is_zero(self):
        steps, _ = pack_steps(make_sequences([1, 3]))
        assert np.abs(steps[2].numpy()[0]).max() == 0.0

    def test_empty_batch_raises(self):
        with pytest.raises(ShapeError):
            pack_steps([])

    def test_empty_sequence_raises(self):
        with pytest.raises(ShapeError):
            pack_steps([make_sequences([2])[0], []])


class TestBatchedSequenceLayers:
    """forward_batch must match B independent per-item runs exactly."""

    LENGTHS = [5, 2, 4, 1]

    def per_item(self, layer, sequences, reverse=False):
        """Reference: run each sequence alone (reversed if asked)."""
        outs = []
        for seq in sequences:
            seq = list(reversed(seq)) if reverse else seq
            out = [o.numpy().reshape(-1) for o in layer(seq)]
            outs.append(list(reversed(out)) if reverse else out)
        return outs

    def assert_matches(self, batched, reference, lengths):
        for b, n in enumerate(lengths):
            for t in range(n):
                np.testing.assert_allclose(
                    batched[t].numpy()[b], reference[b][t], atol=1e-12)

    @pytest.mark.parametrize("cls,layers", [
        (LSTM, 1), (GRU, 1), (BiLSTM, 1), (BiGRU, 1),
        (LSTM, 2), (GRU, 2), (BiLSTM, 2), (BiGRU, 2),
    ])
    def test_variable_lengths_match_per_item(self, cls, layers):
        layer = cls(3, 4, np.random.default_rng(7), num_layers=layers)
        sequences = make_sequences(self.LENGTHS, seed=2)
        steps, lengths = pack_steps(sequences)
        batched = layer.forward_batch(steps, lengths)
        self.assert_matches(batched, self.per_item(layer, sequences), lengths)

    @pytest.mark.parametrize("cls", [LSTM, GRU])
    def test_reverse_matches_reversed_per_item(self, cls):
        layer = cls(3, 4, np.random.default_rng(8))
        sequences = make_sequences(self.LENGTHS, seed=3)
        steps, lengths = pack_steps(sequences)
        batched = layer.forward_batch(steps, lengths, reverse=True)
        self.assert_matches(
            batched, self.per_item(layer, sequences, reverse=True), lengths)

    def test_uniform_lengths_need_no_mask(self):
        layer = GRU(3, 4, np.random.default_rng(4))
        sequences = make_sequences([3, 3], seed=5)
        steps, lengths = pack_steps(sequences)
        with_mask = layer.forward_batch(steps, lengths)
        without = layer.forward_batch(steps)
        for a, b in zip(with_mask, without):
            np.testing.assert_allclose(a.numpy(), b.numpy())

    def test_gradients_flow_through_batched_run(self):
        layer = BiGRU(3, 4, np.random.default_rng(6))
        steps = make_steps(t=3, batch=2, dim=3, seed=9)
        lengths = np.array([3, 2])
        outs = layer.forward_batch(steps, lengths)
        total = outs[0].sum()
        for o in outs[1:]:
            total = total + o.sum()
        total.backward()
        for step in steps:
            assert step.grad is not None

    def test_masked_lane_state_is_held(self):
        """A finished lane's output never changes after its last step."""
        layer = LSTM(3, 4, np.random.default_rng(10))
        sequences = make_sequences([1, 4], seed=11)
        steps, lengths = pack_steps(sequences)
        outs = layer.forward_batch(steps, lengths)
        for t in range(1, 4):
            np.testing.assert_allclose(outs[t].numpy()[0],
                                       outs[0].numpy()[0])
