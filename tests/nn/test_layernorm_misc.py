"""Tests for LayerNorm and remaining nn surface (modules listing, etc.)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import LayerNorm, Tensor

RNG = np.random.default_rng(5)


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        norm = LayerNorm(8)
        out = norm(Tensor(RNG.standard_normal((4, 8)) * 10 + 3)).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-3)

    def test_gain_and_bias_applied(self):
        norm = LayerNorm(4)
        norm.gain.data = np.full(4, 2.0)
        norm.bias.data = np.full(4, 1.0)
        out = norm(Tensor(RNG.standard_normal((3, 4)))).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.ones(3), atol=1e-9)

    def test_wrong_dim_raises(self):
        with pytest.raises(ShapeError):
            LayerNorm(4)(Tensor(np.ones((2, 5))))

    def test_gradient_flows(self):
        norm = LayerNorm(6)
        x = Tensor(RNG.standard_normal((2, 6)), requires_grad=True)
        (norm(x) ** 2).sum().backward()
        assert x.grad is not None
        assert norm.gain.grad is not None
        assert norm.bias.grad is not None

    def test_gradcheck(self):
        norm = LayerNorm(5)
        base = RNG.standard_normal((2, 5))
        x = Tensor(base.copy(), requires_grad=True)
        (norm(x) ** 2).sum().backward()
        eps = 1e-6
        num = np.zeros_like(base)
        for idx in np.ndindex(*base.shape):
            plus, minus = base.copy(), base.copy()
            plus[idx] += eps
            minus[idx] -= eps
            f_plus = (norm(Tensor(plus)) ** 2).sum().item()
            f_minus = (norm(Tensor(minus)) ** 2).sum().item()
            num[idx] = (f_plus - f_minus) / (2 * eps)
        np.testing.assert_allclose(x.grad, num, atol=1e-5)

    def test_scale_invariance(self):
        """LayerNorm output is invariant to input scaling (up to eps)."""
        norm = LayerNorm(8)
        x = RNG.standard_normal((1, 8))
        a = norm(Tensor(x)).numpy()
        b = norm(Tensor(x * 100)).numpy()
        np.testing.assert_allclose(a, b, atol=1e-4)


class TestExamplesCompile:
    """Every example script must at least be syntactically valid."""

    @pytest.mark.parametrize("name", [
        "quickstart", "film_awards_nli", "census_geography_nli",
        "transfer_learning_demo", "adversarial_inspection",
    ])
    def test_example_compiles(self, name):
        import pathlib
        import py_compile
        path = (pathlib.Path(__file__).resolve().parents[2]
                / "examples" / f"{name}.py")
        assert path.exists()
        py_compile.compile(str(path), doraise=True)
