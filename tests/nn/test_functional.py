"""Tests for softmax/losses/dropout, including gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn.functional import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    dropout,
    log_softmax,
    masked_softmax,
    softmax,
)
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(7)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = softmax(Tensor(RNG.standard_normal((5, 9))))
        np.testing.assert_allclose(out.numpy().sum(axis=-1), np.ones(5), atol=1e-12)

    def test_stability_large_logits(self):
        out = softmax(Tensor(np.array([[1000.0, 1000.0, -1000.0]])))
        assert np.isfinite(out.numpy()).all()
        np.testing.assert_allclose(out.numpy()[0, :2], [0.5, 0.5], atol=1e-9)

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor(RNG.standard_normal((4, 6)))
        np.testing.assert_allclose(
            log_softmax(logits).numpy(), np.log(softmax(logits).numpy()), atol=1e-10)

    def test_softmax_gradient(self):
        base = RNG.standard_normal((2, 5))
        x = Tensor(base.copy(), requires_grad=True)
        (softmax(x) * Tensor(np.arange(10.0).reshape(2, 5))).sum().backward()
        eps = 1e-6
        num = np.zeros_like(base)
        weight = np.arange(10.0).reshape(2, 5)
        for i in np.ndindex(*base.shape):
            plus, minus = base.copy(), base.copy()
            plus[i] += eps
            minus[i] -= eps
            f_plus = (softmax(Tensor(plus)).numpy() * weight).sum()
            f_minus = (softmax(Tensor(minus)).numpy() * weight).sum()
            num[i] = (f_plus - f_minus) / (2 * eps)
        np.testing.assert_allclose(x.grad, num, atol=1e-5)

    @given(st.integers(2, 6), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_softmax_probability_simplex(self, rows, cols):
        rng = np.random.default_rng(rows * 31 + cols)
        out = softmax(Tensor(rng.standard_normal((rows, cols)))).numpy()
        assert (out >= 0).all()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(rows), atol=1e-9)


class TestMaskedSoftmax:
    def test_masked_positions_get_zero(self):
        logits = Tensor(np.zeros((4,)))
        mask = np.array([True, False, True, False])
        out = masked_softmax(logits, mask).numpy()
        np.testing.assert_allclose(out, [0.5, 0.0, 0.5, 0.0], atol=1e-8)

    def test_mask_broadcast(self):
        logits = Tensor(np.zeros((2, 3)))
        out = masked_softmax(logits, np.array([True, True, False])).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), [1.0, 1.0], atol=1e-8)
        assert (out[:, 2] < 1e-6).all()


class TestCrossEntropy:
    def test_value_matches_manual(self):
        logits = np.array([[2.0, 0.0], [0.0, 3.0]])
        loss = cross_entropy(Tensor(logits), [0, 1]).item()
        manual = -np.mean([
            np.log(np.exp(2) / (np.exp(2) + 1)),
            np.log(np.exp(3) / (np.exp(3) + 1)),
        ])
        assert loss == pytest.approx(manual, rel=1e-9)

    def test_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(RNG.standard_normal((3, 4)), requires_grad=True)
        targets = [1, 0, 3]
        cross_entropy(logits, targets).backward()
        probs = softmax(Tensor(logits.numpy())).numpy()
        onehot = np.zeros((3, 4))
        onehot[np.arange(3), targets] = 1.0
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 3.0, atol=1e-9)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), [0, 1])
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros((2, 3))), [0, 1, 2])


class TestBCE:
    def test_matches_manual(self):
        logits = np.array([0.5, -1.0])
        targets = np.array([1.0, 0.0])
        p = 1 / (1 + np.exp(-logits))
        manual = -np.mean(targets * np.log(p) + (1 - targets) * np.log(1 - p))
        loss = binary_cross_entropy_with_logits(Tensor(logits), targets).item()
        assert loss == pytest.approx(manual, rel=1e-9)

    def test_stable_for_extreme_logits(self):
        loss = binary_cross_entropy_with_logits(
            Tensor(np.array([500.0, -500.0])), [1.0, 0.0]).item()
        assert np.isfinite(loss)
        assert loss == pytest.approx(0.0, abs=1e-9)

    def test_gradient_sign(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        binary_cross_entropy_with_logits(x, [1.0]).backward()
        assert x.grad[0] < 0  # pushing logit up reduces loss for target 1


class TestDropout:
    def test_identity_when_eval(self):
        x = Tensor(np.ones((4, 4)))
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        np.testing.assert_array_equal(out.numpy(), x.numpy())

    def test_identity_when_rate_zero(self):
        x = Tensor(np.ones((4, 4)))
        out = dropout(x, 0.0, np.random.default_rng(0), training=True)
        np.testing.assert_array_equal(out.numpy(), x.numpy())

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.5, rng, training=True).numpy()
        assert out.mean() == pytest.approx(1.0, abs=0.05)
        assert set(np.unique(out)) <= {0.0, 2.0}
