"""Tests for the character-CNN encoder and additive attention."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import AdditiveAttention, CharConvEncoder, Conv1d, Tensor

RNG = np.random.default_rng(21)


class TestConv1d:
    def test_output_shape(self):
        conv = Conv1d(3, 4, 6, RNG)
        out = conv(Tensor(RNG.standard_normal((8, 4))))
        assert out.shape == (6,)

    def test_short_input_zero_padded(self):
        conv = Conv1d(5, 4, 6, RNG)
        out = conv(Tensor(RNG.standard_normal((2, 4))))
        assert out.shape == (6,)
        assert np.isfinite(out.numpy()).all()

    def test_input_exactly_width(self):
        conv = Conv1d(3, 2, 4, RNG)
        out = conv(Tensor(RNG.standard_normal((3, 2))))
        assert out.shape == (4,)

    def test_bad_channels_raises(self):
        conv = Conv1d(3, 4, 6, RNG)
        with pytest.raises(ShapeError):
            conv(Tensor(np.ones((5, 3))))

    def test_bad_width_raises(self):
        with pytest.raises(ShapeError):
            Conv1d(0, 4, 6, RNG)

    def test_shared_projection_across_slices(self):
        """A constant input makes all slices equal → output equals one slice."""
        conv = Conv1d(2, 3, 4, RNG)
        row = RNG.standard_normal(3)
        matrix = np.tile(row, (6, 1))
        out = conv(Tensor(matrix)).numpy()
        single = conv(Tensor(np.tile(row, (2, 1)))).numpy()
        np.testing.assert_allclose(out, single, atol=1e-12)

    def test_gradient_flows(self):
        conv = Conv1d(3, 4, 6, RNG)
        x = Tensor(RNG.standard_normal((8, 4)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad is not None
        assert conv.projection.weight.grad is not None


class TestCharConvEncoder:
    def test_output_dim_is_width_count_times_per_width(self):
        enc = CharConvEncoder(20, 5, 7, RNG, widths=(3, 4, 5))
        assert enc.out_dim == 21
        assert enc([1, 2, 3, 4]).shape == (21,)

    def test_default_paper_widths(self):
        enc = CharConvEncoder(20, 5, 4, RNG)
        assert enc.widths == (3, 4, 5, 6, 7)
        assert enc.out_dim == 20

    def test_single_char_word(self):
        enc = CharConvEncoder(20, 5, 4, RNG)
        assert enc([3]).shape == (20,)

    def test_empty_word_raises(self):
        enc = CharConvEncoder(20, 5, 4, RNG)
        with pytest.raises(ShapeError):
            enc([])

    def test_encode_batch(self):
        enc = CharConvEncoder(20, 5, 4, RNG, widths=(3,))
        out = enc.encode_batch([[1, 2], [3, 4, 5], [6]])
        assert out.shape == (3, 4)

    def test_char_embedding_shared_across_widths(self):
        """Gradients from every conv width accumulate on one char table."""
        enc = CharConvEncoder(20, 5, 4, RNG, widths=(2, 3))
        enc([1, 2, 3]).sum().backward()
        assert enc.char_embedding.weight.grad is not None
        assert np.abs(enc.char_embedding.weight.grad[1]).sum() > 0

    def test_similar_words_have_similar_encodings(self):
        enc = CharConvEncoder(30, 8, 6, np.random.default_rng(3), widths=(3,))
        a = enc([1, 2, 3, 4, 5]).numpy()
        b = enc([1, 2, 3, 4, 6]).numpy()   # one char differs
        c = enc([10, 11, 12, 13, 14]).numpy()  # all chars differ
        assert np.linalg.norm(a - b) < np.linalg.norm(a - c)


class TestAdditiveAttention:
    def test_weights_form_distribution(self):
        att = AdditiveAttention(6, 4, 5, RNG)
        memory = Tensor(RNG.standard_normal((7, 6)))
        _, weights = att(memory, Tensor(RNG.standard_normal(4)))
        w = weights.numpy()
        assert w.shape == (7,)
        assert (w >= 0).all()
        assert w.sum() == pytest.approx(1.0)

    def test_context_is_convex_combination(self):
        att = AdditiveAttention(6, 4, 5, RNG)
        mem = RNG.standard_normal((7, 6))
        context, _ = att(Tensor(mem), Tensor(RNG.standard_normal(4)))
        c = context.numpy()
        assert (c <= mem.max(axis=0) + 1e-9).all()
        assert (c >= mem.min(axis=0) - 1e-9).all()

    def test_mask_excludes_positions(self):
        att = AdditiveAttention(6, 4, 5, RNG)
        memory = Tensor(RNG.standard_normal((5, 6)))
        mask = np.array([True, True, False, False, False])
        _, weights = att(memory, Tensor(np.zeros(4)), mask=mask)
        assert weights.numpy()[2:].max() < 1e-6

    def test_2d_query_accepted(self):
        att = AdditiveAttention(6, 4, 5, RNG)
        memory = Tensor(RNG.standard_normal((5, 6)))
        context, _ = att(memory, Tensor(np.zeros((1, 4))))
        assert context.shape == (6,)

    def test_bad_memory_raises(self):
        att = AdditiveAttention(6, 4, 5, RNG)
        with pytest.raises(ShapeError):
            att(Tensor(np.zeros((2, 3, 6))), Tensor(np.zeros(4)))

    def test_gradients_flow_to_all_parameters(self):
        att = AdditiveAttention(6, 4, 5, RNG)
        memory = Tensor(RNG.standard_normal((5, 6)), requires_grad=True)
        query = Tensor(RNG.standard_normal(4), requires_grad=True)
        context, _ = att(memory, query)
        context.sum().backward()
        assert memory.grad is not None
        assert query.grad is not None
        assert att.v.grad is not None


class TestBatchedAdditiveAttention:
    """scores_batch/forward_batch must match per-query calls exactly."""

    def make(self, seed=13):
        att = AdditiveAttention(6, 4, 5, np.random.default_rng(seed))
        rng = np.random.default_rng(seed + 1)
        memory = Tensor(rng.standard_normal((7, 6)))
        queries = Tensor(rng.standard_normal((3, 4)))
        return att, memory, queries

    def test_scores_match_per_query(self):
        att, memory, queries = self.make()
        batched = att.scores_batch(memory, queries).numpy()
        assert batched.shape == (3, 7)
        for b in range(3):
            single = att.scores(memory,
                                Tensor(queries.numpy()[b:b + 1])).numpy()
            np.testing.assert_allclose(batched[b], single.reshape(-1),
                                       atol=1e-12)

    def test_forward_matches_per_query(self):
        att, memory, queries = self.make(seed=17)
        contexts, weights = att.forward_batch(memory, queries)
        assert contexts.shape == (3, 6)
        assert weights.shape == (3, 7)
        np.testing.assert_allclose(weights.numpy().sum(axis=1),
                                   np.ones(3), atol=1e-12)
        for b in range(3):
            context, w = att(memory, Tensor(queries.numpy()[b:b + 1]))
            np.testing.assert_allclose(contexts.numpy()[b],
                                       context.numpy().reshape(-1),
                                       atol=1e-12)
            np.testing.assert_allclose(weights.numpy()[b],
                                       w.numpy().reshape(-1), atol=1e-12)

    def test_gradients_flow_through_batch(self):
        att, memory, queries = self.make(seed=19)
        queries = Tensor(queries.numpy(), requires_grad=True)
        contexts, _ = att.forward_batch(memory, queries)
        contexts.sum().backward()
        assert queries.grad is not None
        assert att.v.grad is not None
