"""Session-wide trained-model fixtures.

One small NLIDB is trained per session and shared wherever a *real*
fitted model is needed — the serving differential/concurrency suites
and the pipeline trace suites — so the expensive training happens once.
Mutable per-test objects (services, injectors) live in the package
conftests instead.
"""

import pytest

from repro.core import NLIDB, NLIDBConfig
from repro.core.seq2seq.model import Seq2SeqConfig
from repro.data import generate_wikisql_style
from repro.text import WordEmbeddings


@pytest.fixture(scope="session")
def serving_dataset():
    # dev is the serving corpus: ≥ 50 (question, table) pairs spread
    # round-robin over every training domain (≥ 3 domains guaranteed,
    # asserted in the differential suite).
    return generate_wikisql_style(seed=23, train_size=60, dev_size=54,
                                  test_size=0, rows_per_table=6)


@pytest.fixture(scope="session")
def nlidb(serving_dataset):
    cfg = NLIDBConfig(classifier_epochs=1, value_epochs=12,
                      seq2seq_epochs=4,
                      seq2seq=Seq2SeqConfig(hidden=24, attention_dim=24))
    return NLIDB(WordEmbeddings(dim=32, seed=0), cfg).fit(
        serving_dataset.train)


@pytest.fixture(scope="session")
def corpus(serving_dataset):
    return serving_dataset.dev


@pytest.fixture(scope="session")
def direct_translations(nlidb, corpus):
    """Ground truth: the slow path, one direct call per pair."""
    return [nlidb.translate(e.question_tokens, e.table) for e in corpus]
