"""Concurrency: one service hammered from a thread pool stays correct.

The numpy substrate's grad-mode flag is process-global, so the service
serializes model inference behind a lock while cache hits proceed
concurrently — under mixed repeated traffic the results must match the
direct pipeline exactly and the counters must still sum.
"""

from concurrent.futures import ThreadPoolExecutor

WORKERS = 8
REQUESTS_PER_WORKER = 25


class TestConcurrentServing:
    def test_thread_pool_hammering(self, service, corpus,
                                   direct_translations):
        # Mixed traffic: every worker walks the same 10 hot pairs in a
        # worker-specific order, so threads race on both cold fills and
        # warm hits of the same keys.
        hot = list(zip(corpus[:10], direct_translations[:10]))

        def worker(worker_id: int):
            outcomes = []
            for i in range(REQUESTS_PER_WORKER):
                example, reference = hot[(worker_id + i) % len(hot)]
                result = service.translate(example.question_tokens,
                                           example.table)
                outcomes.append(result.translation.result_equal(reference))
            return outcomes

        with ThreadPoolExecutor(max_workers=WORKERS) as pool:
            futures = [pool.submit(worker, w) for w in range(WORKERS)]
            # .result() re-raises any worker exception -> test failure.
            results = [f.result() for f in futures]

        assert all(all(outcome) for outcome in results)

        total = WORKERS * REQUESTS_PER_WORKER
        metrics = service.metrics
        assert metrics.counter("requests") == total
        assert metrics.counter("cache_hits") \
            + metrics.counter("cache_misses") == total
        # Each distinct pair is computed at least once, and no more
        # computations than requests ever happen.
        assert len(hot) <= metrics.counter("cache_misses") <= total

    def test_concurrent_batches(self, service, corpus, direct_translations):
        pairs = list(zip(corpus[:12], direct_translations[:12]))

        def worker(offset: int):
            rotated = pairs[offset:] + pairs[:offset]
            served = service.translate_batch(
                [(e.question_tokens, e.table) for e, _ in rotated])
            return [t.translation.result_equal(r)
                    for t, (_, r) in zip(served, rotated)]

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = [f.result()
                       for f in [pool.submit(worker, w) for w in range(4)]]

        assert all(all(outcome) for outcome in results)
        metrics = service.metrics
        assert metrics.counter("requests") == 4 * len(pairs)
        assert metrics.counter("cache_hits") \
            + metrics.counter("cache_misses") == metrics.counter("requests")
