"""Fault-injection suite: every policy, against manufactured failures.

The matrix crosses pipeline stage × fault kind × breaker configuration
and asserts the serving contract: ``translate_batch`` returns a
structured :class:`TranslationResult` for **every** request — zero
escaped exceptions — with transient faults absorbed by retries,
permanent faults degraded or failed, the breaker observably opening
and half-opening, and deadlines enforced per stage.

The matrix runs on a stub translator (milliseconds); the degraded-path
differential test at the bottom uses the session-trained model from
``conftest.py``.
"""

import time

import pytest

from repro.core import NLIDB, NLIDBConfig
from repro.serving import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    FaultInjector,
    FaultSpec,
    FaultyNLIDB,
    ResiliencePolicy,
    TranslationResult,
    TranslationService,
    parse_fault_spec,
)
from repro.sqlengine import Column, DataType, Table
from repro.text import WordEmbeddings

EMB = WordEmbeddings(dim=16, seed=0)

STAGES = ("annotate", "translate", "recover")


class StubTranslator:
    def __init__(self):
        self.calls = 0

        class _Config:
            beam_width = 5
        self.config = _Config()

    def translate(self, source, header_tokens, extra_symbols=(),
                  beam_width=None):
        self.calls += 1
        return ["select", "g1"]


def make_table(i=0):
    return Table(f"films_{i}", [Column("film"), Column("director"),
                                Column("year", DataType.REAL)],
                 [(f"solaris_{i}", "tarkovsky", 1972 + i),
                  (f"stalker_{i}", "tarkovsky", 1979 + i)])


def make_requests(n=6):
    # Distinct tables so nothing is answered from the cache.
    return [(f"which film has director tarkovsky {i} ?", make_table(i))
            for i in range(n)]


def faulty_service(specs, policy=None, seed=0):
    model = NLIDB(EMB, NLIDBConfig(), translator=StubTranslator())
    model._fitted = True  # annotator runs matcher-only when untrained
    injector = FaultInjector(specs, seed=seed)
    service = TranslationService(
        FaultyNLIDB(model, injector),
        policy=policy or ResiliencePolicy(backoff_base_s=0.0))
    return service, injector


def assert_all_structured(results, n):
    assert len(results) == n
    for result in results:
        assert isinstance(result, TranslationResult)
        assert result.status in ("ok", "degraded", "failed")
        if result.status == "failed":
            assert result.error is not None
        else:
            assert result.sql is not None


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(stage="nope")
        with pytest.raises(ValueError):
            FaultSpec(stage="annotate", kind="explode")
        with pytest.raises(ValueError):
            FaultSpec(stage="annotate", count=0)
        with pytest.raises(ValueError):
            FaultSpec(stage="annotate", probability=1.5)

    def test_parse_shorthand(self):
        spec = parse_fault_spec("annotate:transient:2")
        assert spec == FaultSpec(stage="annotate", kind="transient", count=2)
        spec = parse_fault_spec("translate:permanent")
        assert spec.kind == "permanent" and spec.count is None
        spec = parse_fault_spec("annotate:latency:3:0.2")
        assert spec.kind == "latency" and spec.latency_s == 0.2
        with pytest.raises(ValueError):
            parse_fault_spec("a:b:c:d:e")

    def test_injector_is_deterministic_across_seeds(self):
        def fired(seed):
            service, injector = faulty_service(
                [FaultSpec(stage="translate", kind="transient",
                           probability=0.5)],
                policy=ResiliencePolicy(max_retries=10, backoff_base_s=0.0),
                seed=seed)
            service.translate_batch(make_requests(8))
            return injector.stats()["fired"][0]["fired"]

        assert fired(7) == fired(7)  # same seed, same plan
        assert fired(7) != fired(1234) or fired(7) > 0


class TestFaultMatrix:
    """stage × transient/permanent × breaker closed/open-prone."""

    @pytest.mark.parametrize("stage", STAGES)
    @pytest.mark.parametrize("tight_breaker", [False, True])
    def test_transient_faults_are_retried_to_ok(self, stage, tight_breaker):
        policy = ResiliencePolicy(
            max_retries=3, backoff_base_s=0.0,
            breaker_failure_threshold=2 if tight_breaker else 1000)
        service, injector = faulty_service(
            [FaultSpec(stage=stage, kind="transient", count=2)], policy)
        requests = make_requests(6)
        results = service.translate_batch(requests)
        assert_all_structured(results, len(requests))
        assert all(r.status == "ok" for r in results)
        # The faulted request records its extra attempts.
        assert max(r.attempts for r in results) >= 2
        assert service.metrics.counter("retries") == 2
        assert service.breaker.state == BREAKER_CLOSED
        assert injector.stats()["fired"][0]["fired"] == 2

    @pytest.mark.parametrize("stage", STAGES)
    @pytest.mark.parametrize("tight_breaker", [False, True])
    def test_permanent_faults_stay_structured(self, stage, tight_breaker):
        threshold = 2 if tight_breaker else 1000
        policy = ResiliencePolicy(
            max_retries=2, backoff_base_s=0.0,
            breaker_failure_threshold=threshold,
            breaker_cooldown_s=60.0)
        service, _ = faulty_service(
            [FaultSpec(stage=stage, kind="permanent")], policy)
        requests = make_requests(6)
        results = service.translate_batch(requests)
        assert_all_structured(results, len(requests))
        # The same stage also faults in the degraded rung, so nothing
        # can be served; every envelope is a structured failure.
        assert all(r.status == "failed" for r in results)
        assert all(r.error["type"] == "InjectedFault" for r in results)
        # Permanent faults must not burn retries.
        assert service.metrics.counter("retries") == 0
        metrics = service.metrics
        assert metrics.counter("served_failed") == len(requests)
        if tight_breaker:
            assert service.breaker.state == BREAKER_OPEN
            assert metrics.counter("full_path_failures") == threshold
            assert metrics.counter("breaker_short_circuits") \
                == len(requests) - threshold
        else:
            assert service.breaker.state == BREAKER_CLOSED
            assert metrics.counter("full_path_failures") == len(requests)

    @pytest.mark.parametrize("stage", STAGES)
    def test_full_path_only_faults_fall_to_degraded(self, stage):
        # mode="full" restricts annotate faults to the full rung; for
        # translate/recover the same effect comes from a count that the
        # full-path attempts exhaust before the degraded rung runs.
        if stage == "annotate":
            specs = [FaultSpec(stage=stage, kind="permanent", mode="full")]
            n = 6
        else:
            specs = [FaultSpec(stage=stage, kind="permanent", count=1)]
            n = 1
        service, _ = faulty_service(
            specs, ResiliencePolicy(max_retries=0, backoff_base_s=0.0,
                                    breaker_failure_threshold=1000))
        requests = make_requests(n)
        results = service.translate_batch(requests)
        assert_all_structured(results, n)
        assert all(r.status == "degraded" for r in results)
        assert all(r.error["type"] == "InjectedFault" for r in results)
        assert all("degraded.annotate" in r.timings for r in results)
        assert service.metrics.counter("degraded_fallbacks") == n

    def test_probabilistic_transients_all_recover(self):
        service, _ = faulty_service(
            [FaultSpec(stage="translate", kind="transient",
                       probability=0.4)],
            ResiliencePolicy(max_retries=25, backoff_base_s=0.0,
                             breaker_failure_threshold=1000),
            seed=3)
        requests = make_requests(10)
        results = service.translate_batch(requests)
        assert_all_structured(results, len(requests))
        assert all(r.status == "ok" for r in results)


class TestDegradedResultsAreNotCached:
    def test_recovery_after_fault_clears(self):
        # Two permanent full-rung annotate faults degrade the first two
        # serves of the same key; once the plan is exhausted the same
        # question is answered by the full pipeline and only then cached.
        service, _ = faulty_service(
            [FaultSpec(stage="annotate", kind="permanent", mode="full",
                       count=2)],
            ResiliencePolicy(max_retries=0, backoff_base_s=0.0,
                             breaker_failure_threshold=1000))
        table = make_table()
        question = "which film has director tarkovsky ?"
        first = service.translate(question, table)
        second = service.translate(question, table)
        third = service.translate(question, table)
        fourth = service.translate(question, table)
        assert [r.status for r in (first, second, third, fourth)] \
            == ["degraded", "degraded", "ok", "ok"]
        assert not third.cached and fourth.cached
        assert service.metrics.counter("cache_misses") == 3


class TestCircuitBreakerServing:
    def test_opens_then_half_opens_then_closes(self):
        # Exactly two permanent failures trip the threshold-2 breaker;
        # the plan then runs dry, so the post-cooldown probe succeeds.
        policy = ResiliencePolicy(max_retries=0, backoff_base_s=0.0,
                                  degradation=True,
                                  breaker_failure_threshold=2,
                                  breaker_cooldown_s=0.05)
        service, _ = faulty_service(
            [FaultSpec(stage="annotate", kind="permanent", mode="full",
                       count=2)], policy)
        requests = make_requests(4)
        first = service.translate(*requests[0])
        second = service.translate(*requests[1])
        assert [first.status, second.status] == ["degraded", "degraded"]
        assert service.breaker.state == BREAKER_OPEN

        # While open: full path skipped, degraded rung still serves.
        third = service.translate(*requests[2])
        assert third.status == "degraded"
        assert third.error["type"] == "CircuitOpen"
        assert third.attempts == 0
        assert service.metrics.counter("breaker_short_circuits") == 1

        time.sleep(0.06)
        assert service.breaker.state == BREAKER_HALF_OPEN
        fourth = service.translate(*requests[3])  # the probe succeeds
        assert fourth.status == "ok"
        assert service.breaker.state == BREAKER_CLOSED
        assert service.stats()["breaker"]["opens"] == 1

    def test_open_breaker_still_serves_cache(self):
        service, _ = faulty_service([])
        table = make_table()
        question = "which film has director tarkovsky ?"
        warmed = service.translate(question, table)
        assert warmed.status == "ok"
        for _ in range(service.breaker.failure_threshold):
            service.breaker.record_failure()
        assert service.breaker.state == BREAKER_OPEN
        hit = service.translate(question, table)
        assert hit.status == "ok" and hit.cached
        assert service.metrics.counter("breaker_short_circuits") == 0

    def test_degradation_disabled_fails_fast_while_open(self):
        service, _ = faulty_service(
            [FaultSpec(stage="annotate", kind="permanent")],
            ResiliencePolicy(max_retries=0, backoff_base_s=0.0,
                             degradation=False,
                             breaker_failure_threshold=1,
                             breaker_cooldown_s=60.0))
        requests = make_requests(3)
        results = service.translate_batch(requests)
        assert_all_structured(results, len(requests))
        assert results[0].error["type"] == "InjectedFault"
        assert all(r.status == "failed" for r in results)
        assert all(r.error["type"] == "CircuitOpen" for r in results[1:])


class TestDeadlines:
    def test_latency_fault_trips_the_stage_budget(self):
        service, _ = faulty_service(
            [FaultSpec(stage="annotate", kind="latency", latency_s=0.05)],
            ResiliencePolicy(deadline_s=0.01, max_retries=3,
                             backoff_base_s=0.0,
                             breaker_failure_threshold=1000))
        result = service.translate("which film has director tarkovsky ?",
                                   make_table())
        assert result.status == "failed"
        assert result.error["type"] == "DeadlineExceeded"
        # The budget died between annotate and translate: the per-stage
        # check before the *next* stage caught it.
        assert result.error["stage"] == "translate"
        assert result.attempts == 1  # deadline failures are not retried
        assert service.metrics.counter("deadline_exceeded") == 1
        # No budget left, so the degraded rung was not attempted.
        assert service.metrics.counter("degraded_fallbacks") == 0

    def test_generous_deadline_is_invisible(self):
        service, _ = faulty_service(
            [], ResiliencePolicy(deadline_s=30.0))
        requests = make_requests(3)
        results = service.translate_batch(requests)
        assert all(r.status == "ok" for r in results)


class TestOutcomeAccounting:
    @pytest.mark.parametrize("stage", STAGES)
    def test_counters_partition_under_faults(self, stage):
        service, _ = faulty_service(
            [FaultSpec(stage=stage, kind="transient", count=3)],
            ResiliencePolicy(max_retries=1, backoff_base_s=0.0,
                             breaker_failure_threshold=1000))
        requests = make_requests(6)
        results = service.translate_batch(requests)
        assert_all_structured(results, len(requests))
        metrics = service.metrics
        assert metrics.counter("served_ok") \
            + metrics.counter("served_degraded") \
            + metrics.counter("served_failed") == metrics.counter("requests")
        assert metrics.counter("cache_hits") \
            + metrics.counter("cache_misses") == metrics.counter("requests")


class TestDegradedDifferential:
    """The degraded rung equals direct context-free translation.

    Uses the session-trained model: with the full annotation rung
    knocked out, every served translation must match a direct
    ``NLIDB.translate(..., mode="context_free")``, and on questions
    whose mentions are exact (the generated corpus has plenty) the
    degraded path still recovers *valid SQL*.
    """

    def test_degraded_matches_direct_context_free(self, nlidb, corpus):
        injector = FaultInjector(
            [FaultSpec(stage="annotate", kind="permanent", mode="full")])
        service = TranslationService(
            FaultyNLIDB(nlidb, injector),
            policy=ResiliencePolicy(max_retries=0, backoff_base_s=0.0,
                                    breaker_failure_threshold=10 ** 6))
        subset = corpus[:25]
        results = service.translate_batch(
            [(e.question_tokens, e.table) for e in subset])
        assert_all_structured(results, len(subset))
        direct = [nlidb.translate(e.question_tokens, e.table,
                                  mode="context_free") for e in subset]
        recovered = 0
        for result, reference in zip(results, direct):
            assert result.status in ("degraded", "failed")
            assert result.translation is not None
            assert result.translation.result_equal(reference)
            if result.status == "degraded":
                assert result.sql is not None
                recovered += 1
        # Exact-mention questions must survive the matcher-only rung.
        assert recovered >= 1
