"""The micro-batch scheduler: admission policy, queue mechanics, and
the end-to-end differential against sequential serving.

The policy tests drive :meth:`SchedulerPolicy.decide` with literal
clock values — it is a pure function, so no threads or sleeps are
needed to pin the max-wait/max-batch behaviour.  The queue tests gate
a stub ``process`` on events to make batch formation deterministic.
The differential classes use the session-trained model: whatever the
scheduler coalesces must come back **byte-identical** to the
sequential ``translate()`` path, across ≥ 50 mixed-table pairs and
under N-thread submission.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ReproError
from repro.serving import (
    MicroBatchScheduler,
    QueueClosed,
    SchedulerPolicy,
    TranslationService,
)


class TestSchedulerPolicy:
    def test_idle_when_queue_empty(self):
        policy = SchedulerPolicy(max_batch=8, max_wait_s=0.5)
        assert policy.decide(0, now=10.0, oldest_enqueued_at=None) \
            == ("idle", None)

    def test_natural_batching_dispatches_immediately(self):
        # max_wait_s=0 (the default): anything queued dispatches the
        # moment the worker looks, regardless of age.
        policy = SchedulerPolicy(max_batch=8)
        assert policy.decide(1, now=10.0, oldest_enqueued_at=10.0) \
            == ("dispatch", 1)
        assert policy.decide(5, now=10.0, oldest_enqueued_at=10.0) \
            == ("dispatch", 5)

    def test_max_batch_caps_dispatch_size(self):
        policy = SchedulerPolicy(max_batch=4, max_wait_s=5.0)
        # A full batch dispatches even if the oldest request is brand
        # new — max-batch beats max-wait.
        assert policy.decide(9, now=0.0, oldest_enqueued_at=0.0) \
            == ("dispatch", 4)

    def test_max_wait_holds_then_releases(self):
        policy = SchedulerPolicy(max_batch=8, max_wait_s=0.5)
        verdict, remaining = policy.decide(2, now=100.2,
                                           oldest_enqueued_at=100.0)
        assert verdict == "wait"
        assert remaining == pytest.approx(0.3)
        # Once the oldest request has aged past the budget: dispatch.
        assert policy.decide(2, now=100.5, oldest_enqueued_at=100.0) \
            == ("dispatch", 2)
        assert policy.decide(2, now=101.0, oldest_enqueued_at=100.0) \
            == ("dispatch", 2)

    def test_queued_without_timestamp_is_an_error(self):
        policy = SchedulerPolicy(max_batch=8, max_wait_s=0.5)
        with pytest.raises(ValueError):
            policy.decide(1, now=0.0, oldest_enqueued_at=None)

    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerPolicy(max_batch=0)
        with pytest.raises(ValueError):
            SchedulerPolicy(max_wait_s=-1.0)


def _drain(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("scheduler did not drain in time")
        time.sleep(0.005)


class TestMicroBatchScheduler:
    def test_requests_coalesce_while_worker_busy(self):
        sizes = []
        started, gate = threading.Event(), threading.Event()

        def process(batch):
            sizes.append(len(batch))
            if len(sizes) == 1:
                started.set()
                gate.wait(timeout=5.0)

        scheduler = MicroBatchScheduler(process,
                                        policy=SchedulerPolicy(max_batch=8))
        scheduler.submit("a")
        assert started.wait(timeout=5.0)
        # These arrive while the worker is mid-batch: they must pile up
        # and come out as ONE coalesced batch.
        scheduler.submit_many(["b", "c", "d"])
        gate.set()
        _drain(lambda: sum(sizes) == 4)
        assert sizes == [1, 3]
        stats = scheduler.stats()
        assert stats["batches"] == 2
        assert stats["coalesced_batches"] == 1
        assert stats["dispatched"] == 4
        assert stats["max_batch"] == 3

    def test_max_batch_splits_the_backlog(self):
        sizes = []
        started, gate = threading.Event(), threading.Event()

        def process(batch):
            sizes.append(len(batch))
            if len(sizes) == 1:
                started.set()
                gate.wait(timeout=5.0)

        scheduler = MicroBatchScheduler(process,
                                        policy=SchedulerPolicy(max_batch=4))
        scheduler.submit(0)
        assert started.wait(timeout=5.0)
        scheduler.submit_many(range(1, 11))
        gate.set()
        _drain(lambda: sum(sizes) == 11)
        assert sizes == [1, 4, 4, 2]

    def test_close_drains_queue_then_refuses(self):
        seen = []
        started, gate = threading.Event(), threading.Event()

        def process(batch):
            seen.extend(batch)
            if len(seen) == 1:
                started.set()
                gate.wait(timeout=5.0)

        scheduler = MicroBatchScheduler(process)
        scheduler.submit("a")
        assert started.wait(timeout=5.0)
        scheduler.submit("b")
        scheduler.close()
        gate.set()
        _drain(lambda: len(seen) == 2)  # queued work still completes
        with pytest.raises(QueueClosed):
            scheduler.submit("c")
        with pytest.raises(ReproError):  # QueueClosed is a ReproError
            scheduler.submit_many(["d"])

    def test_process_error_reaches_handler_and_worker_survives(self):
        failures, done = [], threading.Event()

        def process(batch):
            if batch == ["boom"]:
                raise RuntimeError("kernel exploded")
            done.set()

        scheduler = MicroBatchScheduler(
            process, on_batch_error=lambda batch, exc: failures.append(
                (batch, type(exc).__name__)))
        scheduler.submit("boom")
        _drain(lambda: failures)
        assert failures == [(["boom"], "RuntimeError")]
        scheduler.submit("fine")  # the worker is still serving
        assert done.wait(timeout=5.0)


@pytest.fixture
def references(corpus, direct_translations):
    """question/table pairs with their sequential-path SQL strings."""
    refs = []
    for example, translation in zip(corpus, direct_translations):
        sql = translation.query.to_sql() if translation.query is not None \
            else None
        refs.append((example, sql))
    return refs


class TestCoalescedDifferential:
    def test_corpus_is_mixed_table_and_large_enough(self, references):
        assert len(references) >= 50
        assert len({e.table.name for e, _sql in references}) >= 3

    def test_batch_serving_byte_identical_sql(self, service, references):
        # One translate_batch over the whole mixed-table corpus: the
        # scheduler drains it in max-batch cohorts through the shared
        # kernels, and every lane's SQL must equal the sequential
        # path's byte for byte.
        results = service.translate_batch(
            [(e.question_tokens, e.table) for e, _sql in references])
        for result, (_example, sql) in zip(results, references):
            assert result.sql == sql
        # The coalesced path genuinely ran — this differential is not
        # vacuously passing through the sequential ladder.
        assert service.metrics.counter("coalesced_requests") >= 2
        scheduler = service.stats()["scheduler"]
        assert scheduler["coalesced_batches"] >= 1
        assert scheduler["max_batch"] >= 2

    def test_threaded_submit_byte_identical_sql(self, service, references):
        # N threads submit disjoint shards concurrently; whatever mix
        # of cohorts the scheduler forms, every future must resolve to
        # the sequential path's SQL.
        n_threads = 8

        def worker(shard):
            futures = [(service.submit(e.question_tokens, e.table), sql)
                       for e, sql in shard]
            return [(f.result(timeout=120), sql) for f, sql in futures]

        shards = [references[i::n_threads] for i in range(n_threads)]
        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            outcomes = [f.result()
                        for f in [pool.submit(worker, s) for s in shards]]
        for shard_results in outcomes:
            for result, sql in shard_results:
                assert result.sql == sql
        metrics = service.metrics
        assert metrics.counter("requests") == len(references)
        assert metrics.counter("cache_hits") \
            + metrics.counter("cache_misses") == len(references)

    def test_coalesced_traces_carry_batch_identity(self, service,
                                                   references):
        results = service.translate_batch(
            [(e.question_tokens, e.table) for e, _sql in references[:8]])
        assert service.metrics.counter("coalesced_requests") >= 2
        stamped = [r for r in results
                   if any("batch_id" in record.detail for record in r.trace)]
        assert len(stamped) >= 2
        lanes_seen = set()
        for result in stamped:
            details = {record.stage: record.detail for record in result.trace}
            assert details["annotate"]["coalesced"] is True
            assert details["annotate"]["batch_kernel_s"] >= 0.0
            assert details["translate"]["coalesced"] is True
            assert details["annotate"]["batch_size"] >= 2
            lanes_seen.add((details["annotate"]["batch_id"],
                            details["annotate"]["batch_lane"]))
            # The record dicts serialize the identity too.
            payload = result.to_dict()
            annotate = next(r for r in payload["trace"]
                            if r["stage"] == "annotate")
            assert annotate["detail"]["batch_id"] \
                == details["annotate"]["batch_id"]
            assert annotate["schema_version"] >= 2
        # Every stamped lane is a distinct (batch, lane) slot.
        assert len(lanes_seen) == len(stamped)

    def test_mixed_stream_with_failures_and_duplicates(self, service,
                                                       references):
        good = references[:6]
        requests = [(e.question_tokens, e.table) for e, _sql in good]
        requests.insert(3, ([], good[0][0].table))     # annotation failure
        requests.append((good[0][0].question_tokens,   # duplicate of [0]
                         good[0][0].table))
        results = service.translate_batch(requests)
        expected = [sql for _e, sql in good]
        assert results[3].status == "failed"
        del results[3]
        for result, sql in zip(results[:6], expected):
            assert result.sql == sql
        assert results[6].sql == expected[0]  # the duplicate