"""Differential tests: the serving fast paths are byte-identical to the
direct pipeline.

Over a seeded corpus of 50+ (question, table) pairs spanning several
synthetic domains, ``TranslationService`` must return translations
whose canonical query, annotated tokens, and predicted annotated SQL
all equal a direct ``NLIDB.translate`` — cold (first touch), warm
(cache hit), and through ``translate_batch``.
"""

from repro.serving import TranslationRequest, TranslationResult


def _domain_of(example) -> str:
    # Generated table names look like "<domain>_<split>_<i>".
    return example.table.name.rsplit("_", 2)[0]


def _assert_identical(results, direct):
    assert len(results) == len(direct)
    # Unwrap the service's TranslationResult envelopes: a request whose
    # recovery fails is status "failed" but still carries the
    # translation; every full-path request here must not be degraded.
    translations = []
    for result in results:
        assert isinstance(result, TranslationResult)
        assert result.status != "degraded"
        assert (result.status == "ok") == (result.sql is not None)
        translations.append(result.translation)
    for served, reference in zip(translations, direct):
        assert tuple(served.annotated_tokens) \
            == tuple(reference.annotated_tokens)
        assert tuple(served.predicted_annotated_sql) \
            == tuple(reference.predicted_annotated_sql)
        if reference.query is None:
            assert served.query is None
            assert served.error == reference.error
        else:
            assert served.query is not None
            assert served.query.canonical() == reference.query.canonical()
        assert served.result_equal(reference)


class TestCorpusShape:
    def test_corpus_size_and_domain_spread(self, corpus):
        assert len(corpus) >= 50
        assert len({_domain_of(e) for e in corpus}) >= 3


class TestDifferential:
    def test_cold_path_matches_direct(self, service, corpus,
                                      direct_translations):
        served = [service.translate(e.question_tokens, e.table)
                  for e in corpus]
        _assert_identical(served, direct_translations)
        assert service.metrics.counter("cache_misses") == len(corpus)

    def test_warm_path_matches_direct(self, service, corpus,
                                      direct_translations):
        for example in corpus:
            service.translate(example.question_tokens, example.table)
        served = [service.translate(e.question_tokens, e.table)
                  for e in corpus]
        _assert_identical(served, direct_translations)
        # Every second-pass request was answered from cache.
        assert service.metrics.counter("cache_hits") >= len(corpus)

    def test_batched_path_matches_direct(self, service, corpus,
                                         direct_translations):
        served = service.translate_batch(
            [(e.question_tokens, e.table) for e in corpus])
        _assert_identical(served, direct_translations)

    def test_batched_request_objects_match_direct(self, service, corpus,
                                                  direct_translations):
        served = service.translate_batch(
            [TranslationRequest(question=e.question_tokens, table=e.table)
             for e in corpus])
        _assert_identical(served, direct_translations)

    def test_warm_batch_after_cold_singles(self, service, corpus,
                                           direct_translations):
        for example in corpus:
            service.translate(example.question_tokens, example.table)
        served = service.translate_batch(
            [(e.question_tokens, e.table) for e in corpus])
        _assert_identical(served, direct_translations)
        assert service.metrics.counter("cache_misses") == len(corpus)
        assert service.metrics.counter("cache_hits") == len(corpus)

    def test_string_question_hits_token_entry(self, service, corpus,
                                              direct_translations):
        example, reference = corpus[0], direct_translations[0]
        service.translate(example.question_tokens, example.table)
        served = service.translate(example.question, example.table)
        _assert_identical([served], [reference])
        assert service.metrics.counter("cache_hits") == 1

    def test_counters_sum_consistently(self, service, corpus):
        for _ in range(3):
            for example in corpus[:10]:
                service.translate(example.question_tokens, example.table)
        metrics = service.metrics
        assert metrics.counter("requests") == 30
        assert metrics.counter("cache_hits") \
            + metrics.counter("cache_misses") == metrics.counter("requests")
        # Outcome counters partition the request stream.
        assert metrics.counter("served_ok") \
            + metrics.counter("served_degraded") \
            + metrics.counter("served_failed") == metrics.counter("requests")
