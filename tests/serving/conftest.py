"""Serving-layer fixtures.

The session-scoped trained model (``nlidb``), corpus, and direct
translations live in the top-level ``tests/conftest.py``; here each
test just gets its own fresh :class:`TranslationService` so
cache/metrics state never leaks between tests.
"""

import pytest

from repro.serving import TranslationService


@pytest.fixture
def service(nlidb):
    return TranslationService(nlidb, cache_size=256)
