"""Property tests for the rendezvous router (cluster satellite).

Two properties make HRW hashing the right shard router, and both are
pinned here with Hypothesis over generated replica sets and key
populations:

* **balance** — over many fingerprints, no replica owns more than 2x
  its fair share of the keyspace;
* **minimal movement** — a membership change only moves the keys it
  must: a join steals exactly the keys the new replica now wins (an
  ~1/(N+1) expected fraction), a leave re-homes exactly the departed
  replica's keys, and every key that moves lands on the replica that
  was next in the old failover ranking.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import RandomRouter, RendezvousRouter

# Deterministic pseudo-fingerprints (the real shard key is a sha256
# table fingerprint; any high-entropy string population behaves alike).
KEYS_1K = [hashlib.sha256(f"table-{i}".encode()).hexdigest()
           for i in range(1000)]

replica_counts = st.integers(min_value=2, max_value=8)


def _ownership(router, keys):
    owned: dict[str, list[str]] = {rid: [] for rid in router.replica_ids}
    for key in keys:
        owned[router.owner(key)].append(key)
    return owned


# ----------------------------------------------------------------------
# Basic contract
# ----------------------------------------------------------------------


def test_rejects_empty_duplicate_and_blank_ids():
    with pytest.raises(ValueError):
        RendezvousRouter([])
    with pytest.raises(ValueError):
        RendezvousRouter(["r0", "r0"])
    with pytest.raises(ValueError):
        RendezvousRouter(["r0", ""])


def test_owner_is_stable_and_first_ranked():
    router = RendezvousRouter([f"r{i}" for i in range(4)])
    for key in KEYS_1K[:50]:
        ranked = router.ranked(key)
        assert router.owner(key) == ranked[0]
        assert sorted(ranked) == sorted(router.replica_ids)
        assert router.ranked(key) == ranked  # deterministic


def test_remove_last_replica_refused():
    router = RendezvousRouter(["r0"])
    with pytest.raises(ValueError):
        router.remove("r0")


# ----------------------------------------------------------------------
# Property: balance
# ----------------------------------------------------------------------


@settings(max_examples=8, deadline=None)
@given(n=replica_counts)
def test_no_replica_owns_more_than_2x_fair_share(n):
    router = RendezvousRouter([f"r{i}" for i in range(n)])
    owned = _ownership(router, KEYS_1K)
    fair = len(KEYS_1K) / n
    for rid, keys in owned.items():
        assert len(keys) <= 2 * fair, \
            f"{rid} owns {len(keys)} of {len(KEYS_1K)} (fair {fair:.0f})"
        assert keys, f"{rid} owns nothing over 1k keys"


# ----------------------------------------------------------------------
# Property: minimal movement on join / leave
# ----------------------------------------------------------------------


@settings(max_examples=8, deadline=None)
@given(n=replica_counts)
def test_join_moves_only_keys_the_newcomer_wins(n):
    router = RendezvousRouter([f"r{i}" for i in range(n)])
    before = {key: router.owner(key) for key in KEYS_1K}
    router.add("joined")
    moved = [key for key in KEYS_1K if router.owner(key) != before[key]]
    # Every moved key moved *to* the newcomer; nothing reshuffled
    # between incumbents.
    assert all(router.owner(key) == "joined" for key in moved)
    # Expected fraction is 1/(n+1); allow 2x slack like the balance
    # bound.
    assert len(moved) <= 2 * len(KEYS_1K) / (n + 1)
    assert moved, "a joining replica must take over some keys"


@settings(max_examples=8, deadline=None)
@given(n=replica_counts)
def test_leave_moves_only_the_departed_replicas_keys(n):
    router = RendezvousRouter([f"r{i}" for i in range(n)])
    departing = "r0"
    before = {key: router.ranked(key) for key in KEYS_1K}
    router.remove(departing)
    for key in KEYS_1K:
        ranked = before[key]
        if ranked[0] == departing:
            # Orphaned keys fall to the old second-ranked replica —
            # the cluster's failover target, so breaker-driven
            # failover and permanent departure agree on placement.
            assert router.owner(key) == ranked[1]
        else:
            assert router.owner(key) == ranked[0], \
                f"{key} moved although {departing} never owned it"


# ----------------------------------------------------------------------
# The control arm
# ----------------------------------------------------------------------


def test_random_router_is_seeded_and_affinity_free():
    a = RandomRouter(["r0", "r1", "r2"], seed=7)
    b = RandomRouter(["r0", "r1", "r2"], seed=7)
    key = KEYS_1K[0]
    sequence = [a.owner(key) for _ in range(20)]
    assert sequence == [b.owner(key) for _ in range(20)]
    assert len(set(sequence)) > 1, "same key must spray across replicas"
    assert sorted(a.ranked(key)) == ["r0", "r1", "r2"]
