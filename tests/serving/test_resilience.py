"""Unit tests for the resilience primitives.

Pure-Python components — error taxonomy, deadline, backoff schedule,
circuit breaker — tested with fake clocks so nothing here sleeps.
The end-to-end behaviour under injected faults lives in
``test_faults.py``.
"""

import json

import pytest

from repro.errors import (
    CircuitOpen,
    DeadlineExceeded,
    ReproError,
    ServingError,
    TransientServingError,
    is_retryable,
)
from repro.serving import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    Deadline,
    ResiliencePolicy,
    TranslationResult,
    describe_error,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestErrorTaxonomy:
    def test_serving_errors_are_repro_errors(self):
        for cls in (ServingError, TransientServingError, DeadlineExceeded,
                    CircuitOpen):
            assert issubclass(cls, ReproError)

    def test_retryable_defaults(self):
        assert not ServingError("x").retryable
        assert TransientServingError("x").retryable
        assert not DeadlineExceeded("x").retryable
        assert not CircuitOpen("x").retryable

    def test_instance_override_and_stage(self):
        err = ServingError("blip", stage="translate", retryable=True)
        assert err.retryable and err.stage == "translate"
        # The class default is untouched by the instance override.
        assert not ServingError("y").retryable

    def test_is_retryable_reads_the_flag_anywhere(self):
        assert is_retryable(TransientServingError("x"))
        assert not is_retryable(ValueError("x"))
        plain = ValueError("x")
        plain.retryable = True
        assert is_retryable(plain)

    def test_describe_error(self):
        desc = describe_error(DeadlineExceeded("too slow", stage="recover"))
        assert desc == {"type": "DeadlineExceeded", "message": "too slow",
                        "stage": "recover", "retryable": False}
        json.dumps(desc)


class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline(None)
        assert deadline.remaining() == float("inf")
        assert not deadline.expired()
        deadline.check("annotate")  # must not raise

    def test_budget_counts_down(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(0.4)
        assert deadline.remaining() == pytest.approx(0.6)
        assert not deadline.expired()
        clock.advance(0.7)
        assert deadline.remaining() == 0.0
        assert deadline.expired()

    def test_check_raises_with_the_stage(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceeded) as exc_info:
            deadline.check("translate")
        assert exc_info.value.stage == "translate"
        assert not exc_info.value.retryable

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestResiliencePolicy:
    def test_backoff_schedule_is_bounded(self):
        policy = ResiliencePolicy(backoff_base_s=0.1, backoff_multiplier=2.0,
                                  backoff_cap_s=0.35)
        delays = [policy.backoff_delay(n) for n in (1, 2, 3, 4)]
        assert delays == pytest.approx([0.1, 0.2, 0.35, 0.35])

    def test_backoff_is_one_based(self):
        with pytest.raises(ValueError):
            ResiliencePolicy().backoff_delay(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(breaker_failure_threshold=0)


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0, probes=1):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=threshold,
                                 cooldown_s=cooldown,
                                 half_open_probes=probes, clock=clock)
        return breaker, clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_opens_after_cooldown(self):
        breaker, clock = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()  # the probe

    def test_half_open_admits_bounded_probes(self):
        breaker, clock = self.make(threshold=1, cooldown=1.0, probes=2)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow() and breaker.allow()
        assert not breaker.allow()  # third concurrent probe refused

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = self.make(threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        clock.advance(1.1)
        assert breaker.state == BREAKER_HALF_OPEN

    def test_snapshot_and_gauge(self):
        breaker, clock = self.make(threshold=1, cooldown=1.0)
        assert breaker.state_gauge() == 0.0
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == BREAKER_OPEN and snap["opens"] == 1
        assert breaker.state_gauge() == 1.0
        clock.advance(1.1)
        assert breaker.state_gauge() == 0.5
        json.dumps(breaker.snapshot())

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)

    def test_from_policy(self):
        policy = ResiliencePolicy(breaker_failure_threshold=7,
                                  breaker_cooldown_s=2.5)
        breaker = CircuitBreaker.from_policy(policy)
        assert breaker.failure_threshold == 7
        assert breaker.cooldown_s == 2.5


class TestTranslationResultEnvelope:
    def test_from_failure(self):
        error = CircuitOpen("open", stage=None)
        result = TranslationResult.from_failure(error, attempts=2,
                                                timings={"annotate": 0.1})
        assert result.status == "failed" and not result.ok
        assert result.sql is None and result.translation is None
        assert result.error["type"] == "CircuitOpen"
        assert result.attempts == 2
        assert result.error["message"] == "open"
        payload = result.to_dict()
        json.dumps(payload)
        assert payload["schema_version"] >= 2
        assert "exception" not in payload and "translation" not in payload
