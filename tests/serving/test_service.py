"""Unit tests for the serving building blocks.

These use a stub translator (no training) so cache semantics, metrics
bookkeeping, and request normalization are exercised in milliseconds;
the trained-model behaviour is covered by the differential suite and
the resilience behaviour by ``test_resilience.py``/``test_faults.py``.
"""

import inspect
import json
import threading

import pytest

from repro.caching import LRUCache
from repro.core import NLIDB, NLIDBConfig
from repro.errors import ModelError, ReproError
from repro.serving import (
    MetricsRegistry,
    TranslationRequest,
    TranslationResult,
    TranslationService,
    as_request,
    normalize_question,
)
from repro.sqlengine import Column, DataType, Table
from repro.text import WordEmbeddings

EMB = WordEmbeddings(dim=16, seed=0)


class StubTranslator:
    """Deterministic translator standing in for the seq2seq model."""

    def __init__(self, output=("select", "g1")):
        self.output = list(output)
        self.calls = 0

        class _Config:
            beam_width = 5
        self.config = _Config()

    def translate(self, source, header_tokens, extra_symbols=(),
                  beam_width=None):
        self.calls += 1
        return list(self.output)


def make_table(name="films", rows=None):
    return Table(name, [Column("film"), Column("director"),
                        Column("year", DataType.REAL)],
                 rows if rows is not None
                 else [("solaris", "tarkovsky", 1972),
                       ("stalker", "tarkovsky", 1979)])


@pytest.fixture
def stub():
    return StubTranslator()


@pytest.fixture
def stub_service(stub):
    model = NLIDB(EMB, NLIDBConfig(), translator=stub)
    model._fitted = True  # annotator runs matcher-only when untrained
    return TranslationService(model, cache_size=8)


QUESTION = "which film has director tarkovsky ?"


class TestLRUCache:
    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # promotes "a"
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_overwrite_does_not_evict(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.evictions == 0

    def test_clear_and_len(self):
        cache = LRUCache(maxsize=4)
        for i in range(4):
            cache.put(i, i)
        cache.clear()
        assert len(cache) == 0
        assert cache.get(0) is None

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)

    def test_hit_and_miss_counters(self):
        cache = LRUCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("a", count=False) == 1  # uncounted double-check
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_hit_rate_without_traffic(self):
        assert LRUCache(maxsize=2).hit_rate() == 0.0

    def test_get_or_compute_computes_once_per_key(self):
        cache = LRUCache(maxsize=4)
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 7) == 7
        assert cache.get_or_compute("k", lambda: calls.append(1) or 9) == 7
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_get_or_compute_propagates_errors_and_retries(self):
        cache = LRUCache(maxsize=4)
        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", lambda: (_ for _ in ()).throw(
                RuntimeError("boom")))
        # The failed computation is not cached: the next call retries.
        assert cache.get_or_compute("k", lambda: 5) == 5

    def test_get_or_compute_single_flight_under_concurrency(self):
        cache = LRUCache(maxsize=4)
        gate = threading.Event()
        compute_calls = []

        def slow_compute():
            compute_calls.append(1)
            gate.wait(timeout=5.0)
            return 42

        values = []
        threads = [threading.Thread(
            target=lambda: values.append(cache.get_or_compute(
                "k", slow_compute))) for _ in range(4)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join(timeout=5.0)
        assert values == [42] * 4
        assert len(compute_calls) == 1  # one leader, three coalesced
        assert cache.misses == 1 and cache.hits == 3


class TestMetricsRegistry:
    def test_counters_and_snapshot(self):
        metrics = MetricsRegistry()
        metrics.increment("requests")
        metrics.increment("requests", 2)
        metrics.observe("annotate", 0.25)
        metrics.observe("annotate", 0.75)
        snap = metrics.snapshot()
        assert snap["counters"]["requests"] == 3
        hist = snap["histograms"]["annotate"]
        assert hist["count"] == 2
        assert hist["mean_s"] == pytest.approx(0.5)
        assert hist["min_s"] == 0.25 and hist["max_s"] == 0.75

    def test_histogram_minmax_from_first_observation(self):
        # A sub-zero first sample (coarse clocks can tick backwards
        # across cores) must become the max, not be masked by a 0.0
        # sentinel.
        metrics = MetricsRegistry()
        metrics.observe("skew", -0.002)
        hist = metrics.snapshot()["histograms"]["skew"]
        assert hist["min_s"] == -0.002 and hist["max_s"] == -0.002
        metrics.observe("skew", -0.001)
        hist = metrics.snapshot()["histograms"]["skew"]
        assert hist["max_s"] == -0.001

    def test_percentiles_nearest_rank(self):
        metrics = MetricsRegistry()
        for ms in range(1, 101):  # 0.001s .. 0.100s
            metrics.observe("latency", ms / 1000.0)
        hist = metrics.snapshot()["histograms"]["latency"]
        assert hist["p50_s"] == pytest.approx(0.050)
        assert hist["p95_s"] == pytest.approx(0.095)
        assert hist["p99_s"] == pytest.approx(0.099)

    def test_percentiles_single_sample_and_empty(self):
        metrics = MetricsRegistry()
        metrics.observe("one", 0.25)
        hist = metrics.snapshot()["histograms"]["one"]
        assert hist["p50_s"] == hist["p95_s"] == hist["p99_s"] == 0.25
        empty = MetricsRegistry()
        empty.observe("x", 0.1)
        empty.reset()
        # Histogram dropped entirely on reset; the zero-count summary
        # shape is exercised through _Histogram directly.
        from repro.serving.metrics import _Histogram
        assert _Histogram().summary()["p99_s"] == 0.0

    def test_percentiles_window_is_bounded(self):
        from repro.serving.metrics import RESERVOIR_SIZE, _Histogram
        hist = _Histogram()
        # An initial slow regime, then RESERVOIR_SIZE fast samples: the
        # slow regime must age out of the percentile window while the
        # exact aggregates still remember it.
        for _ in range(100):
            hist.observe(10.0)
        for _ in range(RESERVOIR_SIZE):
            hist.observe(0.001)
        summary = hist.summary()
        assert summary["count"] == 100 + RESERVOIR_SIZE
        assert summary["max_s"] == 10.0
        assert summary["p99_s"] == pytest.approx(0.001)

    def test_gauges(self):
        metrics = MetricsRegistry()
        assert metrics.gauge("breaker_state") == 0.0
        metrics.set_gauge("breaker_state", 1.0)
        metrics.set_gauge("cache_size", 12)
        assert metrics.gauge("breaker_state") == 1.0
        snap = metrics.snapshot()
        assert snap["gauges"] == {"breaker_state": 1.0, "cache_size": 12.0}

    def test_time_context_records_a_sample(self):
        metrics = MetricsRegistry()
        with metrics.time("block"):
            pass
        assert metrics.snapshot()["histograms"]["block"]["count"] == 1

    def test_reset(self):
        metrics = MetricsRegistry()
        metrics.increment("x")
        metrics.observe("y", 1.0)
        metrics.set_gauge("z", 2.0)
        metrics.reset()
        assert metrics.snapshot() == {"counters": {}, "gauges": {},
                                      "histograms": {}}

    def test_snapshot_is_json_serializable(self):
        metrics = MetricsRegistry()
        metrics.increment("requests")
        metrics.observe("annotate", 0.1)
        metrics.set_gauge("cache_size", 1.0)
        json.dumps(metrics.snapshot())


class TestRequestNormalization:
    def test_string_and_tokens_normalize_identically(self):
        assert normalize_question(QUESTION) \
            == normalize_question(QUESTION.split())

    def test_as_request_accepts_tuples(self):
        table = make_table()
        request = as_request((QUESTION, table))
        assert request == TranslationRequest(QUESTION, table)
        widened = as_request((QUESTION, table, 3))
        assert widened.beam_width == 3

    def test_question_normalized_to_token_tuple(self):
        table = make_table()
        from_string = TranslationRequest(QUESTION, table)
        from_list = TranslationRequest(QUESTION.split(), table)
        assert isinstance(from_string.question, tuple)
        assert from_string == from_list

    def test_requests_are_hashable_cache_keys(self):
        # Equal content (even across table objects) -> one set entry.
        a = TranslationRequest(QUESTION, make_table())
        b = TranslationRequest(QUESTION.split(), make_table())
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
        other = TranslationRequest(QUESTION, make_table(
            rows=[("mirror", "tarkovsky", 1975)]))
        assert len({a, other}) == 2

    def test_as_request_rejects_junk(self):
        with pytest.raises(ReproError):
            as_request("just a string")
        with pytest.raises(ReproError):
            as_request((QUESTION, "not a table"))


class TestServiceCache:
    def test_requires_fitted_model(self, stub):
        model = NLIDB(EMB, NLIDBConfig(), translator=stub)
        with pytest.raises(ModelError):
            TranslationService(model)

    def test_envelope_shape_on_success(self, stub_service):
        result = stub_service.translate(QUESTION, make_table())
        assert isinstance(result, TranslationResult)
        assert result.status == "ok" and result.ok
        assert result.sql == result.translation.query.to_sql()
        assert result.error is None
        assert result.attempts == 1 and not result.cached
        assert {"annotate", "translate", "recover"} <= set(result.timings)
        json.dumps(result.to_dict())

    def test_repeat_question_skips_the_model(self, stub_service, stub):
        table = make_table()
        first = stub_service.translate(QUESTION, table)
        second = stub_service.translate(QUESTION, table)
        assert stub.calls == 1
        assert second.translation is first.translation  # the cached object
        assert second.cached and not first.cached
        assert second.attempts == 0
        assert stub_service.metrics.counter("cache_hits") == 1

    def test_content_equal_table_object_hits(self, stub_service, stub):
        stub_service.translate(QUESTION, make_table())
        replica = make_table(name="films_reloaded")
        stub_service.translate(QUESTION, replica)
        assert stub.calls == 1

    def test_mutated_table_misses(self, stub_service, stub):
        table = make_table()
        stub_service.translate(QUESTION, table)
        table.insert(("mirror", "tarkovsky", 1975))
        stub_service.translate(QUESTION, table)
        assert stub.calls == 2
        assert stub_service.metrics.counter("cache_misses") == 2

    def test_beam_width_is_part_of_the_key(self, stub_service, stub):
        table = make_table()
        stub_service.translate(QUESTION, table)
        stub_service.translate(QUESTION, table, beam_width=2)
        assert stub.calls == 2
        # An explicit width equal to the configured default shares the
        # defaulted entry.
        stub_service.translate(QUESTION, table,
                               beam_width=stub.config.beam_width)
        assert stub.calls == 2

    def test_bounded_cache_recomputes_after_eviction(self, stub):
        model = NLIDB(EMB, NLIDBConfig(), translator=stub)
        model._fitted = True
        service = TranslationService(model, cache_size=2)
        tables = [make_table(rows=[(f"film{i}", "x", i)]) for i in range(3)]
        for table in tables:
            service.translate(QUESTION, table)
        service.translate(QUESTION, tables[0])  # evicted -> recompute
        assert stub.calls == 4
        assert service.stats()["cache"]["evictions"] >= 1

    def test_clear_cache(self, stub_service, stub):
        table = make_table()
        stub_service.translate(QUESTION, table)
        stub_service.clear_cache()
        stub_service.translate(QUESTION, table)
        assert stub.calls == 2


class TestSubmitAPI:
    """The unified async entry point — and the removed ``raw`` shim."""

    def test_raw_kwarg_is_gone(self, stub_service):
        # The deprecated pre-envelope escape hatch was removed outright;
        # passing it is an ordinary TypeError, not a warning.
        with pytest.raises(TypeError):
            stub_service.translate(QUESTION, make_table(), raw=True)
        with pytest.raises(TypeError):
            stub_service.translate_batch([(QUESTION, make_table())],
                                         raw=True)

    def test_signatures(self):
        params = inspect.signature(TranslationService.translate).parameters
        assert list(params) == ["self", "question", "table", "beam_width"]
        batch_params = inspect.signature(
            TranslationService.translate_batch).parameters
        assert list(batch_params) == ["self", "requests"]
        submit_params = inspect.signature(
            TranslationService.submit).parameters
        assert list(submit_params) == ["self", "request", "table",
                                       "beam_width"]

    def test_submit_returns_future_of_envelope(self, stub_service):
        from concurrent.futures import Future
        future = stub_service.submit(QUESTION, make_table())
        assert isinstance(future, Future)
        result = future.result(timeout=30)
        assert isinstance(result, TranslationResult)
        assert result.status == "ok"
        assert result.sql == result.translation.query.to_sql()

    def test_submit_accepts_every_request_form(self, stub_service, stub):
        table = make_table()
        forms = [
            stub_service.submit(TranslationRequest(QUESTION, table)),
            stub_service.submit((QUESTION, table)),
            stub_service.submit(QUESTION, table),
            stub_service.submit(QUESTION.split(), table),
        ]
        results = [f.result(timeout=30) for f in forms]
        assert all(r.status == "ok" for r in results)
        # All four normalize to one cache key: the model ran once.
        assert stub.calls == 1

    def test_submit_rejects_junk_immediately(self, stub_service):
        with pytest.raises(ReproError):
            stub_service.submit("just a string")
        with pytest.raises(ReproError):
            stub_service.submit(QUESTION, "not a table")

    def test_warm_cache_resolves_without_queueing(self, stub_service):
        table = make_table()
        stub_service.translate(QUESTION, table)
        queued_before = stub_service.scheduler.stats()["dispatched"]
        future = stub_service.submit(QUESTION, table)
        assert future.done()  # resolved synchronously at submission
        assert future.result().cached
        assert stub_service.scheduler.stats()["dispatched"] == queued_before

    def test_pipeline_failure_resolves_the_future(self, stub_service):
        # Model failures come back through the future as failed
        # envelopes, exactly like translate(); the future never raises
        # for them.
        result = stub_service.submit([], make_table()).result(timeout=30)
        assert result.status == "failed"
        assert result.error["type"] == "ModelError"

    def test_translate_is_submit_then_result(self, stub_service):
        sync = stub_service.translate(QUESTION, make_table())
        warm = stub_service.submit(QUESTION, make_table()).result(timeout=30)
        assert warm.translation is sync.translation

    def test_close_refuses_new_work_finishes_old(self, stub_service):
        table = make_table()
        first = stub_service.translate(QUESTION, table)
        stub_service.close()
        assert first.status == "ok"
        with pytest.raises(ReproError):
            stub_service.submit("other question ?", table)


class TestServiceFailures:
    def test_recovery_failure_is_cached_and_counted(self, stub):
        stub.output = ["bogus"]  # not a valid annotated SQL
        model = NLIDB(EMB, NLIDBConfig(), translator=stub)
        model._fitted = True
        service = TranslationService(model, cache_size=8)
        table = make_table()
        first = service.translate(QUESTION, table)
        second = service.translate(QUESTION, table)
        assert first.status == "failed" and first.sql is None
        assert first.translation.query is None and first.error
        assert first.error["stage"] == "recover"
        assert second.translation is first.translation
        assert service.metrics.counter("recovery_failures") == 1

    def test_annotation_failure_is_structured(self, stub_service):
        result = stub_service.translate([], make_table())
        assert result.status == "failed"
        assert result.translation is None and result.sql is None
        assert result.error["type"] == "ModelError"
        assert result.error["stage"] == "annotate"
        metrics = stub_service.metrics
        assert metrics.counter("annotation_failures") == 1
        assert metrics.counter("served_failed") == 1
        assert metrics.counter("cache_hits") \
            + metrics.counter("cache_misses") == metrics.counter("requests")

    def test_failures_are_not_cached(self, stub_service, stub):
        stub_service.translate([], make_table())
        stub_service.translate([], make_table())
        assert stub_service.metrics.counter("cache_misses") == 2


class TestServiceBatch:
    def test_batch_preserves_input_order(self, stub_service):
        tables = [make_table(rows=[(f"film{i}", "d", i)]) for i in range(3)]
        questions = [f"which film has year {i} ?" for i in range(3)]
        # Interleave tables so grouping must reorder work internally.
        requests = [(questions[i], tables[i % 3]) for i in (0, 1, 2, 1, 0)]
        results = stub_service.translate_batch(requests)
        assert len(results) == 5
        singles = [stub_service.translate(q, t) for q, t in requests]
        for batched, single in zip(results, singles):
            assert batched.translation.result_equal(single.translation)

    def test_duplicates_within_a_batch_compute_once(self, stub_service,
                                                    stub):
        table = make_table()
        results = stub_service.translate_batch(
            [(QUESTION, table)] * 4)
        assert stub.calls == 1
        assert all(r.translation is results[0].translation for r in results)
        assert stub_service.metrics.counter("batch_requests") == 4
        assert stub_service.metrics.counter("batches") == 1

    def test_batch_groups_same_table_requests(self, stub_service):
        table_a = make_table(rows=[("a", "d", 1)])
        table_b = make_table(rows=[("b", "d", 2)])
        requests = [("which film has year 1 ?", table_a),
                    ("which film has year 2 ?", table_b),
                    ("what is the director of the film a ?", table_a)]
        results = stub_service.translate_batch(requests)
        assert all(r is not None for r in results)
        assert stub_service.metrics.counter("requests") == 3

    def test_bad_item_yields_failed_envelope_not_exception(self,
                                                           stub_service):
        table = make_table()
        results = stub_service.translate_batch(
            [(QUESTION, table), "junk", (QUESTION, table)])
        assert [r.status for r in results] == ["ok", "failed", "ok"]
        assert results[1].error["type"] == "ReproError"
        assert stub_service.metrics.counter("bad_requests") == 1

    def test_stats_shape(self, stub_service):
        stub_service.translate(QUESTION, make_table())
        stats = stub_service.stats()
        json.dumps(stats)
        assert {"counters", "gauges", "histograms", "cache", "breaker",
                "policy", "scheduler", "schema_version"} <= set(stats)
        assert stats["schema_version"] >= 2
        assert stats["scheduler"]["dispatched"] >= 1
        assert stats["scheduler"]["policy"]["max_batch"] >= 1
        assert stats["cache"]["size"] == 1
        assert stats["breaker"]["state"] == "closed"
        assert stats["gauges"]["breaker_state"] == 0.0
        assert stats["gauges"]["cache_size"] == 1.0
        assert stats["counters"]["served_ok"] == 1
        for stage in ("annotate", "translate", "recover"):
            assert stats["histograms"][stage]["count"] == 1
