"""Cluster front-door behaviour: admission, routing, failover, swap.

The fast stub-translator tests pin the mechanics (shard affinity,
``Overloaded`` envelopes, breaker/draining failover, v3 routing
stamps); the trained-model test at the bottom is the tentpole's
acceptance gate — a blue/green swap with requests in flight loses
nothing and every answer is byte-identical to the direct pipeline.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import NLIDB, NLIDBConfig
from repro.core.persistence import load_nlidb, save_nlidb
from repro.errors import ModelError, Overloaded, ReproError
from repro.serving import (
    BREAKER_OPEN,
    ClusterPolicy,
    ClusterService,
    RandomRouter,
    TranslationResult,
    table_fingerprint,
)
from repro.sqlengine import Column, DataType, Table
from repro.text import WordEmbeddings

EMB = WordEmbeddings(dim=16, seed=0)

QUESTION = "which film has director tarkovsky ?"


class StubTranslator:
    """Deterministic translator standing in for the seq2seq model."""

    def __init__(self, output=("select", "g1")):
        self.output = list(output)

        class _Config:
            beam_width = 5
        self.config = _Config()

    def translate(self, source, header_tokens, extra_symbols=(),
                  beam_width=None):
        return list(self.output)


def make_table(name="films", seed=0):
    return Table(name, [Column("film"), Column("director"),
                        Column("year", DataType.REAL)],
                 [(f"solaris{seed}", "tarkovsky", 1972.0),
                  (f"stalker{seed}", "tarkovsky", 1979.0)])


def stub_model():
    model = NLIDB(EMB, NLIDBConfig(), translator=StubTranslator())
    model._fitted = True  # annotator runs matcher-only when untrained
    return model


@pytest.fixture
def cluster():
    service = ClusterService(stub_model(), n_replicas=3,
                             policy=ClusterPolicy(max_in_flight=16))
    yield service
    service.close()


TABLES = [make_table(f"films{i}", i) for i in range(8)]


class TestConstruction:
    def test_needs_fitted_models(self):
        with pytest.raises(ModelError):
            ClusterService(NLIDB(EMB, NLIDBConfig()), n_replicas=2)

    def test_replica_count_must_match_model_list(self):
        with pytest.raises(ValueError):
            ClusterService([stub_model()], n_replicas=2)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ClusterPolicy(max_in_flight=0)
        with pytest.raises(ValueError):
            ClusterPolicy(tracked_tables=0)


class TestRoutingAndStamps:
    def test_same_table_always_lands_on_its_owner(self, cluster):
        for table in TABLES:
            owner = cluster.router.owner(table_fingerprint(table))
            for _ in range(3):
                result = cluster.translate(QUESTION, table)
                assert result.status == "ok"
                assert result.replica_id == owner

    def test_v3_stamps_and_route_record(self, cluster):
        table = TABLES[0]
        result = cluster.translate(QUESTION, table)
        assert result.shard_key == table_fingerprint(table)
        record = result.trace[0]
        assert record.stage == "route"
        assert record.detail["replica_id"] == result.replica_id
        assert record.detail["shard_key"] == result.shard_key
        assert record.detail["failover"] is False
        assert record.detail["color"] == "blue"
        payload = result.to_dict()
        assert payload["schema_version"] >= 3
        assert payload["replica_id"] == result.replica_id
        assert payload["shard_key"] == result.shard_key
        # The wrapped service's own records follow the route record.
        assert len(result.trace) > 1

    def test_bare_service_results_are_unstamped(self, cluster):
        replica = cluster.replicas[0]
        direct = replica.service.translate(QUESTION, TABLES[0])
        assert direct.replica_id is None and direct.shard_key is None

    def test_batch_keeps_order_and_envelopes_bad_items(self, cluster):
        items = [(QUESTION, TABLES[0], None), ("not a request",),
                 (QUESTION, TABLES[2], None)]
        results = cluster.translate_batch(items)
        assert [r.status for r in results] == ["ok", "failed", "ok"]
        assert results[1].error["type"] == "ReproError"
        assert cluster.metrics.counter("bad_requests") == 1

    def test_hot_tracker_feeds_warming(self, cluster):
        table = TABLES[0]
        for _ in range(5):
            cluster.translate(QUESTION, table)
        owner = cluster.router.owner(table_fingerprint(table))
        replica = {r.replica_id: r for r in cluster.replicas}[owner]
        hottest = replica.hottest(3)
        assert hottest and hottest[0][0] == table_fingerprint(table)


class TestAdmission:
    def test_overload_resolves_with_structured_rejection(self):
        service = ClusterService(stub_model(), n_replicas=2,
                                 policy=ClusterPolicy(max_in_flight=1))
        try:
            futures = [service.submit(QUESTION, make_table(f"t{i}", i))
                       for i in range(6)]
            results = [f.result(timeout=10) for f in futures]
        finally:
            service.close()
        rejected = [r for r in results if r.status == "failed"]
        served = [r for r in results if r.status == "ok"]
        assert served, "admitted requests must still serve"
        assert rejected, "submitting past capacity must reject"
        for result in rejected:
            assert result.error["type"] == "Overloaded"
            assert result.error["retryable"] is True
            assert result.sql is None
            assert result.shard_key is not None
            assert result.trace[0].stage == "route"
            assert result.trace[0].error == "Overloaded"
        assert service.metrics.counter("rejections") == len(rejected)

    def test_below_threshold_nothing_is_rejected(self, cluster):
        futures = [cluster.submit(QUESTION, TABLES[i % len(TABLES)])
                   for i in range(cluster.policy.max_in_flight)]
        assert all(f.result(timeout=10).status == "ok" for f in futures)
        assert cluster.metrics.counter("rejections") == 0

    def test_in_flight_drains_back_to_zero(self, cluster):
        for i in range(8):
            cluster.translate(QUESTION, TABLES[i % len(TABLES)])
        assert cluster.stats()["gauges"]["in_flight"] == 0.0

    def test_malformed_request_raises_not_envelopes(self, cluster):
        with pytest.raises(ReproError):
            cluster.submit(("question with no table",))


class TestFailover:
    def _owner_replica(self, cluster, table):
        owner = cluster.router.owner(table_fingerprint(table))
        return {r.replica_id: r for r in cluster.replicas}[owner]

    def test_draining_owner_fails_over_to_next_ranked(self, cluster):
        table = TABLES[0]
        owner = self._owner_replica(cluster, table)
        owner.draining = True
        result = cluster.translate(QUESTION, table)
        ranked = cluster.router.ranked(table_fingerprint(table))
        assert result.status == "ok"
        assert result.replica_id == ranked[1]
        assert result.trace[0].detail["failover"] is True
        assert cluster.metrics.counter("failovers") == 1

    def test_open_breaker_fails_over(self, cluster):
        table = TABLES[0]
        owner = self._owner_replica(cluster, table)
        for _ in range(owner.service.breaker.failure_threshold):
            owner.service.breaker.record_failure()
        assert owner.service.breaker.state == BREAKER_OPEN
        assert not owner.healthy()
        result = cluster.translate(QUESTION, table)
        assert result.status == "ok"
        assert result.replica_id != owner.replica_id

    def test_failover_disabled_sticks_with_owner(self):
        service = ClusterService(
            stub_model(), n_replicas=3,
            policy=ClusterPolicy(max_in_flight=16, failover=False))
        try:
            table = TABLES[0]
            owner = service.router.owner(table_fingerprint(table))
            replica = {r.replica_id: r for r in service.replicas}[owner]
            for _ in range(replica.service.breaker.failure_threshold):
                replica.service.breaker.record_failure()
            result = service.translate(QUESTION, table)
            # The owner's own degradation ladder answers (context-free
            # rung behind the open breaker), on the owner.
            assert result.replica_id == owner
            assert result.status == "degraded"
        finally:
            service.close()

    def test_all_unhealthy_still_serves_on_owner(self, cluster):
        table = TABLES[0]
        for replica in cluster.replicas:
            for _ in range(replica.service.breaker.failure_threshold):
                replica.service.breaker.record_failure()
        result = cluster.translate(QUESTION, table)
        assert result.status == "degraded"
        assert result.replica_id == \
            cluster.router.ranked(table_fingerprint(table))[0]


class TestRandomRouterControl:
    def test_cluster_accepts_router_factory(self):
        service = ClusterService(
            stub_model(), n_replicas=3,
            router_factory=lambda ids: RandomRouter(ids, seed=3))
        try:
            seen = {service.translate(QUESTION, TABLES[0]).replica_id
                    for _ in range(12)}
            assert len(seen) > 1, "random routing must spray one key"
        finally:
            service.close()


class TestStats:
    def test_stats_shape(self, cluster):
        cluster.translate(QUESTION, TABLES[0])
        stats = cluster.stats()
        assert stats["schema_version"] >= 3
        assert stats["generation"] == 0 and stats["color"] == "blue"
        assert stats["router"]["kind"] == "rendezvous"
        assert set(stats["replicas"]) == {"r0", "r1", "r2"}
        for replica in stats["replicas"].values():
            assert replica["healthy"] is True
            assert "scheduler" in replica["service"]
            assert "schema_cache" in replica["service"]
        assert stats["policy"]["max_in_flight"] == 16

    def test_served_counters_partition_requests(self, cluster):
        for i in range(6):
            cluster.translate(QUESTION, TABLES[i])
        counters = cluster.metrics
        assert counters.counter("requests") == 6
        assert counters.counter("served_ok") \
            + counters.counter("served_degraded") \
            + counters.counter("served_failed") \
            + counters.counter("rejections") == 6


class TestSwapMechanics:
    def test_swap_flips_color_and_drains_old_set(self, cluster):
        old = cluster.replicas
        summary = cluster.swap(stub_model())
        assert summary["generation"] == 1 and summary["color"] == "green"
        assert summary["drained"] == 3
        assert all(r.draining for r in old)
        assert all(not r.draining for r in cluster.replicas)
        # Same shard ids: the router assignment never reshuffles.
        assert [r.replica_id for r in cluster.replicas] \
            == [r.replica_id for r in old]
        result = cluster.translate(QUESTION, TABLES[0])
        assert result.status == "ok"
        assert result.trace[0].detail["color"] == "green"

    def test_swap_model_count_must_match(self, cluster):
        with pytest.raises(ValueError):
            cluster.swap([stub_model()])

    def test_double_swap_returns_to_blue(self, cluster):
        cluster.swap(stub_model())
        cluster.swap(stub_model())
        assert cluster.color == "blue"
        assert cluster.translate(QUESTION, TABLES[0]).status == "ok"


class TestSwapDifferential:
    """Tentpole acceptance: zero loss, byte-identical SQL mid-swap."""

    def test_swap_under_load_loses_nothing(self, nlidb, corpus,
                                           direct_translations, tmp_path):
        save_nlidb(nlidb, tmp_path / "next")
        standby_model = load_nlidb(tmp_path / "next")
        cluster = ClusterService(
            nlidb, n_replicas=2,
            policy=ClusterPolicy(max_in_flight=len(corpus) + 8))
        try:
            # Warm the hot-table trackers so the swap has something to
            # warm the standby schema caches from.
            for example in corpus[:6]:
                cluster.translate(example.question_tokens, example.table)

            half = len(corpus) // 2
            futures = [cluster.submit(e.question_tokens, e.table)
                       for e in corpus[:half]]
            summary = cluster.swap(standby_model)
            futures += [cluster.submit(e.question_tokens, e.table)
                        for e in corpus[half:]]
            results = [f.result(timeout=120) for f in futures]
        finally:
            cluster.close()

        assert summary["generation"] == 1
        assert summary["warmed_fingerprints"] > 0
        assert len(results) == len(corpus)  # zero requests lost
        for result, reference in zip(results, direct_translations):
            assert isinstance(result, TranslationResult)
            assert result.status != "degraded"
            assert result.replica_id in {"r0", "r1"}
            if reference.query is None:
                assert result.sql is None
            else:
                assert result.sql == reference.query.to_sql(), \
                    "mid-swap answer must be byte-identical to direct"
        # Both generations served: some before the switch, some after.
        colors = {r.trace[0].detail["color"] for r in results}
        assert colors == {"blue", "green"}
