"""Property-based tests for the table content fingerprint.

The serving cache and the annotator's statistics cache both key on
:func:`repro.sqlengine.table_fingerprint`; these properties are what
make that keying sound: content-equal tables collide, any content edit
separates, and the digest is process-stable (no dependence on the
interpreter's salted ``hash()``).
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlengine import Column, DataType, Table, table_fingerprint

WORDS = st.sampled_from(["alpha", "beta", "gamma", "delta", "omega",
                         "kilo", "mega", "turbo"])
CELLS = st.one_of(WORDS, st.integers(-50, 50),
                  st.floats(-10, 10, allow_nan=False))
DTYPES = st.sampled_from([DataType.TEXT, DataType.REAL])


@st.composite
def tables(draw):
    n_cols = draw(st.integers(1, 4))
    names = draw(st.lists(WORDS, min_size=n_cols, max_size=n_cols,
                          unique=True))
    columns = [Column(name, draw(DTYPES)) for name in names]
    n_rows = draw(st.integers(0, 5))
    rows = [tuple(draw(CELLS) for _ in range(n_cols))
            for _ in range(n_rows)]
    return Table(draw(WORDS), columns, rows)


def _rebuild(table: Table, name: str | None = None) -> Table:
    """A fresh, row-order-preserving deep copy of a table."""
    return Table(name if name is not None else table.name,
                 [Column(c.name, c.dtype) for c in table.columns],
                 [tuple(row) for row in table.rows])


class TestEquality:
    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_rebuilt_copy_hashes_equal(self, table):
        assert table_fingerprint(_rebuild(table)) == table_fingerprint(table)

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_table_name_is_not_content(self, table):
        renamed = _rebuild(table, name=table.name + "_replica")
        assert table_fingerprint(renamed) == table_fingerprint(table)

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_fingerprint_is_deterministic(self, table):
        assert table_fingerprint(table) == table_fingerprint(table)


class TestSeparation:
    @given(tables(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_renaming_any_column_changes_hash(self, table, data):
        i = data.draw(st.integers(0, len(table.columns) - 1))
        mutated = _rebuild(table)
        mutated.columns[i] = Column(table.columns[i].name + "x",
                                    table.columns[i].dtype)
        assert table_fingerprint(mutated) != table_fingerprint(table)

    @given(tables(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_changing_any_column_type_changes_hash(self, table, data):
        i = data.draw(st.integers(0, len(table.columns) - 1))
        old = table.columns[i]
        flipped = (DataType.REAL if old.dtype is DataType.TEXT
                   else DataType.TEXT)
        mutated = _rebuild(table)
        mutated.columns[i] = Column(old.name, flipped)
        assert table_fingerprint(mutated) != table_fingerprint(table)

    @given(tables(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_changing_any_cell_changes_hash(self, table, data):
        if not table.rows:
            return
        r = data.draw(st.integers(0, len(table.rows) - 1))
        c = data.draw(st.integers(0, len(table.columns) - 1))
        mutated = _rebuild(table)
        row = list(mutated.rows[r])
        row[c] = str(row[c]) + "_edited"
        mutated.rows[r] = tuple(row)
        assert table_fingerprint(mutated) != table_fingerprint(table)

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_appending_a_row_changes_hash(self, table):
        mutated = _rebuild(table)
        mutated.insert(tuple("pad" for _ in table.columns))
        assert table_fingerprint(mutated) != table_fingerprint(table)

    def test_cell_type_is_content(self):
        as_int = Table("t", [Column("a")], [(1,)])
        as_str = Table("t", [Column("a")], [("1",)])
        assert table_fingerprint(as_int) != table_fingerprint(as_str)

    def test_row_order_is_content(self):
        forward = Table("t", [Column("a")], [("x",), ("y",)])
        backward = Table("t", [Column("a")], [("y",), ("x",)])
        assert table_fingerprint(forward) != table_fingerprint(backward)


_SNIPPET = """
import sys
sys.path.insert(0, {src!r})
from repro.sqlengine import Column, DataType, Table, table_fingerprint
table = Table("films", [Column("film"), Column("year", DataType.REAL)],
              [("solaris", 1972), ("stalker", 1979)])
print(table_fingerprint(table))
"""


class TestProcessStability:
    def test_stable_across_interpreter_hash_seeds(self):
        """The digest must not inherit per-process hash() salting."""
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        snippet = _SNIPPET.format(src=os.path.abspath(src))
        digests = []
        for seed in ("1", "271828"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            result = subprocess.run([sys.executable, "-c", snippet],
                                    capture_output=True, text=True, env=env,
                                    check=True)
            digests.append(result.stdout.strip())
        table = Table("films", [Column("film"), Column("year", DataType.REAL)],
                      [("solaris", 1972), ("stalker", 1979)])
        assert digests[0] == digests[1] == table_fingerprint(table)
