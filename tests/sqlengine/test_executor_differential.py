"""Differential tests: the extended engine leaves the legacy sketch alone.

A frozen re-implementation of the pre-extension renderer and executor
(flat conjunction only, no OR/NOT/GROUP/ORDER/LIMIT) is compared against
the live engine over legacy corpora: SQL text must be byte-identical and
execution results must match exactly.  Any change to how old-sketch
queries render or execute fails here, even if the extended-grammar
tests still pass.
"""

import numpy as np
import pytest

from repro.data import generate_role_typed, generate_wikisql_style
from repro.sqlengine import Aggregate, Operator, Query, execute, parse_sql


# ----------------------------------------------------------------------
# Frozen legacy reference (do not "fix" — it pins pre-extension behavior)
# ----------------------------------------------------------------------

def _legacy_format_value(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)
    return f'"{value}"'


def legacy_to_sql(query: Query) -> str:
    if query.aggregate is Aggregate.NONE:
        select = f"SELECT {query.select_column}"
    else:
        select = f"SELECT {query.aggregate.value}({query.select_column})"
    if not query.conditions:
        return select
    where = " AND ".join(
        f"{c.column} {c.operator.value} {_legacy_format_value(c.value)}"
        for c in query.conditions)
    return f"{select} WHERE {where}"


def _legacy_number(value) -> float:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return float(str(value).strip())


def _legacy_match(cell, cond, dtype) -> bool:
    from repro.sqlengine import DataType
    if cond.operator is Operator.EQ:
        if dtype is DataType.REAL:
            try:
                return _legacy_number(cell) == _legacy_number(cond.value)
            except ValueError:
                return False
        return str(cell).strip().lower() == str(cond.value).strip().lower()
    try:
        lhs, rhs = _legacy_number(cell), _legacy_number(cond.value)
    except ValueError:
        return False
    return lhs > rhs if cond.operator is Operator.GT else lhs < rhs


def legacy_execute(query: Query, table):
    indexed = [(table.column_index(c.column), c) for c in query.conditions]
    rows = [row for row in table.rows
            if all(_legacy_match(row[i], c, table.columns[i].dtype)
                   for i, c in indexed)]
    select_idx = table.column_index(query.select_column)
    cells = [row[select_idx] for row in rows]
    agg = query.aggregate
    if agg is Aggregate.NONE:
        return sorted(cells, key=lambda v: str(v))
    if agg is Aggregate.COUNT:
        return len(cells)
    if not cells:
        return None
    numbers = [_legacy_number(v) for v in cells]
    if agg is Aggregate.MAX:
        return max(numbers)
    if agg is Aggregate.MIN:
        return min(numbers)
    if agg is Aggregate.SUM:
        return sum(numbers)
    return sum(numbers) / len(numbers)


# ----------------------------------------------------------------------
# Corpora
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def legacy_examples():
    ds = generate_wikisql_style(seed=17, train_size=60, dev_size=15,
                                test_size=15)
    return ds.train + ds.dev + ds.test


@pytest.fixture(scope="module")
def role_typed_legacy_examples():
    ds = generate_role_typed(seed=17, train_size=120, dev_size=30,
                             test_size=30)
    out = [e for e in ds.train + ds.dev + ds.test if e.sketch_compatible]
    assert out, "role-typed corpus produced no legacy-sketch examples"
    return out


class TestLegacySQLByteIdentical:
    def test_wikisql_corpus(self, legacy_examples):
        for example in legacy_examples:
            assert not example.query.is_extended
            assert example.query.to_sql() == legacy_to_sql(example.query)

    def test_role_typed_legacy_subset(self, role_typed_legacy_examples):
        for example in role_typed_legacy_examples:
            assert not example.query.is_extended
            assert example.query.to_sql() == legacy_to_sql(example.query)

    def test_parse_preserves_byte_identity(self, legacy_examples):
        for example in legacy_examples:
            sql = example.query.to_sql()
            assert parse_sql(sql).to_sql() == sql

    def test_synthetic_value_shapes(self):
        from repro.sqlengine import Condition
        queries = [
            Query("a", Aggregate.NONE, [Condition("b", Operator.EQ, "x y")]),
            Query("a", Aggregate.COUNT, [Condition("b", Operator.GT, 3)]),
            Query("a", Aggregate.MAX, [Condition("b", Operator.LT, 2.5)]),
            Query("a", Aggregate.SUM, [Condition("b", Operator.EQ, 4.0)]),
            Query("a", Aggregate.AVG, []),
        ]
        for query in queries:
            assert query.to_sql() == legacy_to_sql(query)


class TestLegacyExecutionIdentical:
    def test_wikisql_corpus(self, legacy_examples):
        for example in legacy_examples:
            assert execute(example.query, example.table) == \
                legacy_execute(example.query, example.table)

    def test_role_typed_legacy_subset(self, role_typed_legacy_examples):
        for example in role_typed_legacy_examples:
            assert execute(example.query, example.table) == \
                legacy_execute(example.query, example.table)

    def test_randomized_conditions(self):
        """Random flat conjunctions over a fixed table agree exactly."""
        from repro.sqlengine import Column, Condition, DataType, Table
        rng = np.random.default_rng(23)
        table = Table(
            "t", [Column("name"), Column("city"),
                  Column("pop", DataType.REAL)],
            [(f"p{i}", ["mayo", "cork", "oslo"][int(rng.integers(3))],
              int(rng.integers(0, 50))) for i in range(20)])
        columns = ["name", "city", "pop"]
        for _ in range(200):
            conditions = [
                Condition(columns[int(rng.integers(3))],
                          [Operator.EQ, Operator.GT,
                           Operator.LT][int(rng.integers(3))],
                          ["mayo", "p3", int(rng.integers(0, 50))][
                              int(rng.integers(3))])
                for _ in range(int(rng.integers(0, 3)))]
            agg = list(Aggregate)[int(rng.integers(len(Aggregate)))]
            query = Query("pop" if agg not in (Aggregate.NONE,
                                               Aggregate.COUNT) else "name",
                          agg, conditions)
            assert execute(query, table) == legacy_execute(query, table)
