"""Tests for the WikiSQL-sketch SQL parser."""

import pytest

from repro.errors import SQLParseError
from repro.sqlengine import Aggregate, Operator, parse_sql


class TestSelectClause:
    def test_plain_select(self):
        q = parse_sql("SELECT Film Name")
        assert q.select_column == "Film Name"
        assert q.aggregate is Aggregate.NONE
        assert q.conditions == []

    def test_aggregate_with_parens(self):
        q = parse_sql("SELECT COUNT(Film Name)")
        assert q.aggregate is Aggregate.COUNT
        assert q.select_column == "Film Name"

    @pytest.mark.parametrize("agg", ["MAX", "MIN", "COUNT", "SUM", "AVG"])
    def test_all_aggregates(self, agg):
        q = parse_sql(f"SELECT {agg}(Population)")
        assert q.aggregate.value == agg

    def test_aggregate_without_parens(self):
        q = parse_sql("SELECT MAX Population WHERE County = \"Mayo\"")
        assert q.aggregate is Aggregate.MAX
        assert q.select_column == "Population"

    def test_case_insensitive_keywords(self):
        q = parse_sql("select avg(score) where name = \"x\"")
        assert q.aggregate is Aggregate.AVG

    def test_from_clause_tolerated(self):
        q = parse_sql("SELECT Name FROM people WHERE Age > 30")
        assert q.select_column == "Name"
        assert len(q.conditions) == 1

    def test_trailing_semicolon(self):
        q = parse_sql("SELECT Name;")
        assert q.select_column == "Name"


class TestWhereClause:
    def test_single_condition_quoted(self):
        q = parse_sql('SELECT a WHERE b = "hello world"')
        cond = q.conditions[0]
        assert cond.column == "b"
        assert cond.operator is Operator.EQ
        assert cond.value == "hello world"

    def test_multiple_conditions(self):
        q = parse_sql('SELECT a WHERE b = "x" AND c > 5 AND d < 2.5')
        assert len(q.conditions) == 3
        assert q.conditions[1].operator is Operator.GT
        assert q.conditions[1].value == 5
        assert q.conditions[2].value == 2.5

    def test_and_inside_quoted_value_not_split(self):
        q = parse_sql('SELECT a WHERE b = "rock and roll"')
        assert len(q.conditions) == 1
        assert q.conditions[0].value == "rock and roll"

    def test_multiword_condition_column(self):
        q = parse_sql('SELECT a WHERE English Name = "Carrowteige"')
        assert q.conditions[0].column == "English Name"

    def test_numeric_value_int(self):
        q = parse_sql("SELECT a WHERE b = 42")
        assert q.conditions[0].value == 42
        assert isinstance(q.conditions[0].value, int)

    def test_bareword_value(self):
        q = parse_sql("SELECT a WHERE b = Mayo")
        assert q.conditions[0].value == "Mayo"

    def test_single_quotes(self):
        q = parse_sql("SELECT a WHERE b = 'Mayo Town'")
        assert q.conditions[0].value == "Mayo Town"


class TestErrors:
    def test_empty_raises(self):
        with pytest.raises(SQLParseError):
            parse_sql("")
        with pytest.raises(SQLParseError):
            parse_sql("   ")

    def test_not_select_raises(self):
        with pytest.raises(SQLParseError):
            parse_sql("DELETE FROM t")

    def test_empty_select_raises(self):
        with pytest.raises(SQLParseError):
            parse_sql("SELECT  WHERE a = 1")

    def test_empty_where_raises(self):
        with pytest.raises(SQLParseError):
            parse_sql("SELECT a WHERE ")

    def test_condition_without_operator_raises(self):
        with pytest.raises(SQLParseError):
            parse_sql("SELECT a WHERE b c")

    def test_unknown_aggregate_not_treated_as_agg(self):
        # FOO(x) is not an aggregate; it parses as a plain column name.
        q = parse_sql("SELECT FOO(x)")
        assert q.aggregate is Aggregate.NONE


class TestRoundTrip:
    @pytest.mark.parametrize("sql", [
        'SELECT Film Name WHERE Director = "Jerzy Antczak"',
        'SELECT COUNT(Name) WHERE Age > 30 AND City = "Galway"',
        "SELECT AVG(Population)",
        'SELECT Name WHERE Score < 2.5',
    ])
    def test_parse_render_parse_is_stable(self, sql):
        q1 = parse_sql(sql)
        q2 = parse_sql(q1.to_sql())
        assert q1.canonical() == q2.canonical()
        assert q1.tokens() == q2.tokens()
