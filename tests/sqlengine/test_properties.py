"""Property-based tests for the SQL engine invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlengine import (
    Aggregate,
    Column,
    Condition,
    DataType,
    Operator,
    Query,
    Table,
    execute,
    parse_sql,
    results_equal,
)

NAMES = st.sampled_from(["anna", "bob", "carol", "dave"])
CITIES = st.sampled_from(["mayo", "cork", "oslo"])
NUMBERS = st.integers(0, 1000)


@st.composite
def tables(draw):
    n_rows = draw(st.integers(1, 8))
    rows = [(draw(NAMES), draw(CITIES), draw(NUMBERS))
            for _ in range(n_rows)]
    return Table("t", [Column("name"), Column("city"),
                       Column("pop", DataType.REAL)], rows)


class TestExecutorProperties:
    @given(tables(), CITIES)
    @settings(max_examples=40, deadline=None)
    def test_count_bounded_by_rows(self, table, city):
        query = Query("name", Aggregate.COUNT,
                      [Condition("city", Operator.EQ, city)])
        count = execute(query, table)
        assert 0 <= count <= len(table)

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_max_ge_min(self, table):
        maximum = execute(Query("pop", Aggregate.MAX), table)
        minimum = execute(Query("pop", Aggregate.MIN), table)
        assert maximum >= minimum

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_avg_between_min_and_max(self, table):
        avg = execute(Query("pop", Aggregate.AVG), table)
        assert (execute(Query("pop", Aggregate.MIN), table) - 1e-9 <= avg
                <= execute(Query("pop", Aggregate.MAX), table) + 1e-9)

    @given(tables(), NUMBERS)
    @settings(max_examples=40, deadline=None)
    def test_gt_lt_partition(self, table, threshold):
        gt = execute(Query("name", Aggregate.COUNT,
                           [Condition("pop", Operator.GT, threshold)]), table)
        lt = execute(Query("name", Aggregate.COUNT,
                           [Condition("pop", Operator.LT, threshold)]), table)
        eq = execute(Query("name", Aggregate.COUNT,
                           [Condition("pop", Operator.EQ, threshold)]), table)
        assert gt + lt + eq == len(table)

    @given(tables(), CITIES)
    @settings(max_examples=40, deadline=None)
    def test_conjunction_narrows(self, table, city):
        base = execute(Query("name", Aggregate.COUNT,
                             [Condition("city", Operator.EQ, city)]), table)
        narrowed = execute(Query("name", Aggregate.COUNT,
                                 [Condition("city", Operator.EQ, city),
                                  Condition("pop", Operator.GT, -1)]), table)
        assert narrowed <= base

    @given(tables(), CITIES)
    @settings(max_examples=40, deadline=None)
    def test_condition_order_irrelevant_to_execution(self, table, city):
        a = Query("name", Aggregate.NONE,
                  [Condition("city", Operator.EQ, city),
                   Condition("pop", Operator.GT, 10)])
        b = Query("name", Aggregate.NONE, list(reversed(a.conditions)))
        assert results_equal(execute(a, table), execute(b, table))

    @given(tables())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_sql_text_execution(self, table):
        query = Query("city", Aggregate.NONE,
                      [Condition("name", Operator.EQ, "anna")])
        reparsed = parse_sql(query.to_sql())
        assert results_equal(execute(query, table), execute(reparsed, table))


class TestGeneratedDatasetProperties:
    """Executing every generated gold query is safe and type-correct."""

    @pytest.fixture(scope="class")
    def examples(self):
        from repro.data import generate_wikisql_style
        ds = generate_wikisql_style(seed=9, train_size=80, dev_size=20,
                                    test_size=20)
        return ds.train + ds.dev + ds.test

    def test_all_gold_queries_execute(self, examples):
        for example in examples:
            result = execute(example.query, example.table)
            if example.query.aggregate is Aggregate.COUNT:
                assert isinstance(result, int)

    def test_equality_queries_from_table_rows_hit(self, examples):
        """Non-counterfactual equality queries return at least one row."""
        hits = misses = 0
        for example in examples:
            if example.query.aggregate is not Aggregate.NONE:
                continue
            if not all(c.operator is Operator.EQ
                       for c in example.query.conditions):
                continue
            in_table = all(
                str(c.value).lower() in
                {str(v).lower()
                 for v in example.table.column_values(c.column)}
                for c in example.query.conditions)
            result = execute(example.query, example.table)
            if in_table and example.query.conditions:
                hits += bool(result)
        assert hits > 0
