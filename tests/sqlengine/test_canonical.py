"""Tests for canonicalization and the three AST comparison views."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlengine import (
    Aggregate,
    Condition,
    Operator,
    Query,
    canonical_equal,
    canonicalize,
    parse_sql,
)

COLUMNS = st.sampled_from(["name", "city", "Population", "Irish Name"])
VALUES = st.one_of(st.integers(-100, 100),
                   st.sampled_from(["Mayo", "rock and roll", "x1"]))
OPERATORS = st.sampled_from(list(Operator))
AGGREGATES = st.sampled_from(list(Aggregate))


@st.composite
def queries(draw):
    n_conds = draw(st.integers(0, 3))
    conds = [Condition(draw(COLUMNS), draw(OPERATORS), draw(VALUES))
             for _ in range(n_conds)]
    return Query(draw(COLUMNS), draw(AGGREGATES), conds)


class TestCanonical:
    def test_condition_order_ignored(self):
        a = parse_sql('SELECT x WHERE a = "1" AND b = "2"')
        b = parse_sql('SELECT x WHERE b = "2" AND a = "1"')
        assert canonical_equal(a, b)
        assert not a.logical_form_equal(b)

    def test_case_ignored(self):
        assert canonical_equal('SELECT Name WHERE City = "MAYO"',
                               'select name where city = "mayo"')

    def test_numeric_string_vs_number(self):
        assert canonical_equal("SELECT x WHERE y = 5", 'SELECT x WHERE y = "5"')

    def test_aggregate_distinguishes(self):
        assert not canonical_equal("SELECT COUNT(x)", "SELECT MAX(x)")

    def test_unparseable_never_equal(self):
        assert not canonical_equal("garbage", "garbage")
        assert not canonical_equal("SELECT x", "garbage")

    def test_accepts_query_objects(self):
        q = parse_sql("SELECT x")
        assert canonical_equal(q, "SELECT x")
        assert canonicalize(q) == canonicalize("SELECT x")

    @given(queries())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_preserves_canonical(self, query):
        assert canonical_equal(query, parse_sql(query.to_sql()))

    @given(queries())
    @settings(max_examples=50, deadline=None)
    def test_reflexive(self, query):
        assert query.query_match_equal(query)
        assert query.logical_form_equal(query)

    @given(queries())
    @settings(max_examples=50, deadline=None)
    def test_lf_equal_implies_qm_equal(self, query):
        other = parse_sql(query.to_sql())
        if query.logical_form_equal(other):
            assert query.query_match_equal(other)


class TestWhereCanonical:
    def test_pairs_sorted(self):
        q = parse_sql('SELECT x WHERE b = "2" AND a = "1"')
        assert q.where_canonical() == (("a", "1"), ("b", "2"))

    def test_used_for_mention_scoring(self):
        gold = parse_sql('SELECT Film WHERE Director = "Jerzy" AND Actor = "Piotr"')
        pred = parse_sql('SELECT Other WHERE actor = "piotr" AND director = "jerzy"')
        assert gold.where_canonical() == pred.where_canonical()


class TestTokens:
    def test_tokens_lowercased(self):
        q = parse_sql('SELECT MAX(Score) WHERE Name = "Bob"')
        assert q.tokens() == ["select", "max", "score", "where", "name", "=", "bob"]

    def test_no_where_tokens(self):
        assert parse_sql("SELECT x").tokens() == ["select", "x"]
