"""Tests for Column/Table/Database."""

import pytest

from repro.errors import SchemaError
from repro.sqlengine import Column, Database, DataType, Table


def films_table():
    return Table(
        "films",
        [Column("Film Name"), Column("Director"), Column("Actor"),
         Column("Year", DataType.REAL)],
        [("Chopin: Desire for Love", "Jerzy Antczak", "Piotr Adamczyk", 2002),
         ("27 Stolen Kisses", "Nana Djordjadze", "Levan Uchaneishvili", 2000)],
    )


class TestColumn:
    def test_default_dtype_is_text(self):
        assert Column("x").dtype is DataType.TEXT

    def test_empty_name_raises(self):
        with pytest.raises(SchemaError):
            Column("")
        with pytest.raises(SchemaError):
            Column("   ")

    def test_frozen(self):
        col = Column("x")
        with pytest.raises(AttributeError):
            col.name = "y"


class TestTable:
    def test_column_names_ordered(self):
        assert films_table().column_names == [
            "Film Name", "Director", "Actor", "Year"]

    def test_column_index_case_insensitive(self):
        table = films_table()
        assert table.column_index("director") == 1
        assert table.column_index("FILM NAME") == 0

    def test_missing_column_raises(self):
        with pytest.raises(SchemaError):
            films_table().column_index("Producer")

    def test_has_column(self):
        table = films_table()
        assert table.has_column("Actor")
        assert not table.has_column("Actress Name")

    def test_column_values(self):
        assert films_table().column_values("Year") == [2002, 2000]

    def test_duplicate_columns_raise(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a"), Column("A")])

    def test_row_arity_checked_at_construction(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a"), Column("b")], [("only-one",)])

    def test_insert_validates_arity(self):
        table = films_table()
        with pytest.raises(SchemaError):
            table.insert(("too", "few"))
        table.insert(("New Film", "Someone", "Someone Else", 2020))
        assert len(table) == 3

    def test_column_accessor(self):
        assert films_table().column("year").dtype is DataType.REAL


class TestDatabase:
    def test_add_and_get(self):
        db = Database("test")
        table = films_table()
        db.add(table)
        assert db.get("films") is table
        assert "films" in db
        assert len(db) == 1

    def test_duplicate_add_raises(self):
        db = Database()
        db.add(films_table())
        with pytest.raises(SchemaError):
            db.add(films_table())

    def test_missing_get_raises(self):
        with pytest.raises(SchemaError):
            Database().get("nope")
