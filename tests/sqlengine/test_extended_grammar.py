"""Extended-grammar round-trip and parser-hardening tests.

The central invariant: for any query over the extended sketch (boolean
WHERE trees, GROUP BY + HAVING, ORDER BY, LIMIT), rendering to SQL and
parsing back yields an equal :class:`Query` — ``parse_sql(str(q)) == q``
— including values whose text contains AND/OR keywords or apostrophes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlengine import (
    Aggregate,
    And,
    Column,
    Condition,
    DataType,
    Having,
    Not,
    Operator,
    Or,
    OrderBy,
    Query,
    SortDirection,
    Table,
    execute,
    parse_sql,
    results_equal,
)

COLUMNS = st.sampled_from(["name", "city", "pop", "film name"])
# Deliberately hostile value surfaces: embedded AND/OR keywords,
# apostrophes, digit-only strings.
WORDS = st.sampled_from([
    "mayo", "cork", "rock and roll", "now or never", "o'connor",
    "not applicable", "42nd street",
])
VALUES = st.one_of(WORDS, st.integers(0, 1000))
OPERATORS = st.sampled_from(list(Operator))
AGGREGATES = st.sampled_from(list(Aggregate))
# HAVING requires an actual aggregate function (NONE is SELECT-only).
REAL_AGGREGATES = st.sampled_from(
    [a for a in Aggregate if a is not Aggregate.NONE])
DIRECTIONS = st.sampled_from(list(SortDirection))

CONDITIONS = st.builds(Condition, column=COLUMNS, operator=OPERATORS,
                       value=VALUES)

WHERE_TREES = st.recursive(
    CONDITIONS,
    lambda children: st.one_of(
        st.builds(Not, children),
        st.builds(lambda items: And(tuple(items)),
                  st.lists(children, min_size=2, max_size=3)),
        st.builds(lambda items: Or(tuple(items)),
                  st.lists(children, min_size=2, max_size=3)),
    ),
    max_leaves=6,
)

HAVINGS = st.builds(Having, aggregate=REAL_AGGREGATES, column=COLUMNS,
                    operator=OPERATORS, value=st.integers(0, 50))
ORDER_BYS = st.builds(OrderBy, column=COLUMNS, direction=DIRECTIONS)


@st.composite
def extended_queries(draw):
    """Any clause combination the grammar admits (not all executable)."""
    group_by = draw(st.none() | COLUMNS)
    return Query(
        select_column=draw(COLUMNS),
        aggregate=draw(AGGREGATES),
        where=draw(st.none() | WHERE_TREES),
        group_by=group_by,
        having=draw(st.none() | HAVINGS) if group_by is not None else None,
        order_by=draw(st.none() | ORDER_BYS),
        limit=draw(st.none() | st.integers(0, 20)),
    )


class TestRoundTrip:
    @given(extended_queries())
    @settings(max_examples=200, deadline=None)
    def test_parse_of_rendered_sql_is_equal(self, query):
        assert parse_sql(str(query)) == query

    @given(extended_queries())
    @settings(max_examples=100, deadline=None)
    def test_rendering_is_a_fixpoint(self, query):
        sql = query.to_sql()
        assert parse_sql(sql).to_sql() == sql

    @given(extended_queries())
    @settings(max_examples=100, deadline=None)
    def test_canonical_survives_round_trip(self, query):
        assert parse_sql(str(query)).canonical() == query.canonical()

    @given(st.lists(CONDITIONS, min_size=1, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_legacy_flat_conjunction_stays_legacy(self, conditions):
        query = Query("name", Aggregate.NONE, conditions)
        reparsed = parse_sql(query.to_sql())
        assert not reparsed.is_extended
        assert reparsed.conditions == conditions
        assert reparsed == query


class TestParserHardening:
    """Quote-aware splitting: keywords inside values never split."""

    def test_and_inside_quoted_value(self):
        query = parse_sql(
            'SELECT name WHERE genre = "rock and roll" AND pop > 5')
        assert query.conditions == [
            Condition("genre", Operator.EQ, "rock and roll"),
            Condition("pop", Operator.GT, 5)]

    def test_or_inside_quoted_value_with_tree(self):
        query = parse_sql(
            'SELECT name WHERE song = "now or never" OR song = "mayo"')
        assert query.where == Or((
            Condition("song", Operator.EQ, "now or never"),
            Condition("song", Operator.EQ, "mayo")))

    def test_bareword_apostrophe_does_not_open_quote(self):
        query = parse_sql("SELECT city WHERE name = o'connor AND pop > 3")
        assert query.conditions == [
            Condition("name", Operator.EQ, "o'connor"),
            Condition("pop", Operator.GT, 3)]

    def test_clause_keyword_inside_quoted_value(self):
        query = parse_sql('SELECT name WHERE motto = "order by merit"')
        assert query.order_by is None
        assert query.conditions == [
            Condition("motto", Operator.EQ, "order by merit")]

    def test_not_keyword_inside_quoted_value(self):
        query = parse_sql('SELECT name WHERE status = "not applicable"')
        assert query.where is None
        assert query.conditions == [
            Condition("status", Operator.EQ, "not applicable")]


class TestCanonicalization:
    def test_or_operands_commute_under_query_match(self):
        a = Query("name", where=Or((Condition("city", Operator.EQ, "cork"),
                                    Condition("city", Operator.EQ, "mayo"))))
        b = Query("name", where=Or((Condition("city", Operator.EQ, "mayo"),
                                    Condition("city", Operator.EQ, "cork"))))
        assert a.query_match_equal(b)
        assert not a.logical_form_equal(b)

    def test_and_or_nesting_does_not_commute_across_groups(self):
        nested = Query("name", where=Or((
            And((Condition("a", Operator.EQ, 1),
                 Condition("b", Operator.EQ, 2))),
            Condition("c", Operator.EQ, 3))))
        flat = Query("name", where=And((
            Condition("a", Operator.EQ, 1),
            Or((Condition("b", Operator.EQ, 2),
                Condition("c", Operator.EQ, 3))))))
        assert not nested.query_match_equal(flat)

    def test_double_negation_is_not_collapsed(self):
        inner = Condition("city", Operator.EQ, "cork")
        assert not Query("name", where=Not(Not(inner))).query_match_equal(
            Query("name", where=inner))


def _table():
    return Table("t", [Column("name"), Column("pop", DataType.REAL)],
                 [("anna", 5), ("bob", 9), ("carol", 9), ("dave", 2)])


class TestOrderByDeterminism:
    def test_ties_keep_row_order_both_directions(self):
        desc = Query("name", order_by=OrderBy("pop", SortDirection.DESC))
        asc = Query("name", order_by=OrderBy("pop", SortDirection.ASC))
        # bob and carol tie on pop=9; table order (bob before carol)
        # is preserved under both sort directions.
        assert execute(desc, _table()) == ["bob", "carol", "anna", "dave"]
        assert execute(asc, _table()) == ["dave", "anna", "bob", "carol"]

    def test_limit_after_deterministic_sort(self):
        query = Query("name", order_by=OrderBy("pop", SortDirection.DESC),
                      limit=2)
        assert execute(query, _table()) == ["bob", "carol"]

    @given(extended_queries())
    @settings(max_examples=60, deadline=None)
    def test_execution_of_reparsed_query_matches(self, query):
        table = Table("t", [Column("name"), Column("city"),
                            Column("pop", DataType.REAL),
                            Column("film name")],
                      [("anna", "mayo", 5, "alpha"),
                       ("bob", "cork", 9, "beta")])
        try:
            expected = execute(query, table)
        except Exception:
            return  # invalid clause combination — parser equality covered above
        assert results_equal(expected, execute(parse_sql(str(query)), table))
