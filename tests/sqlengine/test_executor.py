"""Tests for query execution and result comparison."""

import pytest

from repro.errors import SQLExecutionError
from repro.sqlengine import (
    Column,
    DataType,
    Table,
    execute,
    parse_sql,
    results_equal,
)


@pytest.fixture
def counties():
    return Table(
        "counties",
        [Column("County"), Column("English Name"), Column("Irish Name"),
         Column("Population", DataType.REAL), Column("Irish Speakers")],
        [("Mayo", "Carrowteige", "Ceathru Thaidhg", 356, "64%"),
         ("Galway", "Aran Islands", "Oileain Arann", 1225, "79%"),
         ("Mayo", "Bangor", "Baingear", 410, "40%")],
    )


class TestSelect:
    def test_plain_select_returns_sorted_cells(self, counties):
        out = execute(parse_sql("SELECT County"), counties)
        assert out == ["Galway", "Mayo", "Mayo"]

    def test_where_eq_text_case_insensitive(self, counties):
        out = execute(parse_sql('SELECT Population WHERE County = "mayo" '
                                'AND English Name = "Carrowteige"'), counties)
        assert out == [356]

    def test_where_numeric_eq(self, counties):
        out = execute(parse_sql("SELECT County WHERE Population = 1225"), counties)
        assert out == ["Galway"]

    def test_where_gt(self, counties):
        out = execute(parse_sql("SELECT County WHERE Population > 400"), counties)
        assert out == ["Galway", "Mayo"]

    def test_where_lt(self, counties):
        out = execute(parse_sql("SELECT English Name WHERE Population < 400"), counties)
        assert out == ["Carrowteige"]

    def test_counterfactual_value_matches_nothing(self, counties):
        out = execute(parse_sql('SELECT Population WHERE County = "Kerry"'), counties)
        assert out == []


class TestAggregates:
    def test_count(self, counties):
        assert execute(parse_sql('SELECT COUNT(County) WHERE County = "Mayo"'),
                       counties) == 2

    def test_count_empty(self, counties):
        assert execute(parse_sql('SELECT COUNT(County) WHERE County = "Kerry"'),
                       counties) == 0

    def test_max(self, counties):
        assert execute(parse_sql("SELECT MAX(Population)"), counties) == 1225.0

    def test_min(self, counties):
        assert execute(parse_sql("SELECT MIN(Population)"), counties) == 356.0

    def test_sum(self, counties):
        assert execute(parse_sql('SELECT SUM(Population) WHERE County = "Mayo"'),
                       counties) == 766.0

    def test_avg(self, counties):
        assert execute(parse_sql('SELECT AVG(Population) WHERE County = "Mayo"'),
                       counties) == 383.0

    def test_numeric_agg_on_empty_returns_none(self, counties):
        assert execute(parse_sql('SELECT MAX(Population) WHERE County = "Kerry"'),
                       counties) is None

    def test_numeric_agg_on_text_raises(self, counties):
        with pytest.raises(SQLExecutionError):
            execute(parse_sql("SELECT SUM(County)"), counties)

    def test_agg_on_numeric_strings_works(self):
        table = Table("t", [Column("v")], [("10",), ("20",)])
        assert execute(parse_sql("SELECT SUM(v)"), table) == 30.0


class TestErrors:
    def test_unknown_select_column(self, counties):
        with pytest.raises(SQLExecutionError):
            execute(parse_sql("SELECT Area"), counties)

    def test_unknown_condition_column(self, counties):
        with pytest.raises(SQLExecutionError):
            execute(parse_sql('SELECT County WHERE Area > 10'), counties)

    def test_gt_on_text_matches_nothing(self, counties):
        out = execute(parse_sql('SELECT County WHERE English Name > 5'), counties)
        assert out == []


class TestResultsEqual:
    def test_lists(self):
        assert results_equal(["a", "b"], ["A ", "b"])
        assert not results_equal(["a"], ["a", "a"])
        assert not results_equal(["a"], "a")

    def test_numbers_with_tolerance(self):
        assert results_equal(1.0, 1.0 + 1e-12)
        assert not results_equal(1.0, 1.1)

    def test_none(self):
        assert results_equal(None, None)
        assert not results_equal(None, 0)

    def test_mixed_numeric_types(self):
        assert results_equal(5, 5.0)
