"""The NLIDB's annotate → translate → recover graph, end to end.

Runs on a stub translator (no training) so the stage decomposition,
trace contents, artifact pre-seeding, and fault wiring are fast to
assert; the trained-model equivalence is pinned by
``test_differential_refactor.py``.
"""

import pytest

from repro.core import NLIDB, NLIDBConfig
from repro.errors import ModelError
from repro.pipeline import (
    OUTCOME_CACHED,
    OUTCOME_OK,
    StageTrace,
)
from repro.serving import FaultInjector, FaultSpec, FaultyNLIDB, InjectedFault
from repro.sqlengine import Column, DataType, Table
from repro.text import WordEmbeddings

EMB = WordEmbeddings(dim=16, seed=0)

QUESTION = "which film has director tarkovsky ?"

TOP_STAGES = ("annotate", "translate", "recover")
SUB_STAGES = ("annotate.values", "annotate.columns", "annotate.resolve",
              "annotate.symbols")


class StubTranslator:
    def __init__(self):
        self.calls = 0

        class _Config:
            beam_width = 5
        self.config = _Config()

    def translate(self, source, header_tokens, extra_symbols=(),
                  beam_width=None):
        self.calls += 1
        return ["select", "g1"]


def make_table():
    return Table("films", [Column("film"), Column("director"),
                           Column("year", DataType.REAL)],
                 [("solaris", "tarkovsky", 1972),
                  ("stalker", "tarkovsky", 1979)])


@pytest.fixture
def model():
    nlidb = NLIDB(EMB, NLIDBConfig(), translator=StubTranslator())
    nlidb._fitted = True  # annotator runs matcher-only when untrained
    return nlidb


class TestStageGraph:
    def test_top_level_stage_names(self, model):
        assert model.pipeline().stage_names() == TOP_STAGES

    def test_annotation_substage_names(self, model):
        assert tuple(model.annotator.annotation_pipeline().stage_names()) \
            == SUB_STAGES

    def test_pipeline_is_cached_and_mode_independent(self, model):
        assert model.pipeline("full") is model.pipeline("context_free")

    def test_unknown_mode_rejected(self, model):
        with pytest.raises(ModelError, match="unknown annotation mode"):
            model.pipeline("bogus")
        with pytest.raises(ModelError, match="unknown annotation mode"):
            model.translate(QUESTION, make_table(), mode="bogus")
        with pytest.raises(ModelError, match="unknown annotation mode"):
            model.annotator.annotate(QUESTION, make_table(), mode="bogus")


class TestTranslateTrace:
    def test_translation_carries_full_trace(self, model):
        translation = model.translate(QUESTION, make_table())
        assert translation.query is not None
        names = [record.stage for record in translation.trace]
        # Composite ordering: each top-level stage, with the annotate
        # sub-stages nested right after their composite.
        assert names == ["annotate", *SUB_STAGES, "translate", "recover"]
        assert all(r.outcome == OUTCOME_OK for r in translation.trace)
        assert all(r.attempt == 1 and r.mode == "full"
                   for r in translation.trace)

    def test_trace_excluded_from_outcome_equality(self, model):
        first = model.translate(QUESTION, make_table())
        second = model.translate(QUESTION, make_table())
        assert first.trace is not second.trace
        assert first.result_equal(second)

    def test_recover_stage_notes_soft_failures(self, model):
        model.translator.translate = lambda *a, **k: ["bogus"]
        translation = model.translate(QUESTION, make_table())
        assert translation.query is None and translation.error
        recover = [r for r in translation.trace if r.stage == "recover"][-1]
        assert recover.outcome == OUTCOME_OK  # soft failure, no raise
        assert recover.detail["recovered"] is False

    def test_stage_timer_sees_completed_top_level_stages(self, model):
        seen = []
        model.stage_timer = lambda stage, s: seen.append((stage, s))
        model.translate(QUESTION, make_table())
        assert [stage for stage, _ in seen] == list(TOP_STAGES)
        assert all(s >= 0.0 for _, s in seen)

    def test_stage_timer_omits_failed_stage(self, model):
        seen = []
        model.stage_timer = lambda stage, s: seen.append(stage)
        with pytest.raises(ModelError):
            model.translate([], make_table())
        assert seen == []

    def test_empty_question_fails_in_annotate(self, model):
        with pytest.raises(ModelError) as err:
            model.translate([], make_table())
        assert err.value.stage == "annotate"

    def test_mode_context_free_stamped_on_records(self, model):
        translation = model.translate(QUESTION, make_table(),
                                      mode="context_free")
        assert all(r.mode == "context_free" for r in translation.trace)


class TestArtifactPreSeeding:
    def test_preseeded_annotation_skips_the_composite(self, model):
        table = make_table()
        annotation = model.annotate(QUESTION, table)
        ctx = model.context(QUESTION, table,
                            artifacts={"annotation": annotation})
        model.pipeline().run(ctx)
        annotate = ctx.trace.last("annotate")
        assert annotate.outcome == OUTCOME_CACHED and annotate.cached
        # Sub-stages never ran: the composite was skipped wholesale.
        assert ctx.trace.stage_names() == ["annotate", "translate",
                                           "recover"]
        assert ctx.artifacts["translation"].query is not None

    def test_annotator_trace_collection(self, model):
        trace = StageTrace()
        model.annotator.annotate(QUESTION, make_table(), trace=trace)
        assert trace.stage_names() == list(SUB_STAGES)


class TestMentionResolutionStrategy:
    def test_dependency_strategy_recorded(self, model):
        model.annotator.config.use_dependency_resolution = True
        translation = model.translate(QUESTION, make_table())
        resolve = [r for r in translation.trace
                   if r.stage == "annotate.resolve"][-1]
        assert resolve.detail["strategy"] == "dependency"
        assert resolve.detail["pairs"] >= 0

    def test_linear_fallback_strategy_recorded(self, model):
        model.annotator.config.use_dependency_resolution = False
        translation = model.translate(QUESTION, make_table())
        resolve = [r for r in translation.trace
                   if r.stage == "annotate.resolve"][-1]
        assert resolve.detail["strategy"] == "linear"

    def test_strategies_agree_on_this_question(self, model):
        model.annotator.config.use_dependency_resolution = True
        by_tree = model.translate(QUESTION, make_table())
        model.annotator.config.use_dependency_resolution = False
        by_distance = model.translate(QUESTION, make_table())
        assert by_tree.result_equal(by_distance)


class TestFaultWiring:
    def test_faulty_pipeline_injects_before_stages(self, model):
        injector = FaultInjector(
            [FaultSpec(stage="translate", kind="transient", count=1)])
        faulty = FaultyNLIDB(model, injector)
        pipe = faulty.pipeline()
        ctx = model.context(QUESTION, make_table())
        with pytest.raises(InjectedFault) as err:
            pipe.run(ctx)
        assert err.value.stage == "translate" and err.value.retryable
        record = ctx.trace.last("translate")
        assert record.error == "InjectedFault"
        # The plan is burnt down: a fresh context now succeeds.
        ctx = model.context(QUESTION, make_table())
        pipe.run(ctx)
        assert ctx.artifacts["translation"].query is not None
        assert injector.stats()["fired"][0]["fired"] == 1

    def test_mode_restricted_fault_spares_other_rung(self, model):
        injector = FaultInjector(
            [FaultSpec(stage="annotate", kind="permanent", mode="full")])
        faulty = FaultyNLIDB(model, injector)
        with pytest.raises(InjectedFault):
            faulty.pipeline("full").run(model.context(QUESTION, make_table()))
        ctx = model.context(QUESTION, make_table(), mode="context_free")
        faulty.pipeline("context_free").run(ctx)
        assert ctx.artifacts["translation"].query is not None
