"""Unit tests for the stage-graph executor itself.

Toy stages only — no models — so sequencing, trace recording, error
labelling, and middleware composition are pinned down in isolation.
The real annotate → translate → recover graphs are covered by
``test_nlidb_pipeline.py`` and ``test_service_traces.py``.
"""

import pytest

from repro.errors import DeadlineExceeded, ReproError, ServingError
from repro.pipeline import (
    OUTCOME_CACHED,
    OUTCOME_ERROR,
    OUTCOME_OK,
    Deadline,
    FaultMiddleware,
    Pipeline,
    PipelineContext,
    StageRecord,
    StageTrace,
    artifact_cache_middleware,
    deadline_middleware,
)


class Emit:
    """Toy stage: writes ``value`` under ``key``, optionally raising."""

    def __init__(self, name, key=None, value=None,
                 error: Exception | None = None):
        self.name = name
        if key is not None:
            self.provides = (key,)
        self.key = key
        self.value = value
        self.error = error
        self.runs = 0

    def run(self, ctx):
        self.runs += 1
        if self.error is not None:
            raise self.error
        if self.key is not None:
            ctx.artifacts[self.key] = self.value


def ctx_for(**kwargs):
    return PipelineContext(question_tokens=["q"], **kwargs)


class TestPipelineExecution:
    def test_stages_run_in_order_and_share_artifacts(self):
        order = []

        class Probe:
            name = "probe"

            def run(self, ctx):
                order.append(ctx.artifacts["a"])

        pipe = Pipeline((Emit("first", "a", 1), Probe()))
        ctx = pipe.run(ctx_for())
        assert order == [1]
        assert ctx.trace.stage_names() == ["first", "probe"]
        assert all(r.outcome == OUTCOME_OK for r in ctx.trace)
        assert all(r.wall_s >= 0.0 for r in ctx.trace)

    def test_attempt_and_mode_stamped_into_records(self):
        pipe = Pipeline((Emit("s", "a", 1),))
        ctx = pipe.run(ctx_for(mode="context_free", attempt=3))
        record = ctx.trace.last("s")
        assert record.mode == "context_free" and record.attempt == 3

    def test_failing_stage_is_recorded_and_labelled(self):
        boom = ServingError("boom")
        pipe = Pipeline((Emit("good", "a", 1),
                         Emit("bad", error=boom),
                         Emit("never", "b", 2)))
        ctx = ctx_for()
        with pytest.raises(ServingError) as err:
            pipe.run(ctx)
        assert err.value.stage == "bad"
        assert ctx.trace.stage_names() == ["good", "bad"]  # partial trace
        record = ctx.trace.last("bad")
        assert record.outcome == OUTCOME_ERROR
        assert record.error == "ServingError" and record.message == "boom"

    def test_pre_labelled_error_stage_is_preserved(self):
        inner = ServingError("deep failure", stage="inner.detail")
        pipe = Pipeline((Emit("outer", error=inner),))
        with pytest.raises(ServingError) as err:
            pipe.run(ctx_for())
        assert err.value.stage == "inner.detail"

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Pipeline((Emit("s", "a", 1), Emit("s", "b", 2)))

    def test_non_stage_rejected(self):
        with pytest.raises(ValueError, match="Stage protocol"):
            Pipeline((object(),))

    def test_note_attaches_detail_to_current_record(self):
        class Noisy:
            name = "noisy"

            def run(self, ctx):
                ctx.note(strategy="linear", pairs=2)

        ctx = Pipeline((Noisy(),)).run(ctx_for())
        assert ctx.trace.last("noisy").detail == {"strategy": "linear",
                                                  "pairs": 2}
        ctx.note(ignored=True)  # outside any stage: a no-op
        assert "ignored" not in ctx.trace.last("noisy").detail

    def test_nested_pipeline_shares_trace_and_restores_record(self):
        inner = Pipeline((Emit("outer.sub", "a", 1),))

        class Composite:
            name = "outer"
            provides = ("a",)

            def run(self, ctx):
                inner.run(ctx)
                ctx.note(composed=True)  # must land on *outer*'s record

        ctx = Pipeline((Composite(),)).run(ctx_for())
        assert ctx.trace.stage_names() == ["outer", "outer.sub"]
        assert ctx.trace.last("outer").detail == {"composed": True}
        # The composite's wall time covers its sub-stages.
        assert ctx.trace.last("outer").wall_s \
            >= ctx.trace.last("outer.sub").wall_s


class TestMiddleware:
    def test_onion_order_first_listed_outermost(self):
        events = []

        def mw(tag):
            def middleware(stage, ctx, call_next):
                events.append(f"{tag}>{stage.name}")
                call_next()
                events.append(f"{tag}<{stage.name}")
            return middleware

        pipe = Pipeline((Emit("s", "a", 1),), middleware=(mw("A"), mw("B")))
        pipe.run(ctx_for())
        assert events == ["A>s", "B>s", "B<s", "A<s"]

    def test_with_middleware_prepends_outermost(self):
        events = []

        def mw(tag):
            def middleware(stage, ctx, call_next):
                events.append(tag)
                call_next()
            return middleware

        base = Pipeline((Emit("s", "a", 1),), middleware=(mw("inner"),))
        wrapped = base.with_middleware(mw("outer"))
        wrapped.run(ctx_for())
        assert events == ["outer", "inner"]
        assert base.middleware != wrapped.middleware  # base untouched

    def test_deadline_middleware_refuses_expired_budget(self):
        stage = Emit("translate", "a", 1)
        pipe = Pipeline((stage,), middleware=(deadline_middleware,))
        ctx = ctx_for(deadline=Deadline(0.0))
        with pytest.raises(DeadlineExceeded) as err:
            pipe.run(ctx)
        assert err.value.stage == "translate"
        assert stage.runs == 0  # refused before entry
        record = ctx.trace.last("translate")
        assert record.outcome == OUTCOME_ERROR
        assert record.error == "DeadlineExceeded"

    def test_deadline_middleware_noop_without_deadline(self):
        pipe = Pipeline((Emit("s", "a", 1),), middleware=(deadline_middleware,))
        ctx = pipe.run(ctx_for())
        assert ctx.trace.last("s").outcome == OUTCOME_OK

    def test_fault_middleware_passes_stage_and_mode(self):
        seen = []

        class Injector:
            def before(self, stage, mode=None):
                seen.append((stage, mode))
                if stage == "bad":
                    raise ServingError("injected", stage=stage,
                                      retryable=True)

        pipe = Pipeline((Emit("good", "a", 1), Emit("bad", "b", 2)),
                        middleware=(FaultMiddleware(Injector()),))
        ctx = ctx_for(mode="context_free")
        with pytest.raises(ServingError):
            pipe.run(ctx)
        assert seen == [("good", "context_free"), ("bad", "context_free")]
        assert ctx.trace.last("bad").outcome == OUTCOME_ERROR

    def test_artifact_cache_skips_satisfied_stage(self):
        stage = Emit("s", "a", 1)
        pipe = Pipeline((stage,), middleware=(artifact_cache_middleware,))
        ctx = pipe.run(ctx_for(artifacts={"a": 99}))
        assert stage.runs == 0
        assert ctx.artifacts["a"] == 99  # pre-seeded value untouched
        record = ctx.trace.last("s")
        assert record.outcome == OUTCOME_CACHED and record.cached

    def test_artifact_cache_runs_unsatisfied_stage(self):
        stage = Emit("s", "a", 1)
        pipe = Pipeline((stage,), middleware=(artifact_cache_middleware,))
        ctx = pipe.run(ctx_for())
        assert stage.runs == 1
        assert ctx.trace.last("s").outcome == OUTCOME_OK


class TestStageTrace:
    def test_sequence_protocol_and_slicing(self):
        trace = StageTrace()
        assert not trace and len(trace) == 0
        trace.append(StageRecord(stage="a"))
        trace.append(StageRecord(stage="b"))
        assert trace and len(trace) == 2
        assert trace[0].stage == "a"
        assert [r.stage for r in trace[1:]] == ["b"]
        assert trace.last("missing") is None

    def test_record_to_dict_shapes(self):
        ok = StageRecord(stage="annotate", wall_s=0.5)
        payload = ok.to_dict()
        assert payload["stage"] == "annotate"
        assert payload["outcome"] == OUTCOME_OK
        assert "error" not in payload and "detail" not in payload
        bad = StageRecord(stage="x", outcome=OUTCOME_ERROR,
                          error="ReproError", message="nope",
                          detail={"k": 1})
        payload = bad.to_dict()
        assert payload["error"] == "ReproError"
        assert payload["message"] == "nope"
        assert payload["detail"] == {"k": 1}

    def test_executor_labels_errors_without_stage_attribute(self):
        # Core errors (ModelError, AnnotationError…) don't predefine
        # ``stage``; the executor must attach it dynamically.
        err = ReproError("x")
        assert getattr(err, "stage", None) is None
        pipe = Pipeline((Emit("s", error=err),))
        with pytest.raises(ReproError):
            pipe.run(ctx_for())
        assert err.stage == "s"
