"""Every served request carries a non-empty per-stage trace.

One test per degradation-ladder rung (ok, cached, degraded, failed,
breaker short-circuit, deadline refusal, retried) plus the malformed-
batch-item path — the acceptance surface of the stage-graph refactor.
Stub translator throughout: milliseconds, no training.
"""

import json

import pytest

from repro.core import NLIDB, NLIDBConfig
from repro.pipeline import (
    OUTCOME_CACHED,
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_SKIPPED,
)
from repro.serving import (
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    FaultyNLIDB,
    ResiliencePolicy,
    TranslationService,
)
from repro.sqlengine import Column, DataType, Table
from repro.text import WordEmbeddings

EMB = WordEmbeddings(dim=16, seed=0)

QUESTION = "which film has director tarkovsky ?"


class StubTranslator:
    def __init__(self):
        class _Config:
            beam_width = 5
        self.config = _Config()

    def translate(self, source, header_tokens, extra_symbols=(),
                  beam_width=None):
        return ["select", "g1"]


def make_table(i=0):
    return Table(f"films_{i}", [Column("film"), Column("director"),
                                Column("year", DataType.REAL)],
                 [(f"solaris_{i}", "tarkovsky", 1972 + i),
                  (f"stalker_{i}", "tarkovsky", 1979 + i)])


def make_service(specs=(), policy=None, breaker=None):
    model = NLIDB(EMB, NLIDBConfig(), translator=StubTranslator())
    model._fitted = True  # annotator runs matcher-only when untrained
    if specs:
        model = FaultyNLIDB(model, FaultInjector(list(specs)))
    return TranslationService(
        model, policy=policy or ResiliencePolicy(backoff_base_s=0.0),
        breaker=breaker)


def stages_of(result):
    return [record.stage for record in result.trace]


class TestTracePerRung:
    def test_ok_result_trace(self):
        service = make_service()
        result = service.translate(QUESTION, make_table())
        assert result.status == "ok"
        assert stages_of(result) == ["annotate", "annotate.values",
                                     "annotate.columns", "annotate.resolve",
                                     "annotate.symbols", "translate",
                                     "recover"]
        assert all(r.outcome == OUTCOME_OK for r in result.trace)
        assert all(r.mode == "full" for r in result.trace)
        json.dumps(result.to_dict())  # trace rides in the JSON view

    def test_cache_hit_trace(self):
        service = make_service()
        table = make_table()
        service.translate(QUESTION, table)
        hit = service.translate(QUESTION, table)
        assert hit.cached
        assert len(hit.trace) == 1
        record = hit.trace[0]
        assert record.stage == "cache"
        assert record.outcome == OUTCOME_CACHED and record.cached

    def test_degraded_result_trace(self):
        service = make_service(
            [FaultSpec(stage="annotate", kind="permanent", mode="full")])
        result = service.translate(QUESTION, make_table())
        assert result.status == "degraded"
        failed_full = [r for r in result.trace if r.mode == "full"]
        assert failed_full and failed_full[-1].outcome == OUTCOME_ERROR
        assert failed_full[-1].error == "InjectedFault"
        degraded = [r for r in result.trace if r.mode == "context_free"]
        assert [r.stage for r in degraded][:1] == ["annotate"]
        assert all(r.outcome == OUTCOME_OK for r in degraded)
        # Degraded-rung timings keep their prefix, as before.
        assert {"degraded.annotate", "degraded.translate",
                "degraded.recover"} <= set(result.timings)

    def test_failed_result_trace(self):
        service = make_service(
            [FaultSpec(stage="recover", kind="permanent")],
            policy=ResiliencePolicy(backoff_base_s=0.0, degradation=False))
        result = service.translate(QUESTION, make_table())
        assert result.status == "failed"
        assert result.trace  # non-empty even with no rung completing
        assert result.trace[-1].stage == "recover"
        assert result.trace[-1].outcome == OUTCOME_ERROR

    def test_breaker_short_circuit_trace(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=3600.0)
        service = make_service(
            [FaultSpec(stage="annotate", kind="permanent", mode="full")],
            breaker=breaker)
        service.translate(QUESTION, make_table(0))  # trips the breaker
        result = service.translate(QUESTION, make_table(1))
        assert service.metrics.counter("breaker_short_circuits") == 1
        skip = result.trace[0]
        assert skip.stage == "full" and skip.outcome == OUTCOME_SKIPPED
        assert skip.detail["reason"] == "circuit breaker open"
        # The degraded rung still ran after the skip record.
        assert result.status == "degraded"
        assert any(r.mode == "context_free" for r in result.trace)

    def test_deadline_refusal_trace(self):
        service = make_service(
            policy=ResiliencePolicy(deadline_s=0.0, backoff_base_s=0.0))
        result = service.translate(QUESTION, make_table())
        assert result.status == "failed"
        assert result.error["type"] == "DeadlineExceeded"
        refused = result.trace[-1]
        assert refused.stage == "annotate"
        assert refused.outcome == OUTCOME_ERROR
        assert refused.error == "DeadlineExceeded"
        # Refused stages never ran, so they must not feed the timings
        # or the latency histograms (the pre-refactor behaviour).
        assert "annotate" not in result.timings
        assert "annotate" not in service.stats()["histograms"]
        assert service.metrics.counter("deadline_exceeded") == 1

    def test_retry_attempts_accumulate_in_one_trace(self):
        service = make_service(
            [FaultSpec(stage="translate", kind="transient", count=1)])
        result = service.translate(QUESTION, make_table())
        assert result.status == "ok" and result.attempts == 2
        failed = [r for r in result.trace
                  if r.stage == "translate" and r.outcome == OUTCOME_ERROR]
        assert len(failed) == 1 and failed[0].attempt == 1
        ok = [r for r in result.trace
              if r.stage == "translate" and r.outcome == OUTCOME_OK]
        assert len(ok) == 1 and ok[0].attempt == 2
        # Both attempts annotated: the retry recomputed from scratch.
        assert len([r for r in result.trace if r.stage == "annotate"]) == 2
        assert service.metrics.counter("retries") == 1

    def test_bad_batch_item_gets_synthetic_trace(self):
        service = make_service()
        results = service.translate_batch([(QUESTION, make_table()),
                                           "junk"])
        bad = results[1]
        assert bad.status == "failed"
        assert len(bad.trace) == 1
        assert bad.trace[0].stage == "request"
        assert bad.trace[0].outcome == OUTCOME_ERROR
        assert bad.trace[0].error == "ReproError"


class TestTraceDerivedMetrics:
    def test_substage_histograms_are_recorded(self):
        service = make_service()
        service.translate(QUESTION, make_table())
        histograms = service.stats()["histograms"]
        for name in ("annotate", "annotate.values", "annotate.columns",
                     "annotate.resolve", "annotate.symbols", "translate",
                     "recover"):
            assert histograms[name]["count"] == 1
        # Sub-stages stay out of the envelope's top-level timings.
        result = service.translate(QUESTION, make_table(1))
        assert set(result.timings) == {"annotate", "translate", "recover"}

    def test_stats_cache_hit_rate(self):
        service = make_service()
        table = make_table()
        service.translate(QUESTION, table)
        service.translate(QUESTION, table)
        cache = service.stats()["cache"]
        assert cache["hits"] == 1 and cache["misses"] == 1
        assert cache["hit_rate"] == pytest.approx(0.5)
