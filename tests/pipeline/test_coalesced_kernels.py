"""Parity of the cross-request (coalesced) kernels with their
per-request references.

The micro-batching scheduler only earns its keep if fusing several
requests into one kernel call is *invisible* in the outputs: the union
batch shares row-sliced gemms (cell gates, attention query, output
projection, the classifier head) while every reduction whose shape is
per-request — attention softmax over exactly that request's memory,
similarity features, top-k pruning — stays grouped, so results are
bit-identical, not merely close.  These tests pin that equivalence at
each layer: the step-merging primitive, grouped additive attention,
the multi-schema column scorer, and the multi-request lockstep
decoder.
"""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import AdditiveAttention, Tensor, merge_steps, no_grad
from repro.nn.rnn import pack_steps


def _tensor_seq(rng, length, feat):
    return [Tensor(rng.standard_normal((1, feat))) for _ in range(length)]


class TestMergeSteps:
    def test_pad_to_aligns_groups_on_global_time(self):
        rng = np.random.default_rng(0)
        steps, lengths = pack_steps([_tensor_seq(rng, 2, 3)], pad_to=5)
        assert len(steps) == 5
        assert lengths.tolist() == [2]
        assert np.array_equal(steps[4].numpy(), np.zeros((1, 3)))

    def test_pad_to_shorter_than_longest_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ShapeError):
            pack_steps([_tensor_seq(rng, 4, 3)], pad_to=2)

    def test_merge_concatenates_rows_and_zero_pads_short_groups(self):
        rng = np.random.default_rng(1)
        a_steps, a_len = pack_steps(
            [_tensor_seq(rng, 3, 4), _tensor_seq(rng, 2, 4)])
        b_steps, b_len = pack_steps([_tensor_seq(rng, 5, 4)])
        merged, lengths, offsets = merge_steps(
            [(a_steps, a_len), (b_steps, b_len)])
        assert len(merged) == 5           # max step count across groups
        assert lengths.tolist() == [3, 2, 5]
        assert offsets.tolist() == [0, 2]
        # Step 0 stacks group A's rows above group B's.
        assert np.array_equal(merged[0][:2], a_steps[0].numpy())
        assert np.array_equal(merged[0][2:], b_steps[0].numpy())
        # Past group A's own step count its rows are zero padding.
        assert np.array_equal(merged[4][:2], np.zeros((2, 4)))
        assert np.array_equal(merged[4][2:], b_steps[4].numpy())

    def test_merge_rejects_degenerate_input(self):
        with pytest.raises(ShapeError):
            merge_steps([])
        with pytest.raises(ShapeError):
            merge_steps([([], np.array([], dtype=np.intp))])


class TestGroupedAttention:
    def _run(self, shapes):
        rng = np.random.default_rng(7)
        attention = AdditiveAttention(memory_dim=6, query_dim=5,
                                      attention_dim=8, rng=rng)
        memories = [Tensor(rng.standard_normal((t, 6))) for t, _b in shapes]
        queries_np = rng.standard_normal((sum(b for _t, b in shapes), 5))
        slices, row = [], 0
        for _t, b in shapes:
            slices.append(slice(row, row + b))
            row += b
        with no_grad():
            contexts, weights = attention.forward_grouped(
                memories, Tensor(queries_np), slices)
            refs = [attention.forward_batch(memory, Tensor(queries_np[rows]))
                    for memory, rows in zip(memories, slices)]
        return contexts.numpy(), weights, slices, refs

    def test_forward_grouped_matches_per_group_forward_batch(self):
        # Groups of ≥ 2 queries: BLAS runs the union and the per-group
        # query projections through the same gemm kernel, so row slices
        # of the union match stand-alone calls *bitwise*.
        union, weights, slices, refs = self._run([(4, 2), (7, 3), (3, 4)])
        for rows, w, (ref_context, ref_weights) in zip(slices, weights,
                                                       refs):
            assert np.array_equal(union[rows], ref_context.numpy())
            assert np.array_equal(w.numpy(), ref_weights.numpy())

    def test_singleton_group_within_one_ulp(self):
        # A stand-alone single-query call goes through BLAS's M=1
        # special case (gemv), which may round differently from the
        # blocked gemm the union uses — the results agree to 1 ulp but
        # not necessarily bitwise.  Pinning this documents the boundary
        # of the bit-parity guarantee.
        union, weights, slices, refs = self._run([(4, 2), (3, 1)])
        rows, (ref_context, _w) = slices[1], refs[1]
        np.testing.assert_allclose(union[rows], ref_context.numpy(),
                                   rtol=1e-13, atol=1e-15)


@pytest.fixture(scope="module")
def cohort_examples(corpus):
    """A handful of dev pairs spanning several distinct tables."""
    picked, seen = [], set()
    for example in corpus:
        if example.table.name not in seen:
            picked.append(example)
            seen.add(example.table.name)
        if len(picked) == 4:
            break
    assert len(picked) == 4, "corpus should span >= 4 tables"
    return picked


class TestColumnScorerMulti:
    def test_multi_schema_scoring_bit_equal_to_solo(self, nlidb,
                                                    cohort_examples):
        classifier = nlidb.annotator.column_classifier
        items = []
        for example in cohort_examples:
            schema, _status = nlidb.annotator.schema_encoding(example.table)
            items.append((example.question_tokens,
                          schema.encoded_subset(
                              [c.name for c in example.table.columns])))
        batched = classifier.score_columns_multi(items)
        assert len(batched) == len(items)
        for (question, encoded), probs in zip(items, batched):
            solo = classifier.score_columns(question, encoded=encoded)
            assert probs.shape == solo.shape
            assert np.array_equal(probs, solo)  # bit-equal, not approx


class TestLockstepManyDecoder:
    def _decode_request(self, nlidb, example):
        annotation = nlidb.annotate(example.question_tokens, example.table)
        source = annotation.annotated_tokens(
            append=nlidb.config.column_name_appending,
            header_encoding=nlidb.config.header_encoding)
        return {"source": source,
                "header_tokens": nlidb.header_tokens(example.table),
                "extra_symbols": nlidb._symbols(annotation)}

    def test_translate_many_matches_per_request_translate(
            self, nlidb, cohort_examples):
        requests = [self._decode_request(nlidb, example)
                    for example in cohort_examples]
        batched = nlidb.translator.translate_many(requests)
        assert nlidb.translator.last_decode["path"] == "lockstep_many"
        assert nlidb.translator.last_decode["lanes"] == len(requests)
        for request, predicted in zip(requests, batched):
            solo = nlidb.translator.translate(
                request["source"], request["header_tokens"],
                request["extra_symbols"])
            assert predicted == solo  # identical token sequences

    def test_single_request_falls_back_to_translate(self, nlidb,
                                                    cohort_examples):
        request = self._decode_request(nlidb, cohort_examples[0])
        [predicted] = nlidb.translator.translate_many([request])
        assert nlidb.translator.last_decode["path"] == "lockstep"
        solo = nlidb.translator.translate(
            request["source"], request["header_tokens"],
            request["extra_symbols"])
        assert predicted == solo


class TestCohortArtifacts:
    def test_cohort_matches_sequential_pipeline(self, nlidb,
                                                cohort_examples):
        requests = [(list(e.question_tokens), e.table, None)
                    for e in cohort_examples]
        lanes, stats = nlidb.cohort_artifacts(requests)
        assert stats["lanes"] == len(requests)
        assert stats["failed"] == 0
        for example, lane in zip(cohort_examples, lanes):
            reference = nlidb.translate(example.question_tokens,
                                        example.table)
            assert lane["source"] == reference.annotated_tokens
            assert lane["predicted"] == reference.predicted_annotated_sql
            recovered = nlidb.recover(lane["source"], lane["predicted"],
                                      lane["annotation"])
            assert recovered.result_equal(reference)

    def test_failed_lane_is_none_not_poisonous(self, nlidb,
                                               cohort_examples):
        good = cohort_examples[0]
        requests = [(list(good.question_tokens), good.table, None),
                    ([], good.table, None),  # empty question -> ModelError
                    (list(good.question_tokens), good.table, None)]
        lanes, stats = nlidb.cohort_artifacts(requests)
        assert lanes[1] is None
        assert lanes[0] is not None and lanes[2] is not None
        assert stats["failed"] == 1
