"""Differential guarantee: the stage graph changed *how* the pipeline
runs, not *what* it computes.

``legacy_translate`` re-composes the three staged methods exactly the
way the pre-refactor ``NLIDB.translate`` did (direct calls, no
executor, no middleware); its SQL must be byte-identical to the
pipeline path — directly and through the serving layer — on the full
session corpus (≥ 50 (question, table) pairs over ≥ 3 domains).
"""

from repro.serving import TranslationService


def legacy_translate(nlidb, question_tokens, table):
    """The pre-stage-graph composition of annotate→translate→recover."""
    annotation = nlidb.annotator.annotate(question_tokens, table)
    source, predicted = nlidb.predict_annotated(annotation)
    return nlidb.recover(source, predicted, annotation)


def sql_of(translation):
    return translation.query.to_sql() if translation.query is not None \
        else f"<failed: {translation.error}>"


class TestPipelineEquivalence:
    def test_corpus_is_big_enough(self, corpus):
        assert len(corpus) >= 50
        assert len({e.table.name for e in corpus}) >= 3

    def test_full_path_sql_byte_identical(self, nlidb, corpus,
                                          direct_translations):
        # direct_translations came from nlidb.translate (the pipeline);
        # compare byte-for-byte against the legacy composition.
        mismatches = []
        for example, direct in zip(corpus, direct_translations):
            legacy = legacy_translate(nlidb, example.question_tokens,
                                      example.table)
            if sql_of(legacy) != sql_of(direct):
                mismatches.append((example.question_tokens,
                                   sql_of(legacy), sql_of(direct)))
        assert not mismatches, mismatches[:5]

    def test_service_path_sql_byte_identical(self, nlidb, corpus,
                                             direct_translations):
        service = TranslationService(nlidb, cache_size=256)
        for example, direct in zip(corpus, direct_translations):
            result = service.translate(example.question_tokens,
                                       example.table)
            assert result.status in ("ok", "failed")  # never degraded here
            served_sql = result.sql if result.sql is not None \
                else f"<failed: {result.translation.error}>"
            assert served_sql == sql_of(direct)
        assert service.metrics.counter("degraded_fallbacks") == 0

    def test_every_direct_translation_carries_a_trace(self,
                                                      direct_translations):
        for translation in direct_translations:
            assert translation.trace
            names = [record.stage for record in translation.trace]
            assert names[0] == "annotate"
            assert names[-2:] == ["translate", "recover"]
