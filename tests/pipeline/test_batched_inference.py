"""Differential guarantee for the vectorized inference fast path.

The batched kernels changed *how* inference computes, not *what*: the
lockstep column scorer must match K sequential ``predict_proba`` calls
and the lockstep beam search must pick byte-identical SQL to the
per-beam reference loop — over the full session corpus (≥ 50
(question, table) pairs spanning ≥ 3 domains).  A graph-construction
spy also pins down that neither fast path builds autodiff state under
``no_grad``.
"""

import numpy as np
import pytest

from repro.nn import Tensor, allocation_events
from repro.text import tokenize


def sql_of(translation):
    return translation.query.to_sql() if translation.query is not None \
        else f"<failed: {translation.error}>"


class TestBatchedColumnScoring:
    def test_matches_sequential_predict_proba(self, nlidb, corpus):
        classifier = nlidb.annotator.column_classifier
        worst = 0.0
        checked = 0
        for example in corpus[:12]:
            question = example.question_tokens
            columns = [tokenize(c) for c in example.table.column_names]
            batched = classifier.score_columns(question, columns)
            sequential = np.array([classifier.predict_proba(question, col)
                                   for col in columns])
            worst = max(worst, float(np.abs(batched - sequential).max()))
            checked += len(columns)
        assert checked >= 30
        assert worst <= 1e-6, worst

    def test_cached_encoding_path_matches(self, nlidb, corpus):
        classifier = nlidb.annotator.column_classifier
        example = corpus[0]
        question = example.question_tokens
        columns = [tokenize(c) for c in example.table.column_names]
        encoded = classifier.encode_columns(columns)
        from_cache = classifier.score_columns(question, encoded=encoded)
        fresh = classifier.score_columns(question, columns)
        np.testing.assert_allclose(from_cache, fresh, atol=1e-12)

    def test_subset_of_cached_encoding_matches(self, nlidb, corpus):
        classifier = nlidb.annotator.column_classifier
        example = corpus[0]
        question = example.question_tokens
        columns = [tokenize(c) for c in example.table.column_names]
        encoded = classifier.encode_columns(columns)
        picked = list(range(len(columns)))[::2]
        subset_scores = classifier.score_columns(
            question, encoded=encoded.subset(picked))
        full_scores = classifier.score_columns(question, columns)
        # The float32 fast path's BLAS reductions are shape-dependent,
        # so a sub-batch can differ from the full batch by ~1 ulp.
        np.testing.assert_allclose(subset_scores, full_scores[picked],
                                   atol=1e-6)


class TestLockstepBeamSearch:
    def test_corpus_is_big_enough(self, corpus):
        assert len(corpus) >= 50
        assert len({e.table.name for e in corpus}) >= 3

    def test_sql_byte_identical_to_per_beam(self, nlidb, corpus,
                                            direct_translations):
        # direct_translations ran with the default (lockstep) decoder;
        # re-run the corpus through the per-beam reference loop.
        config = nlidb.translator.config
        assert config.lockstep_beam  # the default fast path
        mismatches = []
        try:
            config.lockstep_beam = False
            for example, direct in zip(corpus, direct_translations):
                reference = nlidb.translate(example.question_tokens,
                                            example.table)
                assert nlidb.translator.last_decode["path"] == "per_beam"
                if sql_of(reference) != sql_of(direct):
                    mismatches.append((example.question_tokens,
                                       sql_of(reference), sql_of(direct)))
        finally:
            config.lockstep_beam = True
        assert not mismatches, mismatches[:5]

    def test_wider_beam_still_identical(self, nlidb, corpus):
        for example in corpus[:8]:
            annotation = nlidb.annotate(example.question_tokens,
                                        example.table)
            source = annotation.annotated_tokens()
            headers = nlidb.header_tokens(example.table)
            symbols = nlidb._symbols(annotation)
            fast = nlidb.translator.translate(source, headers, symbols,
                                              beam_width=5, lockstep=True)
            slow = nlidb.translator.translate(source, headers, symbols,
                                              beam_width=5, lockstep=False)
            assert fast == slow

    def test_last_decode_reports_the_fast_path(self, nlidb, corpus):
        example = corpus[0]
        nlidb.translate(example.question_tokens, example.table)
        decode = nlidb.translator.last_decode
        assert decode["path"] == "lockstep"
        assert decode["steps"] >= 1
        assert decode["candidates"] > 0


class TestTraceVisibility:
    def test_second_request_hits_schema_cache(self, nlidb, corpus):
        nlidb.annotator._schema_cache.clear()
        example = corpus[0]

        def column_detail(translation):
            for record in translation.trace:
                if record.stage == "annotate.columns":
                    return record.detail
            raise AssertionError("no annotate.columns record")

        first = column_detail(nlidb.translate(example.question_tokens,
                                              example.table))
        again = column_detail(nlidb.translate(
            list(example.question_tokens) + ["please"], example.table))
        assert first["schema_cache"] == "miss"
        assert again["schema_cache"] == "hit"
        assert first["batch"] >= 0

    def test_translate_stage_reports_decode_path(self, nlidb, corpus):
        example = corpus[0]
        translation = nlidb.translate(example.question_tokens, example.table)
        detail = next(r.detail for r in translation.trace
                      if r.stage == "translate")
        assert detail["decode_path"] == "lockstep"
        assert detail["decode_steps"] >= 1
        assert detail["schema_encoding"] in ("hit", "none")


class TestNoGraphUnderNoGrad:
    @pytest.fixture()
    def graph_spy(self, monkeypatch):
        """Record every Tensor that joins an autodiff graph."""
        recorded = []
        original = Tensor._make

        def spy(self, data, parents, backward):
            out = original(self, data, parents, backward)
            if out._parents:
                recorded.append(out)
            return out

        monkeypatch.setattr(Tensor, "_make", spy)
        return recorded

    def test_score_columns_builds_no_graph(self, nlidb, corpus, graph_spy):
        example = corpus[0]
        columns = [tokenize(c) for c in example.table.column_names]
        nlidb.annotator.column_classifier.score_columns(
            example.question_tokens, columns)
        assert not graph_spy

    def test_predict_proba_builds_no_graph(self, nlidb, corpus, graph_spy):
        example = corpus[0]
        column = tokenize(example.table.column_names[0])
        nlidb.annotator.column_classifier.predict_proba(
            example.question_tokens, column)
        assert not graph_spy

    def test_lockstep_translate_builds_no_graph(self, nlidb, corpus,
                                                graph_spy):
        # Annotation legitimately builds graphs (compute_influence takes
        # input gradients), so scope the assertion to the decoder.
        example = corpus[0]
        annotation = nlidb.annotate(example.question_tokens, example.table)
        graph_spy.clear()
        nlidb.predict_annotated(annotation)
        assert not graph_spy

    def test_spy_itself_detects_graphs(self, graph_spy):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * x).sum().backward()
        assert graph_spy


class TestAllocationBudget:
    """The arena decoder's allocation contract, as a regression test.

    The no-graph spy above proves the fast paths build no *autodiff*
    state; these pin the stronger property the arena kernels bought:
    a warm decode performs zero ``Tensor`` constructions at all and
    never grows an arena slab — every intermediate lands in a slab
    preallocated by the warmup request.
    """

    @staticmethod
    def _request(nlidb, example):
        # Annotation legitimately builds graphs (influence gradients),
        # so assemble the translator request outside the measured span.
        annotation = nlidb.annotate(example.question_tokens, example.table)
        return (annotation.annotated_tokens(),
                nlidb.header_tokens(example.table),
                nlidb._symbols(annotation))

    def test_warm_decode_constructs_zero_tensors(self, nlidb, corpus):
        assert nlidb.translator.config.arena_inference
        source, headers, symbols = self._request(nlidb, corpus[0])
        nlidb.translator.translate(source, headers, symbols)  # warm slabs
        before = allocation_events()
        nlidb.translator.translate(source, headers, symbols)
        assert allocation_events() - before == 0
        assert nlidb.translator.last_decode["arena"] is True
        assert nlidb.translator.last_decode["dtype"] == "float32"

    def test_warm_decode_never_grows_arena(self, nlidb, corpus):
        arena = nlidb.translator.arena
        requests = [self._request(nlidb, e) for e in corpus[:4]]
        for request in requests:
            nlidb.translator.translate(*request)  # size slabs
        arena.reset()
        for request in requests:
            nlidb.translator.translate(*request)
        assert arena.grows == 0
        assert arena.takes > 0  # the decoder really ran through slabs

    def test_tensor_mode_still_allocates(self, nlidb, corpus):
        # Differential control: with the arena off, the same decode
        # goes back to building Tensors — proving the zero above is the
        # arena's doing, not a measurement artifact.
        config = nlidb.translator.config
        request = self._request(nlidb, corpus[0])
        try:
            config.arena_inference = False
            nlidb.translator.translate(*request)
            before = allocation_events()
            nlidb.translator.translate(*request)
            assert allocation_events() - before > 100
            assert nlidb.translator.last_decode["arena"] is False
            assert nlidb.translator.last_decode["dtype"] == "float64"
        finally:
            config.arena_inference = True

    def test_warm_classifier_scoring_is_allocation_free(self, nlidb, corpus):
        classifier = nlidb.annotator.column_classifier
        assert classifier.arena_inference
        example = corpus[0]
        columns = [tokenize(c) for c in example.table.column_names]
        encoded = classifier.encode_columns(columns)
        classifier.score_columns(example.question_tokens, encoded=encoded)
        classifier.arena.reset()
        before = allocation_events()
        classifier.score_columns(example.question_tokens, encoded=encoded)
        assert allocation_events() - before == 0
        assert classifier.arena.grows == 0
