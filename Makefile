# Developer entry points.  `make check` is the one-command gate: the
# tier-1 test suite, the fault-matrix resilience suite, and the serving
# smoke benchmark.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test test-faults test-pipeline test-eval lint bench-serving \
	bench-inference bench-scheduler bench-cluster bench-robustness \
	bench-accuracy bench-smoke bench

# Tier-1: the full unit/integration/property suite.
test:
	$(PYTHON) -m pytest -x -q

# Fault matrix: every resilience policy against injected failures
# (stage x transient/permanent x breaker open/closed).  Included in
# `test` too; kept addressable so CI and `check` can gate on it
# explicitly.
test-faults:
	$(PYTHON) -m pytest tests/serving/test_faults.py \
		tests/serving/test_resilience.py -q

# Stage-graph executor suite: the pipeline package, the NLIDB stage
# decomposition, per-rung trace coverage, and the pre/post-refactor
# SQL differential.
test-pipeline:
	$(PYTHON) -m pytest tests/pipeline -q

# Robustness harness suite: attack generators + determinism contract,
# executor-backed validity gate, few-shot transfer mechanics, report
# assembly, and the hypothesis properties for the Section IV-C
# influence span locator.
test-eval:
	$(PYTHON) -m pytest tests/eval -q

# Style gate (requires ruff; CI installs it).
lint:
	ruff check src tests benchmarks

# Serving smoke benchmark: cold vs warm vs batched latency plus the
# degraded-ladder availability check, as JSON, at the tiny smoke scale.
bench-serving:
	REPRO_BENCH_SCALE=smoke $(PYTHON) -m pytest benchmarks/bench_serving.py -q

# Vectorized-inference benchmark: batched column scoring, lockstep vs
# per-beam decoding, the float32 arena-vs-tensor allocation comparison,
# and schema-cache cold/warm latency.  Writes BENCH_inference.json at
# the repo root; fails if the batched paths are slower than the
# per-item reference.  ARENA=0 runs the end-to-end cells on the float64
# tensor path; QUANT=1 scores the frozen classifier head from int8.
ARENA ?= 1
QUANT ?= 0
bench-inference:
	REPRO_BENCH_SCALE=smoke REPRO_BENCH_ARENA=$(ARENA) \
		REPRO_BENCH_QUANT=$(QUANT) \
		$(PYTHON) -m pytest benchmarks/bench_inference.py -q

# Micro-batching scheduler benchmark: coalesced vs single-request
# dispatch at concurrency 1/8/32, with every request differentially
# checked against the sequential path.  Writes BENCH_scheduler.json
# (QPS + p50/p95 per cell) at the repo root.
bench-scheduler:
	REPRO_BENCH_SCALE=smoke $(PYTHON) -m pytest benchmarks/bench_scheduler.py -q

# Serving-cluster benchmark: 1/2/4-replica fleets under a seeded
# mixed-tenant stream, consistent-hash vs random routing, plus the
# admission-control overload probe.  Writes BENCH_cluster.json (QPS,
# p50/p95/p99, rejection counts, per-replica schema-cache hit rates)
# at the repo root; fails if sharded routing does not beat random on
# schema-cache hit rate.
bench-cluster:
	REPRO_BENCH_SCALE=smoke $(PYTHON) -m pytest benchmarks/bench_cluster.py -q

# Adversarial robustness + few-shot transfer benchmark: clean vs
# attacked accuracy per ladder rung and K-shot curves on held-out
# domains.  Writes the BENCH_robustness.json tracked-metric record at
# the repo root.  PYTHONHASHSEED is pinned because model *training*
# (unlike the seeded attack suite) is sensitive to hash iteration
# order; with it fixed the record reproduces byte-for-byte.
bench-robustness:
	REPRO_BENCH_SCALE=smoke PYTHONHASHSEED=0 \
		$(PYTHON) -m pytest benchmarks/bench_robustness.py -q

# Extended-grammar accuracy benchmark: trains the headline model with
# the extended output grammar on the role-typed corpus and reports
# overall plus per-sketch-family accuracy (filter/count/aggregate/
# range/topn/group_agg/negation/disjunction) and the legacy-subset
# parity section.  Writes the BENCH_accuracy.json tracked-metric
# record at the repo root.  PYTHONHASHSEED pinned for the same reason
# as bench-robustness: training is hash-iteration-order sensitive.
bench-accuracy:
	REPRO_BENCH_SCALE=smoke PYTHONHASHSEED=0 \
		$(PYTHON) -m pytest benchmarks/bench_accuracy.py -q

# CI-friendly alias: the smoke benchmarks — the fastest end-to-end
# exercise of the serving path, the inference fast path, and the
# robustness harness.
bench-smoke: bench-serving bench-inference bench-scheduler bench-cluster \
	bench-robustness bench-accuracy

# Full paper-table benchmark suite (slow; standard scale by default).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

check: test test-pipeline test-faults test-eval bench-serving
