# Developer entry points.  `make check` is the one-command gate: the
# tier-1 test suite plus the serving smoke benchmark.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test bench-serving bench

# Tier-1: the full unit/integration/property suite.
test:
	$(PYTHON) -m pytest -x -q

# Serving smoke benchmark: cold vs warm vs batched latency as JSON,
# with the >=2x warm-speedup assertion, at the tiny smoke scale.
bench-serving:
	REPRO_BENCH_SCALE=smoke $(PYTHON) -m pytest benchmarks/bench_serving.py -q

# Full paper-table benchmark suite (slow; standard scale by default).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

check: test bench-serving
