"""Legacy setup shim: lets ``python setup.py develop`` work offline
(the sandbox has no ``wheel`` package, which PEP 517 editable installs
need).  Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
