"""Quickstart: train an NLIDB on synthetic WikiSQL-style data and ask it
questions.

Run:  python examples/quickstart.py
"""

from repro.core import NLIDB, NLIDBConfig, evaluate
from repro.core.seq2seq.model import Seq2SeqConfig
from repro.data import generate_wikisql_style
from repro.text import WordEmbeddings


def main() -> None:
    # 1. Generate a WikiSQL-style dataset: (question, table, SQL) records
    #    with tables disjoint across splits.
    dataset = generate_wikisql_style(seed=0, train_size=150, dev_size=30,
                                     test_size=0)
    print(f"train={len(dataset.train)} dev={len(dataset.dev)} "
          f"domains={sorted({e.domain for e in dataset.train})}")

    # 2. Train the full pipeline: mention detection (classifier +
    #    adversarial localization), value detection, and the annotated
    #    seq2seq translator.  Budgets here are demo-sized.
    config = NLIDBConfig(classifier_epochs=2, seq2seq_epochs=8,
                         seq2seq=Seq2SeqConfig(hidden=32, attention_dim=32))
    model = NLIDB(WordEmbeddings(dim=32), config)
    model.fit(dataset.train, verbose=True)

    # 3. Translate dev questions and score all three paper metrics.
    predictions = []
    for example in dataset.dev:
        translation = model.translate(example.question_tokens, example.table)
        predictions.append(translation.query)
    result = evaluate(predictions, dataset.dev)
    print("\nDev:", result.as_row())

    # 4. Inspect a few translations end to end.
    print("\nSample translations:")
    for example in dataset.dev[:5]:
        translation = model.translate(example.question_tokens, example.table)
        print(f"  Q: {example.question}")
        print(f"  annotated: {' '.join(translation.annotated_tokens)}")
        predicted = (translation.query.to_sql() if translation.query
                     else f"<recovery failed: {translation.error}>")
        print(f"  SQL: {predicted}")
        print(f"  gold: {example.query.to_sql()}\n")


if __name__ == "__main__":
    main()
