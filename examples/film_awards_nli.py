"""The paper's Figure 1 scenario: querying a film-awards table.

Builds the exact tables from Figure 1, trains on the films/geography
domains, and reproduces the annotated question / annotated SQL / SQL
pipeline for the running examples, including the optional per-column
natural-language metadata (Section II).

Run:  python examples/film_awards_nli.py
"""

from repro.core import NLIDB, NLIDBConfig
from repro.core.seq2seq.model import Seq2SeqConfig
from repro.data import generate_wikisql_style
from repro.sqlengine import Column, DataType, Table, execute
from repro.text import KnowledgeBase, WordEmbeddings


def figure1_tables() -> tuple[Table, Table]:
    films = Table(
        "films",
        [Column("nomination"), Column("actor"), Column("film name"),
         Column("director")],
        [("best actor in a leading role", "piotr adamczyk",
          "chopin desire for love", "jerzy antczak"),
         ("best actor in a supporting role", "levan uchaneishvili",
          "27 stolen kisses", "nana djordjadze")],
    )
    counties = Table(
        "counties",
        [Column("county"), Column("english name"), Column("irish name"),
         Column("population", DataType.REAL),
         Column("irish speakers")],
        [("mayo", "carrowteige", "ceathru thaidhg", 356, "64%"),
         ("galway", "aran islands", "oileain arann", 1225, "79%")],
    )
    return films, counties


def main() -> None:
    films, counties = figure1_tables()

    # Optional database-specific language metadata (Section II): tells
    # the matcher that "how many people live in" can mention Population.
    knowledge = KnowledgeBase()
    knowledge.add("population",
                  mention_phrases=["how many people live in"])

    dataset = generate_wikisql_style(seed=3, train_size=150, dev_size=0,
                                     test_size=0)
    config = NLIDBConfig(classifier_epochs=2, seq2seq_epochs=8,
                         seq2seq=Seq2SeqConfig(hidden=32, attention_dim=32))
    model = NLIDB(WordEmbeddings(dim=32), config, knowledge=knowledge)
    model.fit(dataset.train, verbose=True)

    questions = [
        ("Which film directed by jerzy antczak did piotr adamczyk star in ?",
         films),
        ("How many people live in mayo who have the english name "
         "carrowteige ?", counties),
    ]
    for question, table in questions:
        translation = model.translate(question, table)
        print(f"\nQ: {question}")
        print(f"qᵃ: {' '.join(translation.annotated_tokens)}")
        print(f"sᵃ: {' '.join(translation.predicted_annotated_sql)}")
        if translation.query is None:
            print(f"recovery failed: {translation.error}")
            continue
        print(f"SQL: {translation.query.to_sql()}")
        try:
            print(f"result: {execute(translation.query, table)}")
        except Exception as exc:  # demo output only
            print(f"execution failed: {exc}")


if __name__ == "__main__":
    main()
