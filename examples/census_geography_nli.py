"""Counterfactual values and implicit mentions on a census table.

Exercises two of the paper's five challenges end to end:

* challenge 3 (implicit mentions) — "How many people live in Mayo"
  never names the County column;
* challenge 4 (counterfactual values) — questions about places that are
  NOT in the table still translate to valid SQL (which then simply
  matches no rows).

Run:  python examples/census_geography_nli.py
"""

from repro.core import NLIDB, NLIDBConfig
from repro.core.seq2seq.model import Seq2SeqConfig
from repro.data import generate_wikisql_style
from repro.sqlengine import Column, DataType, Table, execute
from repro.text import WordEmbeddings


def main() -> None:
    census = Table(
        "census",
        [Column("county"), Column("english name"),
         Column("irish name"), Column("population", DataType.REAL),
         Column("area", DataType.REAL)],
        [("mayo", "carrowteige", "ceathru thaidhg", 356, 120),
         ("galway", "aran islands", "oileain arann", 1225, 46),
         ("kerry", "dingle", "daingean", 1720, 85)],
    )

    dataset = generate_wikisql_style(seed=5, train_size=200, dev_size=0,
                                     test_size=0)
    config = NLIDBConfig(classifier_epochs=3, seq2seq_epochs=10,
                         seq2seq=Seq2SeqConfig(hidden=40, attention_dim=40))
    model = NLIDB(WordEmbeddings(dim=32), config)
    model.fit(dataset.train, verbose=True)

    questions = [
        # implicit county mention, in-table value
        "how many people live in mayo who have the english name carrowteige ?",
        # counterfactual: sligo is not in the table
        "what is the population of the place with county sligo ?",
        # aggregate over a numeric column
        "what is the average population when the county is mayo ?",
        # ordering condition
        "which county has a area over 100 ?",
    ]
    for question in questions:
        translation = model.translate(question, census)
        print(f"\nQ: {question}")
        if translation.query is None:
            print(f"  recovery failed: {translation.error}")
            continue
        print(f"  SQL: {translation.query.to_sql()}")
        try:
            print(f"  result: {execute(translation.query, census)}")
        except Exception as exc:  # demo output only
            print(f"  execution failed: {exc}")


if __name__ == "__main__":
    main()
