"""Zero-shot transfer: train on WikiSQL-style domains, query unseen ones.

Demonstrates the paper's central claim — the model separates latent
semantic structure from data-specific components, so it translates
questions against schemas and domains it never saw in training
(Section VII-B).

Run:  python examples/transfer_learning_demo.py
"""

from repro.core import NLIDB, NLIDBConfig, evaluate
from repro.core.seq2seq.model import Seq2SeqConfig
from repro.data import generate_overnight, generate_wikisql_style
from repro.text import WordEmbeddings


def main() -> None:
    # Train only on the WikiSQL-style domains (films, golf, elections…).
    train = generate_wikisql_style(seed=0, train_size=200, dev_size=0,
                                   test_size=0).train
    config = NLIDBConfig(classifier_epochs=3, seq2seq_epochs=10,
                         seq2seq=Seq2SeqConfig(hidden=40, attention_dim=40))
    model = NLIDB(WordEmbeddings(dim=32), config)
    model.fit(train, verbose=True)

    # Evaluate zero-shot on OVERNIGHT-style sub-domains (recipes,
    # restaurants, calendar, housing, basketball) — schemas unseen in
    # training; sketch-incompatible records are discarded as in the paper.
    overnight = generate_overnight(seed=1, per_domain=20)
    print("\nZero-shot transfer (no retraining):")
    for name, examples in overnight.items():
        compatible = [e for e in examples if e.sketch_compatible]
        predictions = [model.translate(e.question_tokens, e.table).query
                       for e in compatible]
        result = evaluate(predictions, compatible)
        print(f"  {name:<12} Acc_qm={result.acc_qm:.1%} "
              f"Acc_ex={result.acc_ex:.1%} (n={result.n})")

    # Show one concrete cross-domain translation.
    example = next(e for e in overnight["recipes"] if e.sketch_compatible)
    translation = model.translate(example.question_tokens, example.table)
    print(f"\nQ ({example.domain}): {example.question}")
    print(f"qᵃ: {' '.join(translation.annotated_tokens)}")
    print(f"pred: {translation.query.to_sql() if translation.query else None}")
    print(f"gold: {example.query.to_sql()}")


if __name__ == "__main__":
    main()
