"""Inspect the adversarial text method (Section IV-C / Figures 5, 7).

Trains the column-mention classifier, then plots (as ASCII bars) the
per-word influence levels ``I(w) = α‖dL/dE_word(w)‖ + β‖dL/dE_char(w)‖``
used to locate column mentions — the paper's Figure 5/7 visualization.

Run:  python examples/adversarial_inspection.py
"""

from repro.core.annotator import Annotator
from repro.core.mention import compute_influence, locate_mention
from repro.data import generate_wikisql_style
from repro.text import WordEmbeddings, tokenize


def bar(value: float, peak: float, width: int = 30) -> str:
    return "#" * max(1, int(width * value / peak)) if peak else ""


def main() -> None:
    dataset = generate_wikisql_style(seed=0, train_size=150, dev_size=0,
                                     test_size=0)
    annotator = Annotator(WordEmbeddings(dim=32))
    annotator.fit(dataset.train, classifier_epochs=3, verbose=True)
    classifier = annotator.column_classifier

    cases = [
        ("winning driver", "which driver won the boston grand prix ?"),
        ("player", "who is the golfer that golfs for scotland ?"),
        ("date", "when did the denver eagles play at home ?"),
        ("year", "what competition did he enter in 2008 ?"),
    ]
    for column, question in cases:
        tokens = tokenize(question)
        prob = classifier.predict_proba(tokens, tokenize(column))
        profile = compute_influence(classifier, tokens, tokenize(column),
                                    alpha=1.0, beta=1.0)
        start, end = locate_mention(profile)
        peak = float(profile.combined.max())
        print(f"\ncolumn {column!r}  P(mentioned)={prob:.2f}  "
              f"located span: {' '.join(tokens[start:end])!r}")
        for i, token in enumerate(tokens):
            w = bar(float(profile.word_influence[i]), peak)
            c = bar(float(profile.char_influence[i]), peak)
            marker = "<-- mention" if start <= i < end else ""
            print(f"  {token:<12} word {w:<30} char {c:<30} {marker}")


if __name__ == "__main__":
    main()
