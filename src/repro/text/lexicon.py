"""Lexical knowledge: synonym groups, column mention phrases, describing
expressions.

This plays two roles, mirroring Section II of the paper:

* the **synonym groups** structure the word-embedding space
  (:mod:`repro.text.embeddings`) so that semantically related words are
  close — the property the paper gets from pre-trained GloVe;
* :class:`ColumnKnowledge` / :class:`KnowledgeBase` hold the optional
  *natural-language-expressions-specific-to-a-database* metadata: the
  mention phrases ``P_c`` and describing expressions ``D_c`` that supply
  extra mention candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "SYNONYM_GROUPS",
    "PHRASE_SYNONYMS",
    "synonym_group_of",
    "phrase_group_of",
    "stem",
    "ColumnKnowledge",
    "KnowledgeBase",
]

# Words in one group receive nearby embedding vectors.  Groups cover the
# domains used by the synthetic dataset generators plus the paper's own
# running examples (golfer/player, population/"people live in", ...).
SYNONYM_GROUPS: list[list[str]] = [
    # people and roles
    ["player", "athlete", "golfer", "sportsman", "competitor", "contestant"],
    ["actor", "actress", "star", "cast"],
    ["director", "filmmaker", "directed", "direct", "directs", "directing"],
    ["driver", "racer", "pilot"],
    ["singer", "artist", "musician", "vocalist", "performer"],
    ["author", "writer", "novelist"],
    ["coach", "manager", "trainer"],
    ["president", "leader", "head"],
    ["doctor", "physician"],
    ["chef", "cook"],
    # places
    ["venue", "location", "place", "site", "stadium", "arena"],
    ["city", "town", "municipality"],
    ["county", "region", "district", "area"],
    ["country", "nation", "state"],
    ["restaurant", "diner", "eatery"],
    ["address", "street"],
    # time
    ["date", "day", "when"],
    ["year", "season"],
    ["time", "duration", "length"],
    ["month"],
    # measures
    ["population", "inhabitants", "residents", "people"],
    ["price", "cost", "costs", "priced", "fee", "charge"],
    ["salary", "wage", "pay", "earnings", "earn", "earns", "earned"],
    ["score", "scored", "scores", "points", "result"],
    ["rank", "position", "standing"],
    ["height", "tall"],
    ["weight", "heavy"],
    ["age", "old"],
    ["size", "capacity"],
    ["distance", "far"],
    ["rating", "grade", "stars"],
    ["attendance", "crowd", "spectators"],
    ["speed", "pace", "fast"],
    ["goals", "touchdowns"],
    ["budget", "funding"],
    ["revenue", "sales", "income"],
    # events and works
    ["film", "movie", "picture"],
    ["song", "track", "single", "tune"],
    ["album", "record", "release", "released", "recorded"],
    ["book", "novel", "title"],
    ["game", "match", "fixture", "contest"],
    ["competition", "tournament", "championship", "event"],
    ["mission", "flight", "launch"],
    ["election", "elections", "elect", "elected", "vote", "votes",
     "ballots", "poll"],
    ["award", "prize", "nomination", "nominated"],
    ["team", "club", "side", "franchise"],
    ["party", "affiliation"],
    ["college", "university", "school"],
    ["nationality", "citizenship"],
    ["opponent", "rival", "adversary"],
    ["genre", "category", "type", "kind", "style"],
    ["cuisine", "food", "dishes"],
    ["recipe", "dish", "meal"],
    ["ingredient", "component"],
    ["calories", "energy"],
    ["bedrooms", "rooms"],
    ["rent", "lease"],
    ["candidate", "nominee", "contender"],
    ["winner", "champion", "victor", "win", "won", "winning", "wins"],
    # verbs of relations
    ["play", "played", "plays", "playing"],
    ["live", "lives", "lived", "living", "reside", "resides"],
    ["sing", "sang", "sung", "sings"],
    ["write", "wrote", "written", "writes"],
    ["serve", "serves", "served", "serving"],
    ["hold", "held", "holds"],
    ["open", "opened", "opens", "opening"],
    ["locate", "located"],
    ["schedule", "scheduled"],
    ["graduate", "graduated"],
    ["weigh", "weighs", "weighed"],
]

_WORD_TO_GROUP: dict[str, int] = {}
for _gid, _group in enumerate(SYNONYM_GROUPS):
    for _word in _group:
        # First assignment wins; later duplicates keep their original group.
        _WORD_TO_GROUP.setdefault(_word, _gid)


# Multi-token phrase synonym groups.  Deliberately separate from
# SYNONYM_GROUPS: word groups shape the embedding space, while phrase
# groups only drive phrase-level paraphrasing (the lexicon side of the
# multi-token paraphrase attack).  Each group is meaning-preserving —
# comparison-cue phrases stay within one comparison direction, so
# substituting inside a group never changes the gold SQL.
PHRASE_SYNONYMS: list[list[str]] = [
    ["how many", "what number of"],
    ["more than", "greater than"],
    ["less than", "fewer than"],
    ["other than", "apart from", "different from"],
    ["for each", "for every"],
    ["year won", "winning year", "year of victory"],
    ["directed by", "made by"],
    ["kind of film", "film genre"],
    ["record company", "music label"],
    ["crew size", "number of astronauts"],
    ["launch date", "lift off date"],
    ["length in days", "duration in days"],
    ["number of votes", "vote count"],
    ["winning driver", "driver who won"],
    ["hire year", "year hired", "joining year"],
    ["staff member", "member of staff"],
    ["page count", "number of pages"],
    ["finishing time", "time seconds"],
    ["english name", "english title"],
    ["irish name", "irish title"],
    ["number of residents", "people live in", "resident count"],
    ["prize money", "payout amount"],
    ["home port", "port of registry"],
    ["head physician", "chief doctor", "lead surgeon"],
    ["number of beds", "bed count"],
    ["founding year", "year established"],
    ["mirror size", "mirror diameter"],
    ["first light", "commissioning year"],
    ["host nation", "country of operation"],
]

_PHRASE_TO_GROUP: dict[str, int] = {}
for _pgid, _pgroup in enumerate(PHRASE_SYNONYMS):
    for _phrase in _pgroup:
        _PHRASE_TO_GROUP.setdefault(_phrase, _pgid)


def phrase_group_of(phrase: str) -> int | None:
    """Group id for a multi-token phrase (exact lower-cased match)."""
    return _PHRASE_TO_GROUP.get(phrase.lower())

def stem(word: str) -> str:
    """Very light suffix-stripping stemmer.

    Rules apply sequentially (plural → participle → final "e") so that
    inflected pairs land on the same stem: "candidates" and "candidate"
    both become "candidat"; "directed" and "direct" both become
    "direct".  Enough for the paper's case studies without a full
    morphological analyzer.
    """
    w = word.lower()
    if len(w) > 4:
        if w.endswith("ies"):
            w = w[:-3] + "y"
        elif w.endswith("sses"):
            w = w[:-2]
        elif w.endswith("es") and w[-3] in "sxz":
            w = w[:-2]
        elif w.endswith("s") and not w.endswith("ss"):
            w = w[:-1]
    for suffix in ("ing", "ed", "er"):
        if w.endswith(suffix) and len(w) - len(suffix) >= 3:
            w = w[: len(w) - len(suffix)]
            break
    if w.endswith("e") and len(w) >= 5:
        w = w[:-1]
    return w


def synonym_group_of(word: str) -> int | None:
    """Group id for a word, trying the surface form then its stem."""
    word = word.lower()
    if word in _WORD_TO_GROUP:
        return _WORD_TO_GROUP[word]
    stemmed = stem(word)
    if stemmed in _WORD_TO_GROUP:
        return _WORD_TO_GROUP[stemmed]
    # Stems of group members also match ("directed" → "direct").
    return _STEM_TO_GROUP.get(stemmed)


_STEM_TO_GROUP: dict[str, int] = {}
for _word, _gid in _WORD_TO_GROUP.items():
    _STEM_TO_GROUP.setdefault(stem(_word), _gid)


@dataclass
class ColumnKnowledge:
    """Database-specific natural language metadata for one column.

    ``mention_phrases`` is the paper's ``P_c`` (phrases that mention the
    column, e.g. "how many people live in" for Population);
    ``describing_expressions`` is ``D_c`` (expressions that describe the
    column's values, e.g. "soar" for Price).
    """

    mention_phrases: list[str] = field(default_factory=list)
    describing_expressions: list[str] = field(default_factory=list)


class KnowledgeBase:
    """Optional per-column language metadata (Section II).

    The knowledge base is *orthogonal* to the learned models: it only
    adds extra mention candidates, exactly as the paper describes.
    """

    def __init__(self) -> None:
        self._columns: dict[str, ColumnKnowledge] = {}

    def add(self, column: str, mention_phrases: list[str] | None = None,
            describing_expressions: list[str] | None = None) -> None:
        """Register (or extend) metadata for ``column``."""
        entry = self._columns.setdefault(column.lower(), ColumnKnowledge())
        entry.mention_phrases.extend(mention_phrases or [])
        entry.describing_expressions.extend(describing_expressions or [])

    def get(self, column: str) -> ColumnKnowledge:
        """Metadata for ``column`` (empty knowledge if none registered)."""
        return self._columns.get(column.lower(), ColumnKnowledge())

    def columns(self) -> list[str]:
        """All columns with registered knowledge."""
        return sorted(self._columns)

    def __len__(self) -> int:
        return len(self._columns)
