"""Text substrate: tokenization, distances, embeddings, dependency trees.

Stands in for the NLP toolchain the paper relies on (GloVe vectors and a
dependency parser) with deterministic, offline equivalents.
"""

from repro.text.dependency import DependencyTree, parse_dependency
from repro.text.edit_distance import levenshtein, normalized_edit_similarity
from repro.text.embeddings import WordEmbeddings
from repro.text.lexicon import (
    SYNONYM_GROUPS,
    ColumnKnowledge,
    KnowledgeBase,
    stem,
    synonym_group_of,
)
from repro.text.stats import column_statistics, span_statistics
from repro.text.stopwords import STOP_WORDS, is_stop_word
from repro.text.tokenizer import (
    CHAR_VOCAB_SIZE,
    char_ids,
    detokenize,
    normalize,
    tokenize,
)

__all__ = [
    "tokenize", "detokenize", "char_ids", "normalize", "CHAR_VOCAB_SIZE",
    "levenshtein", "normalized_edit_similarity",
    "STOP_WORDS", "is_stop_word",
    "SYNONYM_GROUPS", "synonym_group_of", "stem",
    "ColumnKnowledge", "KnowledgeBase",
    "WordEmbeddings",
    "DependencyTree", "parse_dependency",
    "column_statistics", "span_statistics",
]
