"""Heuristic dependency tree for mention resolution.

Section IV-E resolves ambiguous (value, column) pairings by *structural
closeness in the question's dependency tree* — "a value is often the
closest child node of the paired column".  The resolution step only
consumes pairwise tree distances, so a full statistical parser is not
required; this module builds a rule-based arc-attachment tree that
preserves the locality signal:

* the first main (non-auxiliary) verb is the root; other verbs attach
  to it;
* a preposition attaches to the nearest verb or noun on its left;
* a token following a preposition attaches to that preposition;
* consecutive capitalizable content words chain (multi-word entities
  stay together);
* any other content word attaches to the nearest verb (ties go left);
* determiners and wh-words attach to the following content word.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["DependencyTree", "parse_dependency"]

_AUX = frozenset("""
is are was were be been being am do does did have has had
will would shall should can could may might must
""".split())

_VERBS = frozenset("""
play played plays playing win won wins winning live lives lived living
direct directed directs star starred stars sing sang sung sings write
wrote written writes serve serves served hold held holds score scored
scores elect elected cost costs open opened opens locate located
schedule scheduled release released record recorded nominate nominated
graduate graduated earn earns earned weigh weighs weighed run ran runs
coach coached host hosted launch launched born reside resides work
worked works made make makes represent represented compete competed
golfs golf visited visit
""".split())

_PREPS = frozenset("""
by in on at of for with from to as against during
""".split())

_DETS = frozenset("the a an this that these those".split())

_WH = frozenset("what which who whom whose when where why how".split())


def _is_content(token: str) -> bool:
    t = token.lower()
    return (t not in _AUX and t not in _PREPS and t not in _DETS
            and t not in _WH and t.isalnum())


@dataclass
class DependencyTree:
    """Parent-array tree over question tokens with BFS distances."""

    tokens: list[str]
    parents: list[int]  # parents[i] = index of head; root has -1

    def __post_init__(self) -> None:
        n = len(self.tokens)
        self._adj: list[list[int]] = [[] for _ in range(n)]
        for child, parent in enumerate(self.parents):
            if parent >= 0:
                self._adj[child].append(parent)
                self._adj[parent].append(child)

    @property
    def root(self) -> int:
        """Index of the root token."""
        return self.parents.index(-1)

    def distance(self, i: int, j: int) -> int:
        """Number of tree edges between tokens ``i`` and ``j``."""
        if i == j:
            return 0
        seen = {i}
        queue = deque([(i, 0)])
        while queue:
            node, depth = queue.popleft()
            for nxt in self._adj[node]:
                if nxt == j:
                    return depth + 1
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append((nxt, depth + 1))
        return len(self.tokens)  # disconnected should not happen; be safe

    def span_distance(self, span_a: tuple[int, int], span_b: tuple[int, int]) -> int:
        """Minimum token-pair distance between two ``[start, end)`` spans."""
        return min(self.distance(i, j)
                   for i in range(*span_a) for j in range(*span_b))


def parse_dependency(tokens: list[str]) -> DependencyTree:
    """Build the heuristic dependency tree for a token sequence."""
    n = len(tokens)
    if n == 0:
        return DependencyTree([], [])
    lowered = [t.lower() for t in tokens]

    verb_idx = [i for i, t in enumerate(lowered) if t in _VERBS]
    aux_idx = [i for i, t in enumerate(lowered) if t in _AUX]
    if verb_idx:
        root = verb_idx[0]
    elif aux_idx:
        root = aux_idx[0]
    else:
        root = 0

    parents = [-2] * n  # -2 = unassigned
    parents[root] = -1

    # Other verbs (and auxiliaries) attach to the root.
    for i in verb_idx + aux_idx:
        if parents[i] == -2:
            parents[i] = root

    def nearest_verb(i: int) -> int:
        candidates = [v for v in verb_idx if v != i] or [root]
        return min(candidates, key=lambda v: (abs(v - i), v > i))

    for i, token in enumerate(lowered):
        if parents[i] != -2:
            continue
        if token in _PREPS:
            # Attach to nearest verb or content word on the left.
            head = root
            for j in range(i - 1, -1, -1):
                if j in verb_idx or j in aux_idx or _is_content(lowered[j]):
                    head = j
                    break
            parents[i] = head if head != i else root
        elif token in _DETS or token in _WH:
            # Attach forward to the next content word.
            head = root
            for j in range(i + 1, n):
                if _is_content(lowered[j]):
                    head = j
                    break
            parents[i] = head if head != i else root
        elif _is_content(token):
            prev = lowered[i - 1] if i > 0 else ""
            if i > 0 and prev in _PREPS:
                parents[i] = i - 1
            elif i > 0 and _is_content(prev) and parents[i - 1] != -2:
                # Chain multi-word entities/compounds to their first word.
                parents[i] = i - 1
            else:
                head = nearest_verb(i)
                parents[i] = head if head != i else root
        else:
            # Punctuation and anything else hangs off the root.
            parents[i] = root

    # Break accidental self-loops or unassigned slots defensively.
    for i in range(n):
        if parents[i] == -2 or parents[i] == i:
            parents[i] = root if i != root else -1

    tree = DependencyTree(list(tokens), parents)
    _break_cycles(tree)
    return tree


def _break_cycles(tree: DependencyTree) -> None:
    """Ensure every token reaches the root (re-attach stray cycles)."""
    root = tree.parents.index(-1)
    for start in range(len(tree.tokens)):
        seen = set()
        node = start
        while node != -1 and node not in seen:
            seen.add(node)
            node = tree.parents[node]
        if node != -1:
            # Cycle detected: cut it by re-attaching the visited node to root.
            tree.parents[node] = root
    # Rebuild adjacency after surgery.
    tree.__post_init__()
