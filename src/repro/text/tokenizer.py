"""Word and character tokenization.

The paper treats a question as a sequence of words and each word as a
sequence of characters (Section IV-B).  The tokenizer keeps numbers,
percentages, and hyphenated season spans (e.g. ``2006-07``) as single
tokens because the adversarial case studies (Figure 7) depend on them.
"""

from __future__ import annotations

import re

__all__ = ["tokenize", "detokenize", "char_ids", "CHAR_VOCAB_SIZE", "normalize"]

_TOKEN_RE = re.compile(
    r"[A-Za-z]+(?:'[A-Za-z]+)?"      # words, contractions
    r"|\d+(?:[.,]\d+)*(?:-\d+)?%?"   # numbers, decimals, spans, percents
    r"|[^\sA-Za-z\d]"                # single punctuation marks
)

# Character vocabulary: printable ASCII mapped to ids 1..95; 0 = unknown.
_CHAR_BASE = 32
CHAR_VOCAB_SIZE = 97


def tokenize(text: str, lowercase: bool = True) -> list[str]:
    """Split text into word tokens."""
    if lowercase:
        text = text.lower()
    return _TOKEN_RE.findall(text)


def detokenize(tokens: list[str]) -> str:
    """Join tokens back into readable text (spaces except before punctuation)."""
    out: list[str] = []
    for token in tokens:
        if out and re.fullmatch(r"[^\w%]", token):
            out[-1] = out[-1] + token
        else:
            out.append(token)
    return " ".join(out)


def char_ids(word: str) -> list[int]:
    """Map a word to character ids in ``[0, CHAR_VOCAB_SIZE)``.

    Printable ASCII gets a stable id; anything else maps to 0 (unknown).
    Empty words yield a single unknown id so downstream convolutions
    always have input.
    """
    ids = []
    for ch in word:
        code = ord(ch)
        if _CHAR_BASE <= code < _CHAR_BASE + CHAR_VOCAB_SIZE - 1:
            ids.append(code - _CHAR_BASE + 1)
        else:
            ids.append(0)
    return ids or [0]


def normalize(text: str) -> str:
    """Lowercase and collapse whitespace — used before string matching."""
    return " ".join(text.lower().split())
