"""Database statistics for value detection (Section II / IV-D).

A column's statistics ``s_c`` is the dimension-wise average over all
cells of the cell's average word embedding — an ``O(1)``-size summary
that characterizes the column without storing its values, which is what
lets the value classifier handle *counterfactual* values.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.text.tokenizer import tokenize

__all__ = ["column_statistics", "span_statistics"]

EmbedFn = Callable[[str], np.ndarray]


def _cell_vector(cell, embed: EmbedFn, dim: int) -> np.ndarray:
    words = tokenize(str(cell))
    if not words:
        return np.zeros(dim)
    return np.mean([embed(w) for w in words], axis=0)


def column_statistics(values: list, embed: EmbedFn, dim: int) -> np.ndarray:
    """Compute ``s_c`` for a column's cell values.

    Parameters
    ----------
    values:
        The cells of the column (any type; stringified for embedding).
    embed:
        Word → vector function (e.g. combined word+char embedding,
        ``emb(w) = α·E_word(w) + β·E_char(w)`` per the paper).
    dim:
        Embedding dimension (used for empty columns).
    """
    if not values:
        return np.zeros(dim)
    return np.mean([_cell_vector(v, embed, dim) for v in values], axis=0)


def span_statistics(tokens: list[str], embed: EmbedFn, dim: int) -> np.ndarray:
    """Compute ``s_{q[i,j]}`` — the mean embedding of a question span."""
    if not tokens:
        return np.zeros(dim)
    return np.mean([embed(w) for w in tokens], axis=0)
