"""Edit (Levenshtein) distance and derived similarity.

Used by the mention matcher for the *context-free* cases the paper
resolves with string distances (Section III, footnote 1).
"""

from __future__ import annotations

__all__ = ["levenshtein", "normalized_edit_similarity"]


def levenshtein(a: str, b: str) -> int:
    """Minimum number of insert/delete/substitute operations a → b."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(min(previous[j] + 1,      # deletion
                               current[j - 1] + 1,   # insertion
                               previous[j - 1] + cost))  # substitution
        previous = current
    return previous[-1]


def normalized_edit_similarity(a: str, b: str) -> float:
    """1 − distance/max_len, in ``[0, 1]``; 1.0 means identical strings."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest
