"""English stop words.

The value-detection classifier only considers candidate spans that
contain no stop words (Section IV-D: "we only consider q[i, j] only if
no k with q[k] ∈ StopWords").
"""

from __future__ import annotations

__all__ = ["STOP_WORDS", "is_stop_word"]

STOP_WORDS: frozenset[str] = frozenset("""
a an the this that these those
i you he she it we they me him her us them
my your his its our their
is are was were be been being am
do does did done doing
have has had having
will would shall should can could may might must
and or but nor so yet for
of in on at by to from with without into onto over under
up down out off about above below between among through during
as if then than too very just only also not no
what which who whom whose when where why how
there here
""".split())


def is_stop_word(token: str) -> bool:
    """Whether a (lowercased) token is a stop word."""
    return token.lower() in STOP_WORDS
