"""Deterministic, lexicon-structured word embeddings.

The paper initializes its models with pre-trained GloVe vectors, whose
only property the pipeline actually relies on is *semantic proximity*:
related words (synonyms, morphological variants) are close in L2/cosine
space, unrelated words are far.  Offline we reproduce that property
directly: every word's vector is seeded from a stable hash, and words in
the same :data:`~repro.text.lexicon.SYNONYM_GROUPS` group share a common
base direction plus a small word-specific displacement.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.text.lexicon import stem, synonym_group_of
from repro.text.tokenizer import tokenize

__all__ = ["WordEmbeddings"]


def _hash_rng(key: str, salt: int) -> np.random.Generator:
    digest = hashlib.md5(f"{salt}:{key}".encode("utf-8")).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


class WordEmbeddings:
    """Deterministic embedding table with semantic structure.

    Parameters
    ----------
    dim:
        Vector dimension (default 64; the paper used GloVe-300 but the
        pipeline is dimension-agnostic).
    seed:
        Salt mixed into every hash so different seeds give independent
        embedding spaces.
    group_weight:
        How strongly group members pull toward the shared base
        direction; higher = tighter synonym clusters.
    """

    def __init__(self, dim: int = 64, seed: int = 0, group_weight: float = 0.85):
        if dim < 2:
            raise ValueError("embedding dimension must be >= 2")
        if not 0.0 <= group_weight < 1.0:
            raise ValueError("group_weight must be in [0, 1)")
        self.dim = dim
        self.seed = seed
        self.group_weight = group_weight
        self._cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Vectors
    # ------------------------------------------------------------------

    def _raw(self, key: str, salt_offset: int = 0) -> np.ndarray:
        rng = _hash_rng(key, self.seed + salt_offset)
        vec = rng.standard_normal(self.dim)
        return vec / np.linalg.norm(vec)

    def vector(self, word: str) -> np.ndarray:
        """Embedding for a single word (deterministic, unit-ish norm)."""
        word = word.lower()
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        group = synonym_group_of(word)
        if group is not None:
            base = self._raw(f"group:{group}", salt_offset=1)
            noise = self._raw(f"word:{stem(word)}")
            vec = self.group_weight * base + (1.0 - self.group_weight) * noise
        else:
            # Morphological variants share a stem vector with a small
            # surface-form displacement (keeps "candidate"/"candidates"
            # close even outside any synonym group).
            base = self._raw(f"stem:{stem(word)}", salt_offset=2)
            noise = self._raw(f"surface:{word}", salt_offset=3)
            vec = 0.9 * base + 0.1 * noise
        vec = vec / np.linalg.norm(vec)
        self._cache[word] = vec
        return vec

    def matrix(self, words: list[str]) -> np.ndarray:
        """Stacked embeddings, shape ``(len(words), dim)``."""
        if not words:
            return np.zeros((0, self.dim))
        return np.stack([self.vector(w) for w in words])

    def phrase_vector(self, phrase: str) -> np.ndarray:
        """Average embedding of a phrase's tokens."""
        tokens = tokenize(phrase)
        if not tokens:
            return np.zeros(self.dim)
        return self.matrix(tokens).mean(axis=0)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------

    def distance(self, a: str, b: str) -> float:
        """Semantic (Euclidean) distance between two words."""
        return float(np.linalg.norm(self.vector(a) - self.vector(b)))

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two words."""
        va, vb = self.vector(a), self.vector(b)
        return float(va @ vb / (np.linalg.norm(va) * np.linalg.norm(vb)))

    def phrase_similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two phrases (mean-pooled)."""
        va, vb = self.phrase_vector(a), self.phrase_vector(b)
        na, nb = np.linalg.norm(va), np.linalg.norm(vb)
        if na == 0.0 or nb == 0.0:
            return 0.0
        return float(va @ vb / (na * nb))
