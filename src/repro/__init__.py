"""Reproduction of "A Natural Language Interface for Database: Achieving
Transfer-learnability Using Adversarial Method for Question Understanding"
(Wang, Tian, Wang, Ku - ICDE 2020).

The library is organised as:

* :mod:`repro.nn` - a from-scratch numpy neural substrate (autodiff,
  LSTM/GRU, attention, char-CNN, optimizers);
* :mod:`repro.sqlengine` - an in-memory relational engine for the
  WikiSQL query sketch (parser, executor, canonicalizer);
* :mod:`repro.text` - tokenization, edit/semantic distances,
  lexicon-structured embeddings, dependency-tree heuristics;
* :mod:`repro.data` - synthetic WikiSQL-style / OVERNIGHT-style /
  ParaphraseBench-style dataset generators;
* :mod:`repro.core` - the paper's contribution: adversarial mention
  detection, annotation, the annotated seq2seq translator, and the
  end-to-end :class:`~repro.core.nlidb.NLIDB` facade;
* :mod:`repro.baselines` - Seq2SQL-, SQLNet-, and TypeSQL-like baselines.
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
