"""In-memory relational tables and databases.

A :class:`Table` holds a schema (ordered, typed columns) and rows.  It is
the substrate against which synthesized queries are executed for the
paper's *execution accuracy* metric, and the source of the *database
statistics* metadata (Section II) consumed by the value-detection
classifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.sqlengine.types import DataType

__all__ = ["Column", "Table", "Database"]


@dataclass(frozen=True)
class Column:
    """A named, typed table column."""

    name: str
    dtype: DataType = DataType.TEXT

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise SchemaError("column name must be non-empty")


@dataclass
class Table:
    """An ordered-schema table with rows stored as tuples.

    Parameters
    ----------
    name:
        Table identifier (unique within a :class:`Database`).
    columns:
        Ordered column definitions; order defines the ``c_i`` indices the
        annotation layer uses.
    rows:
        Row tuples aligned with ``columns``.
    """

    name: str
    columns: list[Column]
    rows: list[tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name.lower() for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        for row in self.rows:
            if len(row) != len(self.columns):
                raise SchemaError(
                    f"row arity {len(row)} != schema arity {len(self.columns)} "
                    f"in table {self.name!r}")

    # ------------------------------------------------------------------
    # Schema access
    # ------------------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        """Ordered column names."""
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        """Case-insensitive column lookup; raises ``SchemaError`` if absent."""
        target = name.strip().lower()
        for i, column in enumerate(self.columns):
            if column.name.lower() == target:
                return i
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def column(self, name: str) -> Column:
        """Return the :class:`Column` definition for ``name``."""
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        """Whether a column with this (case-insensitive) name exists."""
        try:
            self.column_index(name)
        except SchemaError:
            return False
        return True

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    def column_values(self, name: str) -> list:
        """All cell values of one column, in row order."""
        idx = self.column_index(name)
        return [row[idx] for row in self.rows]

    def insert(self, row: tuple) -> None:
        """Append one row, validating arity."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row arity {len(row)} != schema arity {len(self.columns)}")
        self.rows.append(tuple(row))

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class Database:
    """A named collection of tables."""

    name: str = "db"
    tables: dict[str, Table] = field(default_factory=dict)

    def add(self, table: Table) -> None:
        """Register a table; name collisions raise ``SchemaError``."""
        if table.name in self.tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self.tables[table.name] = table

    def get(self, name: str) -> Table:
        """Fetch a table by name; raises ``SchemaError`` if absent."""
        if name not in self.tables:
            raise SchemaError(f"database {self.name!r} has no table {name!r}")
        return self.tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def __len__(self) -> int:
        return len(self.tables)
