"""In-memory relational engine for the WikiSQL query sketch.

Provides typed tables, a query AST, a SQL parser, an executor (used for
execution-accuracy scoring), and canonicalization (used for query-match
scoring).
"""

from repro.sqlengine.ast import (And, Condition, Having, Not, Or, OrderBy,
                                 Query)
from repro.sqlengine.canonical import canonical_equal, canonicalize
from repro.sqlengine.executor import execute, results_equal
from repro.sqlengine.fingerprint import table_fingerprint
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.table import Column, Database, Table
from repro.sqlengine.types import Aggregate, DataType, Operator, SortDirection

__all__ = [
    "DataType", "Aggregate", "Operator", "SortDirection",
    "Column", "Table", "Database",
    "Condition", "Not", "And", "Or", "Having", "OrderBy", "Query",
    "parse_sql", "execute", "results_equal",
    "canonicalize", "canonical_equal",
    "table_fingerprint",
]
