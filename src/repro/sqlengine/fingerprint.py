"""Content fingerprints for tables.

A fingerprint is a hex digest over a table's *content* — ordered column
names, column types, and every cell value in row order.  Two tables with
identical content hash identically regardless of object identity or the
table's name, and any change to a column name, a column type, or a cell
value produces a different digest.  The digest is computed with
:mod:`hashlib`, so it is stable across processes (unlike the built-in
``hash()``, which is salted per interpreter).

The serving layer keys its translation cache on this fingerprint, and
the annotator keys its column-statistics cache on it, so recreating an
equal table (e.g. after reloading a dataset) still hits warm entries
while any schema or data edit is an automatic invalidation.
"""

from __future__ import annotations

import hashlib

from repro.sqlengine.table import Table

__all__ = ["table_fingerprint"]

_SEPARATOR = b"\x00"


def _feed(digest, part: str) -> None:
    # Length-prefix every field so concatenations cannot collide
    # ("ab"+"c" vs "a"+"bc") and type tags stay unambiguous.
    data = part.encode("utf-8")
    digest.update(str(len(data)).encode("ascii"))
    digest.update(_SEPARATOR)
    digest.update(data)


def _feed_cell(digest, cell) -> None:
    # Tag the Python type so 1, 1.0, "1", and True all hash apart.
    _feed(digest, type(cell).__name__)
    _feed(digest, str(cell))


def table_fingerprint(table: Table) -> str:
    """Hex digest of a table's columns, types, and rows.

    The table *name* is deliberately excluded: annotation and
    translation depend only on schema and data, so content-equal tables
    under different names may share cached work.
    """
    digest = hashlib.sha256()
    digest.update(b"schema")
    for column in table.columns:
        _feed(digest, column.name)
        _feed(digest, column.dtype.value)
    digest.update(b"rows")
    for row in table.rows:
        digest.update(b"row")
        for cell in row:
            _feed_cell(digest, cell)
    return digest.hexdigest()
