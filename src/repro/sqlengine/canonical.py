"""Canonical representations of SQL text for query-match comparison.

The paper's *query-match accuracy* "converts both synthesized SQL query
and the ground truth into canonical representations before comparison"
(Section VII).  This module exposes that conversion for raw SQL strings,
delegating to the AST for structure.

Canonicalization normalizes operand order only within *commutative*
groups: the legacy flat conjunction and each AND/OR node of the
extended WHERE tree are sorted, while NOT operands, HAVING, ORDER BY
direction, and LIMIT are preserved as written — ``a = 1 OR b = 2``
matches ``b = 2 OR a = 1`` but not ``NOT a = 1``.
"""

from __future__ import annotations

from repro.errors import SQLParseError
from repro.sqlengine.ast import Query
from repro.sqlengine.parser import parse_sql

__all__ = ["canonicalize", "canonical_equal"]


def canonicalize(sql_or_query: str | Query) -> tuple:
    """Return the canonical tuple form of SQL text or a Query."""
    query = sql_or_query if isinstance(sql_or_query, Query) else parse_sql(sql_or_query)
    return query.canonical()


def canonical_equal(a: str | Query, b: str | Query) -> bool:
    """Whether two queries match canonically; unparseable input ≠ anything."""
    try:
        return canonicalize(a) == canonicalize(b)
    except SQLParseError:
        return False
