"""Query AST for the WikiSQL sketch.

A :class:`Query` is ``SELECT [agg] select_column WHERE cond AND ...``
with conditions ``(column, operator, value)``.  The AST provides the
three comparison views the paper's metrics need:

* :meth:`Query.tokens` — the token-by-token *logical form* (condition
  order preserved), for ``Acc_lf``;
* :meth:`Query.canonical` — a canonical representation (lower-cased,
  conditions sorted), for *query-match* ``Acc_qm``;
* :meth:`Query.to_sql` — printable SQL text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlengine.types import Aggregate, Operator

__all__ = ["Condition", "Query"]


def _format_value(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)
    return f'"{value}"'


def _canonical_value(value) -> str:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return _format_value(value)
    text = str(value).strip().lower()
    # Numeric strings compare equal to their numeric form.
    try:
        return _format_value(float(text))
    except ValueError:
        return text


@dataclass(frozen=True)
class Condition:
    """One WHERE condition: ``column operator value``."""

    column: str
    operator: Operator
    value: object

    def to_sql(self) -> str:
        return f"{self.column} {self.operator.value} {_format_value(self.value)}"

    def canonical(self) -> tuple[str, str, str]:
        return (self.column.strip().lower(), self.operator.value,
                _canonical_value(self.value))


@dataclass
class Query:
    """A WikiSQL-sketch query."""

    select_column: str
    aggregate: Aggregate = Aggregate.NONE
    conditions: list[Condition] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def to_sql(self) -> str:
        """Render as SQL text (the paper's single-table dialect omits FROM)."""
        if self.aggregate is Aggregate.NONE:
            select = f"SELECT {self.select_column}"
        else:
            select = f"SELECT {self.aggregate.value}({self.select_column})"
        if not self.conditions:
            return select
        where = " AND ".join(c.to_sql() for c in self.conditions)
        return f"{select} WHERE {where}"

    def tokens(self) -> list[str]:
        """Logical-form token sequence (condition order preserved)."""
        out = ["select"]
        if self.aggregate is not Aggregate.NONE:
            out.append(self.aggregate.value.lower())
        out.append(self.select_column.strip().lower())
        if self.conditions:
            out.append("where")
            for i, cond in enumerate(self.conditions):
                if i:
                    out.append("and")
                col, op, val = cond.canonical()
                out.extend([col, op, val])
        return out

    def canonical(self) -> tuple:
        """Order-insensitive canonical form used for query-match accuracy."""
        return (
            self.aggregate.value,
            self.select_column.strip().lower(),
            tuple(sorted(c.canonical() for c in self.conditions)),
        )

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------

    def logical_form_equal(self, other: "Query") -> bool:
        """Token-by-token equality (condition order matters) — Acc_lf."""
        return self.tokens() == other.tokens()

    def query_match_equal(self, other: "Query") -> bool:
        """Canonical equality (condition order ignored) — Acc_qm."""
        return self.canonical() == other.canonical()

    def where_canonical(self) -> tuple:
        """Canonical (column, value) pairs of the WHERE clause only.

        Used for the Section VII-A.1 mention-detection metric, which
        scores ``$COND_COL`` / ``$COND_VAL`` agreement.
        """
        return tuple(sorted((c.canonical()[0], c.canonical()[2])
                            for c in self.conditions))
