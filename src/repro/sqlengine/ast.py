"""Query AST for the WikiSQL sketch and its extended grammar.

A :class:`Query` is ``SELECT [agg] select_column`` followed by optional
clauses.  The legacy WikiSQL sketch stores its flat conjunction in
``conditions``; the extended grammar adds a boolean WHERE *tree*
(:class:`And` / :class:`Or` / :class:`Not` over :class:`Condition`
leaves), ``GROUP BY`` + :class:`Having`, :class:`OrderBy`, and
``LIMIT``.  Construction normalizes a tree that is a bare conjunction of
conditions back into the legacy ``conditions`` list, so queries compare
equal regardless of which surface built them.

The AST provides the three comparison views the paper's metrics need:

* :meth:`Query.tokens` — the token-by-token *logical form* (condition
  order preserved), for ``Acc_lf``;
* :meth:`Query.canonical` — a canonical representation (lower-cased;
  operand order normalized only within commutative AND/OR groups), for
  *query-match* ``Acc_qm``;
* :meth:`Query.to_sql` — printable SQL text (precedence-correct
  parentheses, and ``str(query)`` so ``parse_sql(str(q)) == q``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlengine.types import Aggregate, Operator, SortDirection

__all__ = ["Condition", "Not", "And", "Or", "Having", "OrderBy", "Query"]


def _format_value(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)
    return f'"{value}"'


def _canonical_value(value) -> str:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return _format_value(value)
    text = str(value).strip().lower()
    # Numeric strings compare equal to their numeric form.
    try:
        return _format_value(float(text))
    except ValueError:
        return text


@dataclass(frozen=True)
class Condition:
    """One WHERE condition: ``column operator value``."""

    column: str
    operator: Operator
    value: object

    def to_sql(self) -> str:
        return f"{self.column} {self.operator.value} {_format_value(self.value)}"

    def canonical(self) -> tuple[str, str, str]:
        return (self.column.strip().lower(), self.operator.value,
                _canonical_value(self.value))


@dataclass(frozen=True)
class Not:
    """Negation of a WHERE expression."""

    operand: object


@dataclass(frozen=True)
class And:
    """Conjunction of two or more WHERE expressions."""

    items: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))
        if not self.items:
            raise ValueError("And requires at least one operand")


@dataclass(frozen=True)
class Or:
    """Disjunction of two or more WHERE expressions."""

    items: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))
        if not self.items:
            raise ValueError("Or requires at least one operand")


@dataclass(frozen=True)
class Having:
    """A ``HAVING agg(column) op value`` group filter."""

    aggregate: Aggregate
    column: str
    operator: Operator
    value: object

    def to_sql(self) -> str:
        return (f"{self.aggregate.value}({self.column}) "
                f"{self.operator.value} {_format_value(self.value)}")

    def canonical(self) -> tuple:
        return (self.aggregate.value, self.column.strip().lower(),
                self.operator.value, _canonical_value(self.value))


@dataclass(frozen=True)
class OrderBy:
    """An ``ORDER BY column [ASC|DESC]`` clause."""

    column: str
    direction: SortDirection = SortDirection.ASC

    @property
    def descending(self) -> bool:
        return self.direction is SortDirection.DESC

    def to_sql(self) -> str:
        if self.direction is SortDirection.DESC:
            return f"ORDER BY {self.column} DESC"
        return f"ORDER BY {self.column}"


# Rendering precedence: a child is parenthesized iff it binds *looser*
# than its parent.  OR < AND < NOT < leaf.
_PREC_OR, _PREC_AND, _PREC_NOT, _PREC_LEAF = 1, 2, 3, 4


def _normalize_where(expr):
    """Flatten nested same-type AND/OR and collapse single-item groups.

    Normalization makes the AST construction-path independent: the tree
    the parser builds from ``to_sql()`` output equals the original.
    """
    if isinstance(expr, Condition):
        return expr
    if isinstance(expr, Not):
        return Not(_normalize_where(expr.operand))
    if isinstance(expr, (And, Or)):
        items: list = []
        for item in expr.items:
            child = _normalize_where(item)
            if type(child) is type(expr):
                items.extend(child.items)
            else:
                items.append(child)
        if len(items) == 1:
            return items[0]
        return type(expr)(tuple(items))
    raise TypeError(f"not a WHERE expression: {expr!r}")


def _render_where(expr, parent_prec: int = 0) -> str:
    if isinstance(expr, Condition):
        return expr.to_sql()
    if isinstance(expr, Not):
        text = f"NOT {_render_where(expr.operand, _PREC_NOT)}"
        prec = _PREC_NOT
    elif isinstance(expr, And):
        text = " AND ".join(_render_where(i, _PREC_AND) for i in expr.items)
        prec = _PREC_AND
    elif isinstance(expr, Or):
        text = " OR ".join(_render_where(i, _PREC_OR) for i in expr.items)
        prec = _PREC_OR
    else:
        raise TypeError(f"not a WHERE expression: {expr!r}")
    return f"({text})" if prec < parent_prec else text


def _where_tokens(expr, parent_prec: int = 0) -> list[str]:
    """Lower-cased logical-form tokens, parenthesized like ``to_sql``."""
    if isinstance(expr, Condition):
        return list(expr.canonical())
    if isinstance(expr, Not):
        out = ["not"] + _where_tokens(expr.operand, _PREC_NOT)
        prec = _PREC_NOT
    elif isinstance(expr, And):
        out = []
        for i, item in enumerate(expr.items):
            if i:
                out.append("and")
            out.extend(_where_tokens(item, _PREC_AND))
        prec = _PREC_AND
    else:
        out = []
        for i, item in enumerate(expr.items):
            if i:
                out.append("or")
            out.extend(_where_tokens(item, _PREC_OR))
        prec = _PREC_OR
    return ["("] + out + [")"] if prec < parent_prec else out


def _canonical_where(expr) -> tuple:
    """Tagged canonical tuple; operands sorted only inside AND/OR."""
    if isinstance(expr, Condition):
        return ("cond",) + expr.canonical()
    if isinstance(expr, Not):
        return ("not", _canonical_where(expr.operand))
    tag = "and" if isinstance(expr, And) else "or"
    return (tag, tuple(sorted(_canonical_where(i) for i in expr.items)))


def _where_leaves(expr) -> list[Condition]:
    if isinstance(expr, Condition):
        return [expr]
    if isinstance(expr, Not):
        return _where_leaves(expr.operand)
    out: list[Condition] = []
    for item in expr.items:
        out.extend(_where_leaves(item))
    return out


@dataclass
class Query:
    """A WikiSQL-sketch query, optionally using the extended grammar."""

    select_column: str
    aggregate: Aggregate = Aggregate.NONE
    conditions: list[Condition] = field(default_factory=list)
    where: object | None = None
    group_by: str | None = None
    having: Having | None = None
    order_by: OrderBy | None = None
    limit: int | None = None

    def __post_init__(self) -> None:
        if self.where is not None:
            if self.conditions:
                raise ValueError(
                    "pass either `conditions` or `where`, not both")
            expr = _normalize_where(self.where)
            if isinstance(expr, Condition):
                self.conditions = [expr]
                self.where = None
            elif isinstance(expr, And) and all(
                    isinstance(i, Condition) for i in expr.items):
                self.conditions = list(expr.items)
                self.where = None
            else:
                self.where = expr
        if self.limit is not None:
            self.limit = int(self.limit)

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------

    def where_expr(self):
        """The effective WHERE expression tree (``None`` if no WHERE)."""
        if self.where is not None:
            return self.where
        if not self.conditions:
            return None
        if len(self.conditions) == 1:
            return self.conditions[0]
        return And(tuple(self.conditions))

    def where_leaves(self) -> list[Condition]:
        """All leaf conditions, left to right (legacy: ``conditions``)."""
        expr = self.where_expr()
        return [] if expr is None else _where_leaves(expr)

    @property
    def is_extended(self) -> bool:
        """Whether the query uses any clause beyond the WikiSQL sketch."""
        return (self.where is not None or self.group_by is not None
                or self.having is not None or self.order_by is not None
                or self.limit is not None)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def to_sql(self) -> str:
        """Render as SQL text (the paper's single-table dialect omits FROM)."""
        if self.aggregate is Aggregate.NONE:
            select = f"SELECT {self.select_column}"
        else:
            select = f"SELECT {self.aggregate.value}({self.select_column})"
        parts = [select]
        if self.where is not None:
            parts.append(f"WHERE {_render_where(self.where)}")
        elif self.conditions:
            where = " AND ".join(c.to_sql() for c in self.conditions)
            parts.append(f"WHERE {where}")
        if self.group_by is not None:
            parts.append(f"GROUP BY {self.group_by}")
        if self.having is not None:
            parts.append(f"HAVING {self.having.to_sql()}")
        if self.order_by is not None:
            parts.append(self.order_by.to_sql())
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)

    def __str__(self) -> str:
        return self.to_sql()

    def tokens(self) -> list[str]:
        """Logical-form token sequence (condition order preserved)."""
        out = ["select"]
        if self.aggregate is not Aggregate.NONE:
            out.append(self.aggregate.value.lower())
        out.append(self.select_column.strip().lower())
        if self.where is not None:
            out.append("where")
            out.extend(_where_tokens(self.where))
        elif self.conditions:
            out.append("where")
            for i, cond in enumerate(self.conditions):
                if i:
                    out.append("and")
                col, op, val = cond.canonical()
                out.extend([col, op, val])
        if self.group_by is not None:
            out.extend(["group", "by", self.group_by.strip().lower()])
        if self.having is not None:
            agg, col, op, val = self.having.canonical()
            out.extend(["having", agg.lower(), col, op, val])
        if self.order_by is not None:
            out.extend(["order", "by", self.order_by.column.strip().lower(),
                        self.order_by.direction.value.lower()])
        if self.limit is not None:
            out.extend(["limit", str(self.limit)])
        return out

    def canonical(self) -> tuple:
        """Order-insensitive canonical form used for query-match accuracy.

        Condition order is normalized only within commutative groups
        (the legacy flat conjunction, and each AND/OR node of the
        extended tree); the legacy tuple shape is unchanged, extended
        clauses append tagged entries.
        """
        base = (
            self.aggregate.value,
            self.select_column.strip().lower(),
            tuple(sorted(c.canonical() for c in self.conditions)),
        )
        if not self.is_extended:
            return base
        extras: list[tuple] = []
        if self.where is not None:
            extras.append(("where", _canonical_where(self.where)))
        if self.group_by is not None:
            extras.append(("group_by", self.group_by.strip().lower()))
        if self.having is not None:
            extras.append(("having", self.having.canonical()))
        if self.order_by is not None:
            extras.append(("order_by", self.order_by.column.strip().lower(),
                           self.order_by.direction.value))
        if self.limit is not None:
            extras.append(("limit", self.limit))
        return base + tuple(extras)

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------

    def logical_form_equal(self, other: "Query") -> bool:
        """Token-by-token equality (condition order matters) — Acc_lf."""
        return self.tokens() == other.tokens()

    def query_match_equal(self, other: "Query") -> bool:
        """Canonical equality (condition order ignored) — Acc_qm."""
        return self.canonical() == other.canonical()

    def where_canonical(self) -> tuple:
        """Canonical (column, value) pairs of the WHERE clause only.

        Used for the Section VII-A.1 mention-detection metric, which
        scores ``$COND_COL`` / ``$COND_VAL`` agreement.
        """
        return tuple(sorted((c.canonical()[0], c.canonical()[2])
                            for c in self.where_leaves()))
