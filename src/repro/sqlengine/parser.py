"""Parser for the WikiSQL-sketch SQL dialect and its extended grammar.

Grammar (case-insensitive keywords)::

    query    := SELECT [AGG '('] column [')']
                [WHERE or_expr]
                [GROUP BY column] [HAVING AGG '(' column ')' op value]
                [ORDER BY column [ASC|DESC]] [LIMIT int]
    or_expr  := and_expr (OR and_expr)*
    and_expr := unary (AND unary)*
    unary    := NOT unary | '(' or_expr ')' | cond
    cond     := column op value
    op       := '=' | '>' | '<'
    value    := '"' text '"' | number | bareword+

Column names may contain spaces (e.g. ``Film Name``); inside a condition
the column is everything before the operator.  A flat conjunction (no
OR/NOT/parentheses) takes the legacy path and produces the legacy
``Query.conditions`` list byte-for-byte, so old-sketch parses are
unchanged.

All splitting is done over a quote-aware token stream: quoted strings
are single tokens, so ``genre = "rock and roll"`` never splits at the
embedded AND, and a bareword apostrophe (``o'connor``) does not open a
quote.
"""

from __future__ import annotations

import re

from repro.errors import SQLParseError
from repro.sqlengine.ast import And, Condition, Having, Not, Or, OrderBy, Query
from repro.sqlengine.types import Aggregate, Operator, SortDirection

__all__ = ["parse_sql"]

_AGG_RE = re.compile(
    r"^\s*(max|min|count|sum|avg)\s*\(\s*(.+?)\s*\)\s*$", re.IGNORECASE)
_HAVING_PAREN_RE = re.compile(
    r"^\s*(max|min|count|sum|avg)\s*\(\s*(.+?)\s*\)\s*(=|>|<)\s*(.+?)\s*$",
    re.IGNORECASE)
_HAVING_BARE_RE = re.compile(
    r"^\s*(max|min|count|sum|avg)\s+(.+?)\s*(=|>|<)\s*(.+?)\s*$",
    re.IGNORECASE)
_COND_RE = re.compile(r"^\s*(.+?)\s*(=|>|<)\s*(.+?)\s*$")

# Quoted strings are single tokens (tried first, so an opening quote
# always pairs with its closer); parens and comparison operators are
# their own tokens; a bareword may contain interior apostrophes
# (``o'connor``) without opening a quote.
_TOKEN_RE = re.compile(
    r'"[^"]*"'
    r"|'[^']*'"
    r"|[()=<>]"
    r"|[^\s()=<>\"']+(?:'[^\s()=<>\"']*)*"
)

# Clause keywords in their only legal order.
_CLAUSE_ORDER = {"from": 0, "where": 1, "group": 2, "having": 3,
                 "order": 4, "limit": 5}
_TREE_TOKENS = {"or", "not", "(", ")"}
_OPERATOR_TOKENS = {"=", ">", "<"}


def _parse_value(text: str):
    """Interpret a condition's right-hand side: quoted text or number."""
    text = text.strip()
    if len(text) >= 2 and text[0] == '"' and text[-1] == '"':
        return text[1:-1]
    if len(text) >= 2 and text[0] == "'" and text[-1] == "'":
        return text[1:-1]
    try:
        number = float(text)
    except ValueError:
        return text  # bare words act as unquoted text values
    return int(number) if number.is_integer() else number


def _parse_select(select_text: str) -> tuple[Aggregate, str]:
    select_text = select_text.strip()
    if not select_text:
        raise SQLParseError("empty SELECT clause")
    agg_match = _AGG_RE.match(select_text)
    if agg_match:
        return Aggregate.from_token(agg_match.group(1)), agg_match.group(2).strip()
    # Also accept "AGG column" without parentheses (annotated SQL style).
    head, _, rest = select_text.partition(" ")
    if head.upper() in {"MAX", "MIN", "COUNT", "SUM", "AVG"} and rest.strip():
        return Aggregate.from_token(head), rest.strip()
    return Aggregate.NONE, select_text


def _split_clauses(body: str) -> tuple[str, dict[str, str]]:
    """Split the post-SELECT body into (select_text, clause -> text).

    Clause keywords are recognised only at parenthesis depth 0 and only
    as standalone tokens (``GROUP``/``ORDER`` must be followed by
    ``BY``), so quoted values and parenthesized expressions never start
    a clause.
    """
    matches = list(_TOKEN_RE.finditer(body))
    boundaries: list[tuple[str, int, int]] = []  # (name, start, content_start)
    depth = 0
    i = 0
    while i < len(matches):
        token = matches[i].group(0)
        if token == "(":
            depth += 1
        elif token == ")":
            depth = max(0, depth - 1)
        elif depth == 0:
            lowered = token.lower()
            if lowered in ("group", "order"):
                nxt = matches[i + 1] if i + 1 < len(matches) else None
                if nxt is not None and nxt.group(0).lower() == "by":
                    boundaries.append(
                        (lowered, matches[i].start(), nxt.end()))
                    i += 2
                    continue
            elif lowered in ("where", "having", "limit") or (
                    lowered == "from" and not boundaries):
                # FROM is only a clause head before any other clause; a
                # later bareword "from" is an ordinary value token.
                boundaries.append((lowered, matches[i].start(),
                                   matches[i].end()))
        i += 1

    last_rank = -1
    for name, _, _ in boundaries:
        rank = _CLAUSE_ORDER[name]
        if rank <= last_rank:
            raise SQLParseError(
                f"clause {name.upper()!r} out of order or repeated: {body!r}")
        last_rank = rank

    select_text = body[:boundaries[0][1]] if boundaries else body
    clauses: dict[str, str] = {}
    for j, (name, _, content_start) in enumerate(boundaries):
        end = boundaries[j + 1][1] if j + 1 < len(boundaries) else len(body)
        clauses[name] = body[content_start:end].strip()
    return select_text, clauses


class _WhereTreeParser:
    """Recursive-descent parser for the boolean WHERE grammar."""

    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def _peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def parse(self):
        expr = self._or_expr()
        if self.pos < len(self.tokens):
            raise SQLParseError(
                f"trailing tokens in WHERE clause: {self.tokens[self.pos:]!r}")
        return expr

    def _or_expr(self):
        items = [self._and_expr()]
        while self._peek() is not None and self._peek().lower() == "or":
            self.pos += 1
            items.append(self._and_expr())
        return items[0] if len(items) == 1 else Or(tuple(items))

    def _and_expr(self):
        items = [self._unary()]
        while self._peek() is not None and self._peek().lower() == "and":
            self.pos += 1
            items.append(self._unary())
        return items[0] if len(items) == 1 else And(tuple(items))

    def _unary(self):
        token = self._peek()
        if token is None:
            raise SQLParseError("WHERE clause ends unexpectedly")
        if token.lower() == "not":
            self.pos += 1
            return Not(self._unary())
        if token == "(":
            self.pos += 1
            expr = self._or_expr()
            if self._peek() != ")":
                raise SQLParseError("unbalanced '(' in WHERE clause")
            self.pos += 1
            return expr
        return self._condition()

    def _condition(self) -> Condition:
        column_words: list[str] = []
        while True:
            token = self._peek()
            if token is None or token in ")(":
                raise SQLParseError(
                    f"condition is missing an operator near "
                    f"{' '.join(column_words)!r}")
            if token in _OPERATOR_TOKENS:
                break
            column_words.append(token)
            self.pos += 1
        if not column_words:
            raise SQLParseError("condition is missing a column")
        operator = Operator.from_token(self.tokens[self.pos])
        self.pos += 1
        value_words: list[str] = []
        while True:
            token = self._peek()
            if (token is None or token in "()"
                    or token.lower() in ("and", "or")):
                break
            value_words.append(token)
            self.pos += 1
        if not value_words:
            raise SQLParseError(
                f"condition on {' '.join(column_words)!r} is missing a value")
        return Condition(" ".join(column_words), operator,
                         _parse_value(" ".join(value_words)))


def parse_sql(text: str) -> Query:
    """Parse SQL text into a :class:`~repro.sqlengine.ast.Query`.

    Raises
    ------
    SQLParseError
        If the text does not follow the (extended) WikiSQL sketch.
    """
    if not text or not text.strip():
        raise SQLParseError("empty SQL text")
    stripped = text.strip().rstrip(";")
    lowered = stripped.lower()
    if not lowered.startswith("select"):
        raise SQLParseError(f"query must start with SELECT: {text!r}")
    body = stripped[len("select"):].strip()

    select_text, clauses = _split_clauses(body)
    # Tolerate an explicit FROM clause (we are single-table).
    clauses.pop("from", None)
    aggregate, column = _parse_select(select_text)

    conditions: list[Condition] = []
    where_expr = None
    if "where" in clauses:
        where_body = clauses["where"]
        if not where_body:
            raise SQLParseError(f"WHERE clause is empty: {text!r}")
        tokens = [m.group(0) for m in _TOKEN_RE.finditer(where_body)]
        if any(t.lower() in _TREE_TOKENS for t in tokens):
            where_expr = _WhereTreeParser(tokens).parse()
        else:
            # Legacy flat conjunction: split on raw text spans so the
            # original spacing inside columns/values is preserved.
            for chunk in _split_conditions(where_body):
                cond_match = _COND_RE.match(chunk)
                if not cond_match:
                    raise SQLParseError(f"cannot parse condition {chunk!r}")
                col, op, val = cond_match.groups()
                conditions.append(Condition(
                    col.strip(), Operator.from_token(op), _parse_value(val)))

    group_by = None
    if "group" in clauses:
        group_by = clauses["group"]
        if not group_by:
            raise SQLParseError(f"GROUP BY clause is empty: {text!r}")

    having = None
    if "having" in clauses:
        having = _parse_having(clauses["having"])

    order_by = None
    if "order" in clauses:
        order_by = _parse_order(clauses["order"])

    limit = None
    if "limit" in clauses:
        limit_text = clauses["limit"]
        if not re.fullmatch(r"\d+", limit_text):
            raise SQLParseError(f"LIMIT must be a non-negative integer: "
                                f"{limit_text!r}")
        limit = int(limit_text)

    return Query(select_column=column, aggregate=aggregate,
                 conditions=conditions, where=where_expr,
                 group_by=group_by, having=having,
                 order_by=order_by, limit=limit)


def _parse_having(text: str) -> Having:
    match = _HAVING_PAREN_RE.match(text) or _HAVING_BARE_RE.match(text)
    if not match:
        raise SQLParseError(f"cannot parse HAVING clause {text!r}")
    agg, column, op, value = match.groups()
    return Having(Aggregate.from_token(agg), column.strip(),
                  Operator.from_token(op), _parse_value(value))


def _parse_order(text: str) -> OrderBy:
    if not text:
        raise SQLParseError("ORDER BY clause is empty")
    direction = SortDirection.ASC
    head, _, tail = text.rpartition(" ")
    if head and tail.lower() in ("asc", "desc"):
        direction = SortDirection.from_token(tail)
        text = head.strip()
    if not text:
        raise SQLParseError("ORDER BY clause has no column")
    return OrderBy(text, direction)


def _split_conditions(where_body: str) -> list[str]:
    """Split on AND, but never inside a quoted value.

    Splitting walks the quote-aware token stream, so an AND inside a
    quoted value (``"rock and roll"``) or after a bareword apostrophe
    (``o'connor``) never breaks a condition apart.
    """
    chunks: list[str] = []
    start = 0
    for match in _TOKEN_RE.finditer(where_body):
        if match.group(0).lower() == "and":
            chunks.append(where_body[start:match.start()])
            start = match.end()
    chunks.append(where_body[start:])
    chunks = [c.strip() for c in chunks if c.strip()]
    if not chunks:
        raise SQLParseError("WHERE clause has no conditions")
    return chunks
