"""Parser for the WikiSQL-sketch SQL dialect.

Grammar (case-insensitive keywords)::

    query  := SELECT [AGG '('] column [')'] [WHERE cond (AND cond)*]
    cond   := column op value
    op     := '=' | '>' | '<'
    value  := '"' text '"' | number | bareword+

Column names may contain spaces (e.g. ``Film Name``); inside a condition
the column is everything before the operator.
"""

from __future__ import annotations

import re

from repro.errors import SQLParseError
from repro.sqlengine.ast import Condition, Query
from repro.sqlengine.types import Aggregate, Operator

__all__ = ["parse_sql"]

_AGG_RE = re.compile(
    r"^\s*(max|min|count|sum|avg)\s*\(\s*(.+?)\s*\)\s*$", re.IGNORECASE)
_SPLIT_WHERE_RE = re.compile(r"\bwhere\b", re.IGNORECASE)
_SPLIT_AND_RE = re.compile(r"\band\b", re.IGNORECASE)
_COND_RE = re.compile(r"^\s*(.+?)\s*(=|>|<)\s*(.+?)\s*$")


def _parse_value(text: str):
    """Interpret a condition's right-hand side: quoted text or number."""
    text = text.strip()
    if len(text) >= 2 and text[0] == '"' and text[-1] == '"':
        return text[1:-1]
    if len(text) >= 2 and text[0] == "'" and text[-1] == "'":
        return text[1:-1]
    try:
        number = float(text)
    except ValueError:
        return text  # bare words act as unquoted text values
    return int(number) if number.is_integer() else number


def _parse_select(select_text: str) -> tuple[Aggregate, str]:
    select_text = select_text.strip()
    if not select_text:
        raise SQLParseError("empty SELECT clause")
    agg_match = _AGG_RE.match(select_text)
    if agg_match:
        return Aggregate.from_token(agg_match.group(1)), agg_match.group(2).strip()
    # Also accept "AGG column" without parentheses (annotated SQL style).
    head, _, rest = select_text.partition(" ")
    if head.upper() in {"MAX", "MIN", "COUNT", "SUM", "AVG"} and rest.strip():
        return Aggregate.from_token(head), rest.strip()
    return Aggregate.NONE, select_text


def parse_sql(text: str) -> Query:
    """Parse SQL text into a :class:`~repro.sqlengine.ast.Query`.

    Raises
    ------
    SQLParseError
        If the text does not follow the WikiSQL sketch.
    """
    if not text or not text.strip():
        raise SQLParseError("empty SQL text")
    stripped = text.strip().rstrip(";")
    lowered = stripped.lower()
    if not lowered.startswith("select"):
        raise SQLParseError(f"query must start with SELECT: {text!r}")
    body = stripped[len("select"):].strip()

    parts = _SPLIT_WHERE_RE.split(body, maxsplit=1)
    select_part = parts[0]
    # Tolerate an explicit FROM clause (we are single-table).
    from_split = re.split(r"\bfrom\b", select_part, maxsplit=1, flags=re.IGNORECASE)
    select_part = from_split[0]
    aggregate, column = _parse_select(select_part)

    conditions: list[Condition] = []
    if len(parts) == 2:
        where_body = parts[1].strip()
        if not where_body:
            raise SQLParseError(f"WHERE clause is empty: {text!r}")
        for chunk in _split_conditions(where_body):
            cond_match = _COND_RE.match(chunk)
            if not cond_match:
                raise SQLParseError(f"cannot parse condition {chunk!r}")
            col, op, val = cond_match.groups()
            conditions.append(
                Condition(col.strip(), Operator.from_token(op), _parse_value(val)))
    return Query(select_column=column, aggregate=aggregate, conditions=conditions)


def _split_conditions(where_body: str) -> list[str]:
    """Split on AND, but never inside a quoted value."""
    chunks: list[str] = []
    current: list[str] = []
    in_quote: str | None = None
    tokens = re.split(r"(\s+)", where_body)
    for token in tokens:
        bare = token.strip()
        if in_quote is None and bare.lower() == "and":
            chunks.append("".join(current))
            current = []
            continue
        for ch in token:
            if in_quote is None and ch in "\"'":
                in_quote = ch
            elif in_quote == ch:
                in_quote = None
        current.append(token)
    chunks.append("".join(current))
    chunks = [c.strip() for c in chunks if c.strip()]
    if not chunks:
        raise SQLParseError("WHERE clause has no conditions")
    return chunks
