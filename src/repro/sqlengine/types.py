"""Column data types and operator/aggregate/sort vocabularies.

The engine implements the WikiSQL query sketch::

    SELECT [AGG] column WHERE column OP value (AND column OP value)*

which is exactly the query class the paper's experiments use
(Section VII-A; the sketch shown for TypeSQL comparison), plus the
extended grammar grown on top of it: OR/NOT in WHERE, GROUP BY with
HAVING, and ORDER BY (:class:`SortDirection`) with LIMIT.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["DataType", "Aggregate", "Operator", "SortDirection"]


class DataType(str, Enum):
    """Data type of a table column."""

    TEXT = "text"
    REAL = "real"


class Aggregate(str, Enum):
    """Aggregates supported by the WikiSQL sketch."""

    NONE = ""
    MAX = "MAX"
    MIN = "MIN"
    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"

    @classmethod
    def from_token(cls, token: str) -> "Aggregate":
        token = token.strip().upper()
        if not token:
            return cls.NONE
        try:
            return cls(token)
        except ValueError as exc:
            raise ValueError(f"unknown aggregate {token!r}") from exc


class Operator(str, Enum):
    """Comparison operators supported in WHERE conditions."""

    EQ = "="
    GT = ">"
    LT = "<"

    @classmethod
    def from_token(cls, token: str) -> "Operator":
        try:
            return cls(token.strip())
        except ValueError as exc:
            raise ValueError(f"unknown operator {token!r}") from exc


class SortDirection(str, Enum):
    """ORDER BY sort direction."""

    ASC = "ASC"
    DESC = "DESC"

    @classmethod
    def from_token(cls, token: str) -> "SortDirection":
        try:
            return cls(token.strip().upper())
        except ValueError as exc:
            raise ValueError(f"unknown sort direction {token!r}") from exc
