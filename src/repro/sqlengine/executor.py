"""Query executor for the WikiSQL sketch.

Executes a :class:`~repro.sqlengine.ast.Query` against a
:class:`~repro.sqlengine.table.Table` and returns a result that can be
compared across queries — the basis of the paper's *execution accuracy*
(``Acc_ex``) metric.
"""

from __future__ import annotations

from repro.errors import SQLExecutionError, SchemaError
from repro.sqlengine.ast import Condition, Query
from repro.sqlengine.table import Table
from repro.sqlengine.types import Aggregate, DataType, Operator

__all__ = ["execute", "results_equal"]


def _coerce_number(value) -> float:
    if isinstance(value, bool):
        raise SQLExecutionError("boolean cell cannot be compared numerically")
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(str(value).strip())
    except ValueError as exc:
        raise SQLExecutionError(f"cell value {value!r} is not numeric") from exc


def _match_condition(cell, cond: Condition, dtype: DataType) -> bool:
    if cond.operator is Operator.EQ:
        if dtype is DataType.REAL:
            try:
                return _coerce_number(cell) == _coerce_number(cond.value)
            except SQLExecutionError:
                return False
        return str(cell).strip().lower() == str(cond.value).strip().lower()
    # Ordering comparisons are numeric; text cells that fail to coerce
    # simply do not match (a question can mention counterfactual values).
    try:
        lhs = _coerce_number(cell)
        rhs = _coerce_number(cond.value)
    except SQLExecutionError:
        return False
    return lhs > rhs if cond.operator is Operator.GT else lhs < rhs


def execute(query: Query, table: Table):
    """Run ``query`` on ``table``.

    Returns
    -------
    For ``Aggregate.NONE``: a sorted list of the selected cells.
    For ``COUNT``: an integer.  For ``MAX/MIN/SUM/AVG``: a float (``None``
    when no rows match).

    Raises
    ------
    SQLExecutionError
        If the selected/conditioned columns do not exist, or a numeric
        aggregate is applied to non-numeric data.
    """
    try:
        select_idx = table.column_index(query.select_column)
    except SchemaError as exc:
        raise SQLExecutionError(str(exc)) from exc

    cond_meta = []
    for cond in query.conditions:
        try:
            idx = table.column_index(cond.column)
        except SchemaError as exc:
            raise SQLExecutionError(str(exc)) from exc
        cond_meta.append((idx, cond, table.columns[idx].dtype))

    selected = []
    for row in table.rows:
        if all(_match_condition(row[idx], cond, dtype)
               for idx, cond, dtype in cond_meta):
            selected.append(row[select_idx])

    agg = query.aggregate
    if agg is Aggregate.NONE:
        return sorted(selected, key=lambda v: str(v))
    if agg is Aggregate.COUNT:
        return len(selected)
    if not selected:
        return None
    numbers = [_coerce_number(v) for v in selected]
    if agg is Aggregate.MAX:
        return max(numbers)
    if agg is Aggregate.MIN:
        return min(numbers)
    if agg is Aggregate.SUM:
        return sum(numbers)
    if agg is Aggregate.AVG:
        return sum(numbers) / len(numbers)
    raise SQLExecutionError(f"unsupported aggregate {agg!r}")


def results_equal(a, b) -> bool:
    """Compare two execution results with numeric tolerance."""
    if isinstance(a, list) != isinstance(b, list):
        return False
    if isinstance(a, list):
        if len(a) != len(b):
            return False
        return all(_cell_equal(x, y) for x, y in zip(a, b))
    return _cell_equal(a, b)


def _cell_equal(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return abs(float(a) - float(b)) < 1e-9
    return str(a).strip().lower() == str(b).strip().lower()
