"""Query executor for the WikiSQL sketch and its extended grammar.

Executes a :class:`~repro.sqlengine.ast.Query` against a
:class:`~repro.sqlengine.table.Table` and returns a result that can be
compared across queries — the basis of the paper's *execution accuracy*
(``Acc_ex``) metric.

Result shapes
-------------
* ``Aggregate.NONE``: a list of selected cells — sorted by string form
  when there is no ORDER BY (the legacy contract), or in ORDER BY order
  with deterministic tie-breaking (ties keep the table's row order,
  under both ASC and DESC) when there is.
* ``COUNT``: an integer.  ``MAX/MIN/SUM/AVG``: a float (``None`` when
  no rows match).
* ``GROUP BY``: a list of ``(group value, aggregate value)`` tuples,
  sorted by group value, after applying HAVING.
"""

from __future__ import annotations

from repro.errors import SQLExecutionError, SchemaError
from repro.sqlengine.ast import And, Condition, Having, Not, Or, Query
from repro.sqlengine.table import Table
from repro.sqlengine.types import Aggregate, DataType, Operator

__all__ = ["execute", "results_equal"]


def _coerce_number(value) -> float:
    if isinstance(value, bool):
        raise SQLExecutionError("boolean cell cannot be compared numerically")
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(str(value).strip())
    except ValueError as exc:
        raise SQLExecutionError(f"cell value {value!r} is not numeric") from exc


def _match_condition(cell, cond: Condition, dtype: DataType) -> bool:
    if cond.operator is Operator.EQ:
        if dtype is DataType.REAL:
            try:
                return _coerce_number(cell) == _coerce_number(cond.value)
            except SQLExecutionError:
                return False
        return str(cell).strip().lower() == str(cond.value).strip().lower()
    # Ordering comparisons are numeric; text cells that fail to coerce
    # simply do not match (a question can mention counterfactual values).
    try:
        lhs = _coerce_number(cell)
        rhs = _coerce_number(cond.value)
    except SQLExecutionError:
        return False
    return lhs > rhs if cond.operator is Operator.GT else lhs < rhs


def _column_index(table: Table, name: str) -> int:
    try:
        return table.column_index(name)
    except SchemaError as exc:
        raise SQLExecutionError(str(exc)) from exc


def _compile_where(expr, table: Table):
    """Compile a WHERE expression into a ``row -> bool`` predicate.

    Column indices and dtypes are resolved once, up front, so unknown
    columns raise before any row is scanned.
    """
    if expr is None:
        return lambda row: True
    if isinstance(expr, Condition):
        idx = _column_index(table, expr.column)
        dtype = table.columns[idx].dtype
        return lambda row: _match_condition(row[idx], expr, dtype)
    if isinstance(expr, Not):
        inner = _compile_where(expr.operand, table)
        return lambda row: not inner(row)
    if isinstance(expr, (And, Or)):
        parts = [_compile_where(item, table) for item in expr.items]
        if isinstance(expr, And):
            return lambda row: all(part(row) for part in parts)
        return lambda row: any(part(row) for part in parts)
    raise SQLExecutionError(f"unsupported WHERE expression {expr!r}")


def _order_key(cell):
    """Numeric-aware sort key: numbers first (by value), then text."""
    text = str(cell).strip()
    try:
        return (0, float(text), "")
    except ValueError:
        return (1, 0.0, text.lower())


def _aggregate_cells(agg: Aggregate, cells: list):
    if agg is Aggregate.COUNT:
        return len(cells)
    if not cells:
        return None
    numbers = [_coerce_number(v) for v in cells]
    if agg is Aggregate.MAX:
        return max(numbers)
    if agg is Aggregate.MIN:
        return min(numbers)
    if agg is Aggregate.SUM:
        return sum(numbers)
    if agg is Aggregate.AVG:
        return sum(numbers) / len(numbers)
    raise SQLExecutionError(f"unsupported aggregate {agg!r}")


def _having_matches(having: Having, rows: list[tuple], idx: int) -> bool:
    value = _aggregate_cells(having.aggregate, [row[idx] for row in rows])
    if value is None:
        return False
    lhs = float(value)
    rhs = _coerce_number(having.value)
    if having.operator is Operator.EQ:
        return abs(lhs - rhs) < 1e-9
    return lhs > rhs if having.operator is Operator.GT else lhs < rhs


def _validate_clauses(query: Query) -> None:
    if query.group_by is not None and query.aggregate is Aggregate.NONE:
        raise SQLExecutionError("GROUP BY requires an aggregate SELECT")
    if query.having is not None and query.group_by is None:
        raise SQLExecutionError("HAVING requires GROUP BY")
    if query.group_by is not None and (query.order_by is not None
                                       or query.limit is not None):
        raise SQLExecutionError(
            "ORDER BY / LIMIT are not supported with GROUP BY")
    if query.aggregate is not Aggregate.NONE and query.group_by is None:
        if query.order_by is not None or query.limit is not None:
            raise SQLExecutionError(
                "ORDER BY / LIMIT require a plain (non-aggregate) SELECT")


def execute(query: Query, table: Table):
    """Run ``query`` on ``table``; see the module docstring for shapes.

    Raises
    ------
    SQLExecutionError
        If the referenced columns do not exist, a numeric aggregate is
        applied to non-numeric data, or the clause combination is
        invalid (e.g. GROUP BY without an aggregate).
    """
    _validate_clauses(query)
    select_idx = _column_index(table, query.select_column)
    matcher = _compile_where(query.where_expr(), table)

    if query.group_by is not None:
        return _execute_grouped(query, table, matcher, select_idx)

    matched_rows = [row for row in table.rows if matcher(row)]

    agg = query.aggregate
    if agg is Aggregate.NONE:
        if query.order_by is not None:
            order_idx = _column_index(table, query.order_by.column)
            # sorted() is stable (also under reverse=True), so ties keep
            # the table's row order — deterministic in both directions.
            matched_rows = sorted(matched_rows,
                                  key=lambda row: _order_key(row[order_idx]),
                                  reverse=query.order_by.descending)
            selected = [row[select_idx] for row in matched_rows]
        else:
            selected = sorted((row[select_idx] for row in matched_rows),
                              key=lambda v: str(v))
        if query.limit is not None:
            selected = selected[:query.limit]
        return selected
    return _aggregate_cells(agg, [row[select_idx] for row in matched_rows])


def _execute_grouped(query: Query, table: Table, matcher, select_idx: int):
    group_idx = _column_index(table, query.group_by)
    having_idx = None
    if query.having is not None:
        having_idx = _column_index(table, query.having.column)

    groups: dict[str, tuple[object, list[tuple]]] = {}
    for row in table.rows:
        if not matcher(row):
            continue
        key = str(row[group_idx]).strip().lower()
        if key not in groups:
            groups[key] = (row[group_idx], [])
        groups[key][1].append(row)

    out = []
    for surface, rows in groups.values():
        if query.having is not None and not _having_matches(
                query.having, rows, having_idx):
            continue
        value = _aggregate_cells(query.aggregate,
                                 [row[select_idx] for row in rows])
        out.append((surface, value))
    out.sort(key=lambda pair: _order_key(pair[0]))
    return out


def results_equal(a, b) -> bool:
    """Compare two execution results with numeric tolerance."""
    if isinstance(a, list) != isinstance(b, list):
        return False
    if isinstance(a, list):
        if len(a) != len(b):
            return False
        return all(_cell_equal(x, y) for x, y in zip(a, b))
    return _cell_equal(a, b)


def _cell_equal(a, b) -> bool:
    if isinstance(a, tuple) or isinstance(b, tuple):
        if not (isinstance(a, tuple) and isinstance(b, tuple)):
            return False
        return len(a) == len(b) and all(
            _cell_equal(x, y) for x, y in zip(a, b))
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return abs(float(a) - float(b)) < 1e-9
    return str(a).strip().lower() == str(b).strip().lower()
