"""Whole-pipeline persistence: save/load a trained :class:`NLIDB`.

A model directory contains::

    config.json            # NLIDBConfig + embeddings settings
    column_classifier.npz  # mention classifier parameters
    value_classifier.npz   # value detector parameters
    translator.npz         # seq2seq (or transformer) parameters

Only configuration and parameters are stored — the embeddings are
deterministic (hash-seeded), so a load reproduces the exact model.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path

from repro.errors import ModelError
from repro.nn import load_module, save_module
from repro.text import WordEmbeddings

from repro.core.mention import ClassifierConfig
from repro.core.nlidb import NLIDB, NLIDBConfig
from repro.core.annotator import AnnotatorConfig
from repro.core.seq2seq.model import Seq2SeqConfig
from repro.core.seq2seq.transformer import TransformerConfig, TransformerTranslator

__all__ = ["save_nlidb", "load_nlidb"]

_FORMAT_VERSION = 1


def save_nlidb(model: NLIDB, directory: str | os.PathLike) -> None:
    """Persist a trained NLIDB to ``directory`` (created if missing)."""
    if not model._fitted:
        raise ModelError("cannot save an unfitted NLIDB")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    translator_kind = type(model.translator).__name__
    config = {
        "format_version": _FORMAT_VERSION,
        "embeddings": {"dim": model.embeddings.dim,
                       "seed": model.embeddings.seed,
                       "group_weight": model.embeddings.group_weight},
        "nlidb": {
            "column_name_appending": model.config.column_name_appending,
            "header_encoding": model.config.header_encoding,
            "extended_grammar": model.config.extended_grammar,
            "classifier_epochs": model.config.classifier_epochs,
            "seq2seq_epochs": model.config.seq2seq_epochs,
            "seed": model.config.seed,
        },
        "seq2seq": asdict(model.config.seq2seq),
        "annotator": asdict(model.config.annotator),
        "classifier": asdict(model.annotator.column_classifier.config),
        "translator_kind": translator_kind,
    }
    if translator_kind == "TransformerTranslator":
        config["transformer"] = asdict(model.translator.config)
    with open(path / "config.json", "w", encoding="utf-8") as handle:
        json.dump(config, handle, indent=2)

    save_module(model.annotator.column_classifier,
                path / "column_classifier.npz")
    save_module(model.annotator.value_classifier.mlp,
                path / "value_classifier.npz")
    save_module(model.translator, path / "translator.npz")


def load_nlidb(directory: str | os.PathLike) -> NLIDB:
    """Load a previously saved NLIDB; it is immediately usable."""
    path = Path(directory)
    config_file = path / "config.json"
    if not config_file.exists():
        raise ModelError(f"no config.json in {path}")
    with open(config_file, encoding="utf-8") as handle:
        config = json.load(handle)
    if config.get("format_version") != _FORMAT_VERSION:
        raise ModelError(
            f"unsupported model format {config.get('format_version')!r}")

    emb_spec = config["embeddings"]
    embeddings = WordEmbeddings(dim=emb_spec["dim"], seed=emb_spec["seed"],
                                group_weight=emb_spec["group_weight"])

    classifier_config = ClassifierConfig(**{
        **config["classifier"],
        "char_widths": tuple(config["classifier"]["char_widths"]),
    })
    nlidb_config = NLIDBConfig(
        column_name_appending=config["nlidb"]["column_name_appending"],
        header_encoding=config["nlidb"]["header_encoding"],
        extended_grammar=config["nlidb"].get("extended_grammar", False),
        classifier_epochs=config["nlidb"]["classifier_epochs"],
        seq2seq_epochs=config["nlidb"]["seq2seq_epochs"],
        seed=config["nlidb"]["seed"],
        seq2seq=Seq2SeqConfig(**config["seq2seq"]),
        annotator=AnnotatorConfig(**config["annotator"]),
        classifier=classifier_config,
    )

    translator = None
    if config["translator_kind"] == "TransformerTranslator":
        transformer_config = TransformerConfig(**config["transformer"])
        translator = TransformerTranslator(embeddings, transformer_config)
    model = NLIDB(embeddings, nlidb_config, translator=translator)

    load_module(model.annotator.column_classifier,
                path / "column_classifier.npz")
    load_module(model.annotator.value_classifier.mlp,
                path / "value_classifier.npz")
    load_module(model.translator, path / "translator.npz")

    # Mark components usable without retraining.
    model.annotator.column_classifier._trained = True
    model.annotator.value_classifier._trained = True
    model.annotator._fitted = True
    model.translator._fitted = True
    model._fitted = True
    return model
