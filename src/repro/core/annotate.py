"""Question annotation and annotated-SQL recovery (Sections IV & V-A).

The annotator converts a question ``q`` into its annotated form ``qᵃ``:
mentions of columns and values are wrapped with placeholder symbols
(``c_i`` / ``v_i``), indexed by order of first reference in the question
(Figure 1); the paper's two encoding refinements are implemented:

* **column name appending** — symbols are inserted *around* mentions,
  keeping the mention text (the ablation replaces the text:
  "symbol substitution");
* **table header encoding** — all headers ``g_1..g_k`` are appended so
  unmentioned multi-token columns can be produced as a single symbol.

The module also builds the annotated SQL ``sᵃ`` used as the seq2seq
training target, and performs the deterministic recovery ``sᵃ → s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnnotationError
from repro.sqlengine import Aggregate, Condition, Operator, Query, Table
from repro.text import tokenize
from repro.text.dependency import parse_dependency

__all__ = [
    "ColumnAnnotation",
    "ValueAnnotation",
    "AnnotatedQuestion",
    "build_annotated_sql",
    "recover_sql",
]

_AGG_TOKENS = {"max", "min", "count", "sum", "avg"}
_OP_TOKENS = {"=", ">", "<"}


@dataclass(frozen=True)
class ColumnAnnotation:
    """A detected column reference.

    ``span`` is the mention's ``[start, end)`` token range in the
    original question, or ``None`` for implicit mentions (the column is
    referenced only through a value).  ``index`` is the 1-based symbol
    index: this annotation is ``c_{index}``.
    """

    column: str
    index: int
    span: tuple[int, int] | None


@dataclass(frozen=True)
class ValueAnnotation:
    """A detected value span, paired with its column's symbol index."""

    column: str
    index: int
    span: tuple[int, int]
    surface: str


@dataclass
class AnnotatedQuestion:
    """The annotated form ``qᵃ`` of one question against one table."""

    question_tokens: list[str]
    table: Table
    columns: list[ColumnAnnotation] = field(default_factory=list)
    values: list[ValueAnnotation] = field(default_factory=list)

    def column_annotation(self, column: str) -> ColumnAnnotation | None:
        """Annotation for ``column`` (case-insensitive), if any."""
        target = column.lower()
        for ann in self.columns:
            if ann.column.lower() == target:
                return ann
        return None

    def value_annotation(self, column: str) -> ValueAnnotation | None:
        """Value annotation paired with ``column``, if any."""
        target = column.lower()
        for ann in self.values:
            if ann.column.lower() == target:
                return ann
        return None

    # ------------------------------------------------------------------
    # qᵃ token sequence
    # ------------------------------------------------------------------

    def annotated_tokens(self, append: bool = True,
                         header_encoding: bool = True) -> list[str]:
        """Render the annotated question token sequence.

        ``append=True`` is the paper's *column name appending* (symbols
        inserted before the mention text, text kept); ``append=False``
        is the *symbol substitution* ablation (mention text replaced).
        """
        inserts: dict[int, list[str]] = {}
        replaced: set[int] = set()
        for ann in self.columns:
            if ann.span is None:
                continue
            start, end = ann.span
            inserts.setdefault(start, []).append(f"c{ann.index}")
            if not append:
                replaced.update(range(start, end))
        for ann in self.values:
            start, end = ann.span
            inserts.setdefault(start, []).append(f"v{ann.index}")
            if not append:
                replaced.update(range(start, end))

        out: list[str] = []
        for i, token in enumerate(self.question_tokens):
            out.extend(inserts.get(i, []))
            if i not in replaced:
                out.append(token)
        # Symbols attached past the last token (span start == len).
        out.extend(inserts.get(len(self.question_tokens), []))

        if header_encoding:
            for j, name in enumerate(self.table.column_names, start=1):
                out.append(f"g{j}")
                out.extend(tokenize(name))
        return out

    # ------------------------------------------------------------------
    # Symbol resolution (used by recovery)
    # ------------------------------------------------------------------

    def column_for_symbol(self, symbol: str) -> str:
        """Resolve ``c{i}`` or ``g{j}`` to a column name."""
        if symbol.startswith("c"):
            index = _symbol_index(symbol)
            for ann in self.columns:
                if ann.index == index:
                    return ann.column
            raise AnnotationError(f"no column annotation with index {index}")
        if symbol.startswith("g"):
            index = _symbol_index(symbol)
            names = self.table.column_names
            if not 1 <= index <= len(names):
                raise AnnotationError(f"header symbol {symbol!r} out of range")
            return names[index - 1]
        raise AnnotationError(f"not a column symbol: {symbol!r}")

    def value_for_symbol(self, symbol: str) -> str:
        """Resolve ``v{i}`` to the literal question surface of the value."""
        index = _symbol_index(symbol)
        for ann in self.values:
            if ann.index == index:
                return ann.surface
        raise AnnotationError(f"no value annotation with index {index}")


def _symbol_index(symbol: str) -> int:
    try:
        return int(symbol[1:])
    except ValueError as exc:
        raise AnnotationError(f"malformed symbol {symbol!r}") from exc


# ----------------------------------------------------------------------
# Annotated SQL construction (training targets)
# ----------------------------------------------------------------------


def build_annotated_sql(annotation: AnnotatedQuestion, query: Query,
                        header_encoding: bool = True) -> list[str]:
    """Build the annotated SQL ``sᵃ`` token sequence for a gold query.

    Columns referenced in the annotation become ``c_i``; unreferenced
    columns become header symbols ``g_j`` (when enabled) or literal
    tokens; values with a detected span become ``v_i``, others stay
    literal (the copy mechanism handles them).
    """
    tokens = ["select"]
    if query.aggregate is not Aggregate.NONE:
        tokens.append(query.aggregate.value.lower())
    tokens.extend(_column_tokens(annotation, query.select_column,
                                 header_encoding))
    if query.conditions:
        tokens.append("where")
        for i, cond in enumerate(query.conditions):
            if i:
                tokens.append("and")
            tokens.extend(_column_tokens(annotation, cond.column,
                                         header_encoding))
            tokens.append(cond.operator.value)
            tokens.extend(_value_tokens(annotation, cond))
    return tokens


def _column_tokens(annotation: AnnotatedQuestion, column: str,
                   header_encoding: bool) -> list[str]:
    ann = annotation.column_annotation(column)
    if ann is not None:
        return [f"c{ann.index}"]
    if header_encoding:
        for j, name in enumerate(annotation.table.column_names, start=1):
            if name.lower() == column.lower():
                return [f"g{j}"]
    return tokenize(column)


def _value_tokens(annotation: AnnotatedQuestion, cond: Condition) -> list[str]:
    value_surface = tokenize(str(cond.value))
    ann = annotation.value_annotation(cond.column)
    if ann is not None and tokenize(ann.surface) == value_surface:
        return [f"v{ann.index}"]
    return value_surface


# ----------------------------------------------------------------------
# Recovery: annotated SQL tokens -> executable Query
# ----------------------------------------------------------------------


def recover_sql(tokens: list[str], annotation: AnnotatedQuestion) -> Query:
    """Convert a predicted ``sᵃ`` token sequence back to a real query.

    Raises :class:`AnnotationError` if the sequence does not follow the
    WikiSQL sketch grammar.
    """
    if not tokens or tokens[0] != "select":
        raise AnnotationError(f"annotated SQL must start with 'select': {tokens}")
    pos = 1
    aggregate = Aggregate.NONE
    if pos < len(tokens) and tokens[pos] in _AGG_TOKENS:
        aggregate = Aggregate.from_token(tokens[pos])
        pos += 1

    select_tokens, pos = _take_until(tokens, pos, {"where"})
    select_column = _resolve_column(select_tokens, annotation)

    conditions: list[Condition] = []
    if pos < len(tokens):
        pos += 1  # consume 'where'
        if pos >= len(tokens):
            raise AnnotationError("WHERE clause has no conditions")
        while pos < len(tokens):
            col_tokens, pos = _take_until(tokens, pos, _OP_TOKENS)
            if pos >= len(tokens):
                raise AnnotationError("condition missing operator")
            operator = Operator.from_token(tokens[pos])
            pos += 1
            val_tokens, pos = _take_until(tokens, pos, {"and"})
            if pos < len(tokens):
                pos += 1  # consume 'and'
            conditions.append(Condition(
                _resolve_column(col_tokens, annotation), operator,
                _resolve_value(val_tokens, annotation)))
    return Query(select_column=select_column, aggregate=aggregate,
                 conditions=conditions)


def _take_until(tokens: list[str], pos: int,
                stops: set[str]) -> tuple[list[str], int]:
    out = []
    while pos < len(tokens) and tokens[pos] not in stops:
        out.append(tokens[pos])
        pos += 1
    return out, pos


def _is_symbol(token: str, prefix: str) -> bool:
    return (len(token) >= 2 and token.startswith(prefix)
            and token[1:].isdigit())


def _resolve_column(parts: list[str], annotation: AnnotatedQuestion) -> str:
    if not parts:
        raise AnnotationError("empty column reference")
    if len(parts) == 1 and (_is_symbol(parts[0], "c")
                            or _is_symbol(parts[0], "g")):
        return annotation.column_for_symbol(parts[0])
    return " ".join(parts)


def _resolve_value(parts: list[str], annotation: AnnotatedQuestion):
    if not parts:
        raise AnnotationError("empty value reference")
    if len(parts) == 1 and _is_symbol(parts[0], "v"):
        text = annotation.value_for_symbol(parts[0])
    else:
        text = " ".join(parts)
    try:
        number = float(text)
    except ValueError:
        return text
    return int(number) if number.is_integer() else number
