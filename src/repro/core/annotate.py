"""Question annotation and annotated-SQL recovery (Sections IV & V-A).

The annotator converts a question ``q`` into its annotated form ``qᵃ``:
mentions of columns and values are wrapped with placeholder symbols
(``c_i`` / ``v_i``), indexed by order of first reference in the question
(Figure 1); the paper's two encoding refinements are implemented:

* **column name appending** — symbols are inserted *around* mentions,
  keeping the mention text (the ablation replaces the text:
  "symbol substitution");
* **table header encoding** — all headers ``g_1..g_k`` are appended so
  unmentioned multi-token columns can be produced as a single symbol.

The module also builds the annotated SQL ``sᵃ`` used as the seq2seq
training target, and performs the deterministic recovery ``sᵃ → s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnnotationError
from repro.sqlengine import (Aggregate, And, Condition, Having, Not, Operator,
                             Or, OrderBy, Query, SortDirection, Table)
from repro.text import tokenize
from repro.text.dependency import parse_dependency

__all__ = [
    "ColumnAnnotation",
    "ValueAnnotation",
    "AnnotatedQuestion",
    "build_annotated_sql",
    "recover_sql",
]

_AGG_TOKENS = {"max", "min", "count", "sum", "avg"}
_OP_TOKENS = {"=", ">", "<"}
# Tokens that only the extended grammar emits; their presence routes
# recovery through the extended parser, their absence keeps the legacy
# scan byte-identical.
_CLAUSE_TOKENS = {"group", "having", "order", "limit"}
_EXTENDED_MARKERS = {"or", "not", "(", ")"} | _CLAUSE_TOKENS
# Rendering precedence for the WHERE tree (must mirror ast._render_where
# so recover(build(q)) round-trips): OR < AND < NOT < leaf.
_PREC_OR, _PREC_AND, _PREC_NOT = 1, 2, 3


@dataclass(frozen=True)
class ColumnAnnotation:
    """A detected column reference.

    ``span`` is the mention's ``[start, end)`` token range in the
    original question, or ``None`` for implicit mentions (the column is
    referenced only through a value).  ``index`` is the 1-based symbol
    index: this annotation is ``c_{index}``.
    """

    column: str
    index: int
    span: tuple[int, int] | None


@dataclass(frozen=True)
class ValueAnnotation:
    """A detected value span, paired with its column's symbol index."""

    column: str
    index: int
    span: tuple[int, int]
    surface: str


@dataclass
class AnnotatedQuestion:
    """The annotated form ``qᵃ`` of one question against one table."""

    question_tokens: list[str]
    table: Table
    columns: list[ColumnAnnotation] = field(default_factory=list)
    values: list[ValueAnnotation] = field(default_factory=list)

    def column_annotation(self, column: str) -> ColumnAnnotation | None:
        """Annotation for ``column`` (case-insensitive), if any."""
        target = column.lower()
        for ann in self.columns:
            if ann.column.lower() == target:
                return ann
        return None

    def value_annotation(self, column: str) -> ValueAnnotation | None:
        """Value annotation paired with ``column``, if any."""
        target = column.lower()
        for ann in self.values:
            if ann.column.lower() == target:
                return ann
        return None

    # ------------------------------------------------------------------
    # qᵃ token sequence
    # ------------------------------------------------------------------

    def annotated_tokens(self, append: bool = True,
                         header_encoding: bool = True) -> list[str]:
        """Render the annotated question token sequence.

        ``append=True`` is the paper's *column name appending* (symbols
        inserted before the mention text, text kept); ``append=False``
        is the *symbol substitution* ablation (mention text replaced).
        """
        inserts: dict[int, list[str]] = {}
        replaced: set[int] = set()
        for ann in self.columns:
            if ann.span is None:
                continue
            start, end = ann.span
            inserts.setdefault(start, []).append(f"c{ann.index}")
            if not append:
                replaced.update(range(start, end))
        for ann in self.values:
            start, end = ann.span
            inserts.setdefault(start, []).append(f"v{ann.index}")
            if not append:
                replaced.update(range(start, end))

        out: list[str] = []
        for i, token in enumerate(self.question_tokens):
            out.extend(inserts.get(i, []))
            if i not in replaced:
                out.append(token)
        # Symbols attached past the last token (span start == len).
        out.extend(inserts.get(len(self.question_tokens), []))

        if header_encoding:
            for j, name in enumerate(self.table.column_names, start=1):
                out.append(f"g{j}")
                out.extend(tokenize(name))
        return out

    # ------------------------------------------------------------------
    # Symbol resolution (used by recovery)
    # ------------------------------------------------------------------

    def column_for_symbol(self, symbol: str) -> str:
        """Resolve ``c{i}`` or ``g{j}`` to a column name."""
        if symbol.startswith("c"):
            index = _symbol_index(symbol)
            for ann in self.columns:
                if ann.index == index:
                    return ann.column
            raise AnnotationError(f"no column annotation with index {index}")
        if symbol.startswith("g"):
            index = _symbol_index(symbol)
            names = self.table.column_names
            if not 1 <= index <= len(names):
                raise AnnotationError(f"header symbol {symbol!r} out of range")
            return names[index - 1]
        raise AnnotationError(f"not a column symbol: {symbol!r}")

    def value_for_symbol(self, symbol: str) -> str:
        """Resolve ``v{i}`` to the literal question surface of the value."""
        index = _symbol_index(symbol)
        for ann in self.values:
            if ann.index == index:
                return ann.surface
        raise AnnotationError(f"no value annotation with index {index}")


def _symbol_index(symbol: str) -> int:
    try:
        return int(symbol[1:])
    except ValueError as exc:
        raise AnnotationError(f"malformed symbol {symbol!r}") from exc


# ----------------------------------------------------------------------
# Annotated SQL construction (training targets)
# ----------------------------------------------------------------------


def build_annotated_sql(annotation: AnnotatedQuestion, query: Query,
                        header_encoding: bool = True) -> list[str]:
    """Build the annotated SQL ``sᵃ`` token sequence for a gold query.

    Columns referenced in the annotation become ``c_i``; unreferenced
    columns become header symbols ``g_j`` (when enabled) or literal
    tokens; values with a detected span become ``v_i``, others stay
    literal (the copy mechanism handles them).
    """
    tokens = ["select"]
    if query.aggregate is not Aggregate.NONE:
        tokens.append(query.aggregate.value.lower())
    tokens.extend(_column_tokens(annotation, query.select_column,
                                 header_encoding))
    if query.where is not None:
        tokens.append("where")
        tokens.extend(_where_expr_tokens(annotation, query.where,
                                         header_encoding))
    elif query.conditions:
        tokens.append("where")
        for i, cond in enumerate(query.conditions):
            if i:
                tokens.append("and")
            tokens.extend(_column_tokens(annotation, cond.column,
                                         header_encoding))
            tokens.append(cond.operator.value)
            tokens.extend(_value_tokens(annotation, cond))
    if query.group_by is not None:
        tokens.extend(["group", "by"])
        tokens.extend(_column_tokens(annotation, query.group_by,
                                     header_encoding))
    if query.having is not None:
        tokens.append("having")
        tokens.append(query.having.aggregate.value.lower())
        tokens.extend(_column_tokens(annotation, query.having.column,
                                     header_encoding))
        tokens.append(query.having.operator.value)
        tokens.extend(tokenize(str(query.having.value)))
    if query.order_by is not None:
        tokens.extend(["order", "by"])
        tokens.extend(_column_tokens(annotation, query.order_by.column,
                                     header_encoding))
        tokens.append(query.order_by.direction.value.lower())
    if query.limit is not None:
        tokens.extend(["limit", str(query.limit)])
    return tokens


def _where_expr_tokens(annotation: AnnotatedQuestion, expr,
                       header_encoding: bool,
                       parent_prec: int = 0) -> list[str]:
    """Annotated tokens of a WHERE tree, parenthesized like ``to_sql``."""
    if isinstance(expr, Condition):
        out = _column_tokens(annotation, expr.column, header_encoding)
        out = out + [expr.operator.value]
        out += _value_tokens(annotation, expr, any_match=True)
        return out
    if isinstance(expr, Not):
        out = ["not"] + _where_expr_tokens(annotation, expr.operand,
                                           header_encoding, _PREC_NOT)
        prec = _PREC_NOT
    else:
        joiner = "and" if isinstance(expr, And) else "or"
        prec = _PREC_AND if isinstance(expr, And) else _PREC_OR
        out = []
        for i, item in enumerate(expr.items):
            if i:
                out.append(joiner)
            out.extend(_where_expr_tokens(annotation, item,
                                          header_encoding, prec))
    return ["("] + out + [")"] if prec < parent_prec else out


def _column_tokens(annotation: AnnotatedQuestion, column: str,
                   header_encoding: bool) -> list[str]:
    ann = annotation.column_annotation(column)
    if ann is not None:
        return [f"c{ann.index}"]
    if header_encoding:
        for j, name in enumerate(annotation.table.column_names, start=1):
            if name.lower() == column.lower():
                return [f"g{j}"]
    return tokenize(column)


def _value_tokens(annotation: AnnotatedQuestion, cond: Condition,
                  any_match: bool = False) -> list[str]:
    value_surface = tokenize(str(cond.value))
    ann = annotation.value_annotation(cond.column)
    if ann is not None and tokenize(ann.surface) == value_surface:
        return [f"v{ann.index}"]
    if any_match:
        # Extended trees can reference two values of one column (range,
        # disjunction); match any annotation, not just the first — but
        # only when the symbol resolves back to this surface (value
        # indices pair with the column index, so a second value of the
        # same column shares its symbol and must stay literal for
        # recovery to be unambiguous).
        for other in annotation.values:
            if (other.column.lower() == cond.column.lower()
                    and tokenize(other.surface) == value_surface
                    and tokenize(annotation.value_for_symbol(
                        f"v{other.index}")) == value_surface):
                return [f"v{other.index}"]
    return value_surface


# ----------------------------------------------------------------------
# Recovery: annotated SQL tokens -> executable Query
# ----------------------------------------------------------------------


def recover_sql(tokens: list[str], annotation: AnnotatedQuestion) -> Query:
    """Convert a predicted ``sᵃ`` token sequence back to a real query.

    Sequences without extended-grammar markers take the legacy WikiSQL
    scan unchanged; markers (``or``/``not``/parens/clause keywords)
    route through the extended parser.  Raises
    :class:`AnnotationError` if the sequence follows neither grammar.
    """
    if not tokens or tokens[0] != "select":
        raise AnnotationError(f"annotated SQL must start with 'select': {tokens}")
    if any(t in _EXTENDED_MARKERS for t in tokens):
        return _recover_extended(tokens, annotation)
    pos = 1
    aggregate = Aggregate.NONE
    if pos < len(tokens) and tokens[pos] in _AGG_TOKENS:
        aggregate = Aggregate.from_token(tokens[pos])
        pos += 1

    select_tokens, pos = _take_until(tokens, pos, {"where"})
    select_column = _resolve_column(select_tokens, annotation)

    conditions: list[Condition] = []
    if pos < len(tokens):
        pos += 1  # consume 'where'
        if pos >= len(tokens):
            raise AnnotationError("WHERE clause has no conditions")
        while pos < len(tokens):
            col_tokens, pos = _take_until(tokens, pos, _OP_TOKENS)
            if pos >= len(tokens):
                raise AnnotationError("condition missing operator")
            operator = Operator.from_token(tokens[pos])
            pos += 1
            val_tokens, pos = _take_until(tokens, pos, {"and"})
            if pos < len(tokens):
                pos += 1  # consume 'and'
            conditions.append(Condition(
                _resolve_column(col_tokens, annotation), operator,
                _resolve_value(val_tokens, annotation)))
    return Query(select_column=select_column, aggregate=aggregate,
                 conditions=conditions)


def _recover_extended(tokens: list[str],
                      annotation: AnnotatedQuestion) -> Query:
    """Extended-grammar recovery, mirroring ``parser.parse_sql``."""
    pos = 1  # 'select' already checked
    aggregate = Aggregate.NONE
    if pos < len(tokens) and tokens[pos] in _AGG_TOKENS:
        aggregate = Aggregate.from_token(tokens[pos])
        pos += 1

    select_stops = {"where"} | _CLAUSE_TOKENS
    select_tokens, pos = _take_until(tokens, pos, select_stops)
    select_column = _resolve_column(select_tokens, annotation)

    where_expr = None
    if pos < len(tokens) and tokens[pos] == "where":
        pos += 1
        where_expr, pos = _recover_or_expr(tokens, pos, annotation)

    group_by = None
    if pos < len(tokens) and tokens[pos] == "group":
        pos += 1
        if pos >= len(tokens) or tokens[pos] != "by":
            raise AnnotationError("GROUP must be followed by BY")
        pos += 1
        col_tokens, pos = _take_until(tokens, pos,
                                      {"having", "order", "limit"})
        group_by = _resolve_column(col_tokens, annotation)

    having = None
    if pos < len(tokens) and tokens[pos] == "having":
        pos += 1
        if pos >= len(tokens) or tokens[pos] not in _AGG_TOKENS:
            raise AnnotationError("HAVING must start with an aggregate")
        having_agg = Aggregate.from_token(tokens[pos])
        pos += 1
        col_tokens, pos = _take_until(tokens, pos, _OP_TOKENS)
        if pos >= len(tokens):
            raise AnnotationError("HAVING condition missing operator")
        having_op = Operator.from_token(tokens[pos])
        pos += 1
        val_tokens, pos = _take_until(tokens, pos, {"order", "limit"})
        having = Having(having_agg, _resolve_column(col_tokens, annotation),
                        having_op, _resolve_value(val_tokens, annotation))

    order_by = None
    if pos < len(tokens) and tokens[pos] == "order":
        pos += 1
        if pos >= len(tokens) or tokens[pos] != "by":
            raise AnnotationError("ORDER must be followed by BY")
        pos += 1
        col_tokens, pos = _take_until(tokens, pos,
                                      {"asc", "desc", "limit"})
        direction = SortDirection.ASC
        if pos < len(tokens) and tokens[pos] in ("asc", "desc"):
            direction = SortDirection.from_token(tokens[pos])
            pos += 1
        order_by = OrderBy(_resolve_column(col_tokens, annotation), direction)

    limit = None
    if pos < len(tokens) and tokens[pos] == "limit":
        pos += 1
        if pos >= len(tokens):
            raise AnnotationError("LIMIT missing its value")
        value = _resolve_value([tokens[pos]], annotation)
        pos += 1
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise AnnotationError(f"LIMIT must be a non-negative integer, "
                                  f"got {value!r}")
        limit = value

    if pos < len(tokens):
        raise AnnotationError(
            f"trailing tokens after query: {tokens[pos:]!r}")
    return Query(select_column=select_column, aggregate=aggregate,
                 where=where_expr, group_by=group_by, having=having,
                 order_by=order_by, limit=limit)


def _recover_or_expr(tokens: list[str], pos: int,
                     annotation: AnnotatedQuestion):
    expr, pos = _recover_and_expr(tokens, pos, annotation)
    items = [expr]
    while pos < len(tokens) and tokens[pos] == "or":
        item, pos = _recover_and_expr(tokens, pos + 1, annotation)
        items.append(item)
    return (items[0] if len(items) == 1 else Or(tuple(items))), pos


def _recover_and_expr(tokens: list[str], pos: int,
                      annotation: AnnotatedQuestion):
    expr, pos = _recover_unary(tokens, pos, annotation)
    items = [expr]
    while pos < len(tokens) and tokens[pos] == "and":
        item, pos = _recover_unary(tokens, pos + 1, annotation)
        items.append(item)
    return (items[0] if len(items) == 1 else And(tuple(items))), pos


def _recover_unary(tokens: list[str], pos: int,
                   annotation: AnnotatedQuestion):
    if pos >= len(tokens):
        raise AnnotationError("WHERE clause ends unexpectedly")
    if tokens[pos] == "not":
        operand, pos = _recover_unary(tokens, pos + 1, annotation)
        return Not(operand), pos
    if tokens[pos] == "(":
        expr, pos = _recover_or_expr(tokens, pos + 1, annotation)
        if pos >= len(tokens) or tokens[pos] != ")":
            raise AnnotationError("unbalanced '(' in WHERE clause")
        return expr, pos + 1
    col_stops = _OP_TOKENS | {"and", "or", "(", ")"} | _CLAUSE_TOKENS
    col_tokens, pos = _take_until(tokens, pos, col_stops)
    if pos >= len(tokens) or tokens[pos] not in _OP_TOKENS:
        raise AnnotationError("condition missing operator")
    operator = Operator.from_token(tokens[pos])
    pos += 1
    val_stops = {"and", "or", ")"} | _CLAUSE_TOKENS
    val_tokens, pos = _take_until(tokens, pos, val_stops)
    return Condition(_resolve_column(col_tokens, annotation), operator,
                     _resolve_value(val_tokens, annotation)), pos


def _take_until(tokens: list[str], pos: int,
                stops: set[str]) -> tuple[list[str], int]:
    out = []
    while pos < len(tokens) and tokens[pos] not in stops:
        out.append(tokens[pos])
        pos += 1
    return out, pos


def _is_symbol(token: str, prefix: str) -> bool:
    return (len(token) >= 2 and token.startswith(prefix)
            and token[1:].isdigit())


def _resolve_column(parts: list[str], annotation: AnnotatedQuestion) -> str:
    if not parts:
        raise AnnotationError("empty column reference")
    if len(parts) == 1 and (_is_symbol(parts[0], "c")
                            or _is_symbol(parts[0], "g")):
        return annotation.column_for_symbol(parts[0])
    return " ".join(parts)


def _resolve_value(parts: list[str], annotation: AnnotatedQuestion):
    if not parts:
        raise AnnotationError("empty value reference")
    if len(parts) == 1 and _is_symbol(parts[0], "v"):
        text = annotation.value_for_symbol(parts[0])
    else:
        text = " ".join(parts)
    try:
        number = float(text)
    except ValueError:
        return text
    return int(number) if number.is_integer() else number
