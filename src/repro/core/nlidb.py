"""The end-to-end NLIDB: annotate → translate → recover.

:class:`NLIDB` is the library's main entry point.  It owns the
annotation pipeline (Section IV) and the annotated seq2seq translator
(Section V), trains both from (question, SQL, table) examples, and
translates new questions against *any* table — including tables and
domains never seen in training (the transfer-learnability claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Sequence

from repro.data.records import Example
from repro.errors import AnnotationError, ModelError, ReproError
from repro.pipeline import (
    OUTCOME_OK,
    WIRE_SCHEMA_VERSION,
    Deadline,
    Middleware,
    Pipeline,
    PipelineContext,
    StageTrace,
    artifact_cache_middleware,
)
from repro.sqlengine import Query, Table
from repro.text import KnowledgeBase, WordEmbeddings, tokenize

from repro.core.annotate import (
    AnnotatedQuestion,
    build_annotated_sql,
    recover_sql,
)
from repro.core.annotator import Annotator, AnnotatorConfig
from repro.core.mention import ClassifierConfig
from repro.core.seq2seq.model import (
    AnnotatedSeq2Seq,
    Seq2SeqConfig,
    TrainingPair,
)

__all__ = ["NLIDBConfig", "NLIDB", "Translation"]


@dataclass
class NLIDBConfig:
    """Top-level configuration, including the paper's ablation switches."""

    # Annotation encoding (Section V-A).
    column_name_appending: bool = True   # ablation: symbol substitution
    header_encoding: bool = True         # ablation: no table headers
    # Extended SQL grammar (OR/NOT, GROUP BY/HAVING, ORDER BY/LIMIT):
    # adds the extra structural tokens to the translator's output space.
    # Mirrored into ``seq2seq.extended_grammar`` at construction so the
    # candidate sets of every decode path agree.
    extended_grammar: bool = False
    # Inference fast path: route lockstep decoding and frozen-classifier
    # scoring through the float32 arena kernels (reused buffers, no
    # autodiff graph).  Training always stays float64.  Mirrored into
    # the seq2seq config and the column classifier at construction.
    arena_inference: bool = True
    # Score the frozen column-classifier head from int8 weights with
    # per-row scales (two-plane residual quantization; scores stay
    # within 1e-4 of float32).  Requires ``arena_inference``.
    quantized_scoring: bool = False
    # Translator.
    seq2seq: Seq2SeqConfig = field(default_factory=Seq2SeqConfig)
    # Annotation pipeline.
    annotator: AnnotatorConfig = field(default_factory=AnnotatorConfig)
    classifier: ClassifierConfig | None = None
    # Training budgets.
    classifier_epochs: int = 5
    classifier_lr: float = 2e-3
    value_epochs: int = 30
    seq2seq_epochs: int = 10
    seq2seq_lr: float = 2e-3
    seed: int = 0


@dataclass
class Translation:
    """The result of translating one question."""

    query: Query | None
    annotated_tokens: list[str]
    predicted_annotated_sql: list[str]
    annotation: AnnotatedQuestion
    error: str | None = None
    #: Per-stage :class:`~repro.pipeline.StageRecord` tuple from the run
    #: that produced this translation (excluded from outcome equality).
    trace: tuple = field(default=(), repr=False, compare=False)

    def signature(self) -> tuple:
        """A hashable summary of the translation *outcome*.

        Two translations with equal signatures produced the same
        canonical query (or the same failure), the same annotated
        question tokens, and the same predicted annotated SQL —
        regardless of which table *object* they were computed against.
        The serving layer's differential tests compare cached/batched
        results to direct ones through this view.
        """
        return (
            self.query.canonical() if self.query is not None else None,
            tuple(self.annotated_tokens),
            tuple(self.predicted_annotated_sql),
            self.error,
        )

    def result_equal(self, other: "Translation") -> bool:
        """Stable outcome equality (see :meth:`signature`)."""
        return self.signature() == other.signature()

    def to_dict(self) -> dict:
        """JSON-ready view of the translation (versioned wire schema).

        The envelope shape is documented in DESIGN.md ("Wire schema");
        ``schema_version`` is :data:`~repro.pipeline.WIRE_SCHEMA_VERSION`.
        """
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "sql": self.query.to_sql() if self.query is not None else None,
            "annotated_tokens": list(self.annotated_tokens),
            "predicted_annotated_sql": list(self.predicted_annotated_sql),
            "error": self.error,
            "trace": [record.to_dict() for record in self.trace],
        }


class NLIDB:
    """Natural language interface for databases (the paper's system)."""

    def __init__(self, embeddings: WordEmbeddings | None = None,
                 config: NLIDBConfig | None = None,
                 knowledge: KnowledgeBase | None = None,
                 translator=None):
        self.embeddings = embeddings or WordEmbeddings(dim=32)
        self.config = config or NLIDBConfig()
        if self.config.extended_grammar:
            self.config.seq2seq.extended_grammar = True
        self.config.seq2seq.arena_inference = self.config.arena_inference
        classifier_config = (self.config.classifier
                             or ClassifierConfig(word_dim=self.embeddings.dim))
        self.annotator = Annotator(self.embeddings,
                                   config=self.config.annotator,
                                   classifier_config=classifier_config,
                                   knowledge=knowledge)
        self.annotator.column_classifier.arena_inference = \
            self.config.arena_inference
        self.annotator.column_classifier.quantized_scoring = \
            self.config.quantized_scoring
        # The translator is pluggable: the "+Transformer" ablation swaps
        # in a TransformerTranslator with the same fit/translate API.
        self.translator = translator or AnnotatedSeq2Seq(self.embeddings,
                                                         self.config.seq2seq)
        # Optional observer called as ``stage_timer(stage, seconds)``
        # with stage ∈ {"annotate", "translate", "recover"} on every
        # :meth:`translate` call — the serving layer's metrics hook.
        self.stage_timer: Callable[[str, float], None] | None = None
        self._pipeline: Pipeline | None = None  # built lazily, stateless
        self._fitted = False

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(self, examples: list[Example], verbose: bool = False,
            reuse_annotator: Annotator | None = None) -> "NLIDB":
        """Train the annotator, then the translator on annotated pairs.

        ``reuse_annotator`` lets the paper's translator-side ablations
        share one trained annotation pipeline instead of retraining it.
        """
        if not examples:
            raise ModelError("fit() needs training examples")
        cfg = self.config
        if reuse_annotator is not None:
            self.annotator = reuse_annotator
        else:
            self.annotator.fit(examples,
                               classifier_epochs=cfg.classifier_epochs,
                               classifier_lr=cfg.classifier_lr,
                               value_epochs=cfg.value_epochs, seed=cfg.seed,
                               verbose=verbose)
        pairs = []
        skipped = 0
        for example in examples:
            try:
                pairs.append(self.training_pair(example))
            except ReproError:
                skipped += 1
        if not pairs:
            raise ModelError("annotation failed on every training example")
        if verbose and skipped:
            print(f"[nlidb] skipped {skipped} unannotatable examples")
        self.translator.fit(pairs, epochs=cfg.seq2seq_epochs,
                            lr=cfg.seq2seq_lr, shuffle_seed=cfg.seed,
                            verbose=verbose)
        self._fitted = True
        return self

    def training_pair(self, example: Example) -> TrainingPair:
        """Annotate one example into a (source, target) training pair."""
        annotation = self.annotator.annotate(example.question_tokens,
                                             example.table)
        source = annotation.annotated_tokens(
            append=self.config.column_name_appending,
            header_encoding=self.config.header_encoding)
        target = build_annotated_sql(
            annotation, example.query,
            header_encoding=self.config.header_encoding)
        return TrainingPair(source=source, target=target,
                            header_tokens=self.header_tokens(example.table),
                            extra_symbols=self._symbols(annotation))

    @staticmethod
    def _symbols(annotation: AnnotatedQuestion) -> tuple[str, ...]:
        symbols = [f"c{ann.index}" for ann in annotation.columns]
        symbols.extend(f"v{ann.index}" for ann in annotation.values)
        return tuple(symbols)

    @staticmethod
    def header_tokens(table: Table) -> list[str]:
        """Tokenized column headers fed to the translator's copy space.

        Public so the serving layer's batch path can compute them once
        per table and pass them to :meth:`predict_annotated`.
        """
        tokens: list[str] = []
        for name in table.column_names:
            tokens.extend(tokenize(name))
        return tokens

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def annotate(self, question: str | list[str], table: Table,
                 mode: str = "full") -> AnnotatedQuestion:
        """Stage 1, ``q → qᵃ``: run the annotation pipeline.

        ``mode="context_free"`` restricts detection to the paper's
        context-free matchers (exact / edit / semantic / knowledge
        column mentions, exact cell values), skipping the trained
        classifiers — the serving layer's degraded-annotation rung.
        """
        return self.annotator.annotate(question, table, mode=mode)

    def predict_annotated(self, annotation: AnnotatedQuestion,
                          beam_width: int | None = None,
                          header_tokens: list[str] | None = None,
                          token_vectors: dict | None = None,
                          ) -> tuple[list[str], list[str]]:
        """Stage 2, ``qᵃ → sᵃ``: encode and beam-decode one annotation.

        Returns ``(source_tokens, predicted_annotated_sql)``.  Pass
        ``header_tokens`` to reuse a precomputed header encoding (the
        serving batch path computes it once per table per batch) and
        ``token_vectors`` to reuse the schema cache's frozen candidate
        embeddings — only forwarded when the translator advertises
        ``accepts_token_vectors`` (the Transformer ablation does not).
        """
        source = annotation.annotated_tokens(
            append=self.config.column_name_appending,
            header_encoding=self.config.header_encoding)
        if header_tokens is None:
            header_tokens = self.header_tokens(annotation.table)
        kwargs = {}
        if token_vectors is not None and getattr(
                self.translator, "accepts_token_vectors", False):
            kwargs["token_vectors"] = token_vectors
        predicted = self.translator.translate(
            source, header_tokens,
            extra_symbols=self._symbols(annotation), beam_width=beam_width,
            **kwargs)
        return source, predicted

    def recover(self, source: list[str], predicted: list[str],
                annotation: AnnotatedQuestion) -> Translation:
        """Stage 3, ``sᵃ → s``: resolve symbols into a real query.

        Never raises on model errors: a failed recovery yields a
        :class:`Translation` with ``query=None`` and the error message,
        which the metrics count as incorrect.
        """
        try:
            query = recover_sql(predicted, annotation)
        except AnnotationError as exc:
            return Translation(query=None, annotated_tokens=source,
                               predicted_annotated_sql=predicted,
                               annotation=annotation, error=str(exc))
        return Translation(query=query, annotated_tokens=source,
                           predicted_annotated_sql=predicted,
                           annotation=annotation)

    # ------------------------------------------------------------------
    # The stage graph
    # ------------------------------------------------------------------

    def pipeline(self, mode: str = "full",
                 middleware: Sequence[Middleware] = ()) -> Pipeline:
        """The annotate → translate → recover stage graph.

        The base graph is mode-independent (``mode`` travels on the
        context) and cached on the instance; ``mode`` is validated here
        so misconfigured callers fail before running anything.  Extra
        ``middleware`` wraps outermost around the built-in artifact
        cache — the serving layer adds deadline checks and fault
        injection this way.
        """
        self.annotator.annotation_pipeline(mode)  # validates the mode
        if self._pipeline is None:
            self._pipeline = Pipeline(
                (_AnnotateStage(self), _TranslateStage(self),
                 _RecoverStage(self)),
                middleware=(artifact_cache_middleware,), name="nlidb")
        if middleware:
            return self._pipeline.with_middleware(*middleware)
        return self._pipeline

    def context(self, question: str | list[str], table: Table,
                mode: str = "full", beam_width: int | None = None,
                header_tokens: list[str] | None = None,
                deadline: Deadline | None = None,
                trace: StageTrace | None = None, attempt: int = 1,
                artifacts: dict | None = None) -> PipelineContext:
        """Build the per-request context :meth:`pipeline` executes over.

        Pass ``artifacts`` (e.g. a precomputed ``annotation``) to let
        the artifact-cache middleware skip the stages that would
        recompute them; pass ``trace`` to accumulate several runs into
        one request-level trace.
        """
        tokens = (tokenize(question) if isinstance(question, str)
                  else list(question))
        return PipelineContext(
            question_tokens=tokens, table=table, mode=mode,
            beam_width=beam_width, header_tokens=header_tokens,
            deadline=deadline, attempt=attempt,
            artifacts=dict(artifacts) if artifacts else {},
            trace=trace if trace is not None else StageTrace())

    def translate(self, question: str | list[str], table: Table,
                  beam_width: int | None = None,
                  mode: str = "full") -> Translation:
        """Translate a question into an executable SQL query.

        Runs the annotate → translate → recover :meth:`pipeline`; the
        resulting :class:`Translation` carries the run's per-stage
        trace, and an attached :attr:`stage_timer` observes each
        completed top-level stage's wall time.  ``mode`` selects the
        annotation pipeline (see :meth:`annotate`).
        """
        if not self._fitted:
            raise ModelError("translate() called before fit()")
        ctx = self.context(question, table, mode=mode,
                           beam_width=beam_width)
        try:
            self.pipeline(mode).run(ctx)
        finally:
            self._emit_timings(ctx.trace)
        translation = ctx.artifacts["translation"]
        translation.trace = tuple(ctx.trace)
        return translation

    def _emit_timings(self, records) -> None:
        # Completed top-level stages only: sub-stages carry dotted
        # names, and failed stages were never reported by the pre-graph
        # implementation either.
        if self.stage_timer is None:
            return
        for record in records:
            if record.outcome == OUTCOME_OK and "." not in record.stage:
                self.stage_timer(record.stage, record.wall_s)

    # ------------------------------------------------------------------
    # Cross-request coalescing (the serving scheduler's kernel surface)
    # ------------------------------------------------------------------

    @property
    def coalescible(self) -> bool:
        """Whether this model supports cross-request stage coalescing.

        Requires a fitted model whose translator exposes the lockstep
        ``translate_many`` batch decoder.  Wrappers that must see every
        stage individually (e.g. fault injection) override this to
        ``False``.
        """
        return (self._fitted
                and callable(getattr(self.translator, "translate_many", None))
                and getattr(getattr(self.translator, "config", None),
                            "lockstep_beam", False))

    def cohort_artifacts(self, requests: list[tuple[list[str], "Table",
                                                    int | None]],
                         ) -> tuple[list[dict | None], dict]:
        """Run the coalescible stages of several full-mode requests.

        ``requests`` is a list of ``(question_tokens, table,
        beam_width)`` triples.  The per-request phases (value detection,
        the column matcher plan, adversarial localization, mention
        resolution, symbol allocation) run per lane exactly as the
        sequential pipeline would; the two model-bound hot stages are
        coalesced across lanes — one
        :meth:`~repro.core.mention.ColumnMentionClassifier.
        score_columns_multi` pass over every lane's undecided columns
        and one :meth:`~repro.core.seq2seq.AnnotatedSeq2Seq.
        translate_many` lockstep decode over every lane's beams.

        Returns ``(lanes, stats)``: per lane either a pre-seeded
        artifacts dict (``value_spans`` … ``source``/``predicted``) the
        stage pipeline will consume via its artifact cache, or ``None``
        when that lane failed and must be recomputed sequentially so the
        ordinary error/ladder accounting applies.  ``stats`` reports the
        batch shape and the shared-kernel wall times.
        """
        annotator = self.annotator
        cfg = annotator.config
        n = len(requests)
        lanes: list[dict | None] = [None] * n
        plans: list[tuple | None] = [None] * n
        stats = {"lanes": n, "score_batch": 0}

        start = perf_counter()
        # Phase A (per lane): values, matcher plan, schema encoding.
        for i, (tokens, table, _width) in enumerate(requests):
            try:
                if not tokens:
                    raise ModelError("cannot annotate an empty question")
                value_spans = annotator._detect_values(tokens, table,
                                                       use_classifier=True)
                blocked = {j for cand in value_spans
                           for j in range(cand.start, cand.end)}
                schema = None
                if (cfg.use_column_classifier
                        and annotator.column_classifier._trained):
                    schema, _status = annotator.schema_encoding(table)
                scored, needed = annotator.column_scoring_plan(
                    tokens, table, blocked, use_classifier=True)
                plans[i] = (value_spans, blocked, schema, scored, needed)
            except ReproError:
                plans[i] = None

        # Phase B (coalesced): one classifier pass over every lane's
        # undecided columns, each lane attending over its own question.
        scoring = [(i, plans[i][4]) for i in range(n)
                   if plans[i] is not None and plans[i][4]]
        probs_by_lane: dict[int, object] = {}
        if scoring:
            stats["score_batch"] = sum(len(needed) for _i, needed in scoring)
            items = [(requests[i][0], plans[i][2].encoded_subset(needed))
                     for i, needed in scoring]
            try:
                batched = annotator.column_classifier.score_columns_multi(
                    items)
                probs_by_lane = {i: probs for (i, _needed), probs
                                 in zip(scoring, batched)}
            except ReproError:
                for i, _needed in scoring:
                    plans[i] = None

        # Phase C (per lane): localization, resolution, symbols, source.
        decode_requests = []
        decode_lanes = []
        for i, (tokens, table, width) in enumerate(requests):
            if plans[i] is None:
                continue
            value_spans, blocked, schema, scored, needed = plans[i]
            try:
                column_spans = annotator.columns_from_scores(
                    tokens, blocked, scored, needed,
                    probs_by_lane.get(i, ()))
                assignments, _strategy = annotator.resolve_assignments(
                    tokens, column_spans, value_spans)
                annotation = annotator._allocate_symbols(
                    tokens, table, column_spans, assignments)
                source = annotation.annotated_tokens(
                    append=self.config.column_name_appending,
                    header_encoding=self.config.header_encoding)
                header_tokens = (schema.header_tokens if schema is not None
                                 else self.header_tokens(table))
                token_vectors = None
                if schema is not None and getattr(
                        self.translator, "accepts_token_vectors", False):
                    token_vectors = (
                        schema.token_vectors32 if getattr(
                            getattr(self.translator, "config", None),
                            "arena_inference", False)
                        else schema.token_vectors)
                lanes[i] = {
                    "value_spans": value_spans,
                    "column_spans": column_spans,
                    "assignments": assignments,
                    "annotation": annotation,
                    "source": source,
                }
                decode_requests.append({
                    "source": source, "header_tokens": header_tokens,
                    "extra_symbols": self._symbols(annotation),
                    "beam_width": width, "token_vectors": token_vectors,
                })
                decode_lanes.append(i)
            except ReproError:
                lanes[i] = None
        stats["annotate_s"] = perf_counter() - start

        # Phase D (coalesced): one lockstep decode over every live lane.
        start = perf_counter()
        if decode_requests:
            try:
                predictions = self.translator.translate_many(decode_requests)
                for i, predicted in zip(decode_lanes, predictions):
                    lanes[i]["predicted"] = predicted
            except ReproError:
                for i in decode_lanes:
                    lanes[i] = None
        stats["decode_s"] = perf_counter() - start
        stats["failed"] = sum(1 for lane in lanes if lane is None)
        return lanes, stats

    def inference_info(self) -> dict:
        """Active inference configuration and arena occupancy.

        Surfaced by ``TranslationService.stats()`` / the ``serve-stats``
        CLI so operators can see which numeric path is live.
        """
        arenas = {}
        translator_arena = getattr(self.translator, "arena", None)
        if translator_arena is not None:
            arenas["seq2seq"] = translator_arena.stats()
        classifier = self.annotator.column_classifier
        if getattr(classifier, "arena", None) is not None:
            arenas["classifier"] = classifier.arena.stats()
        return {
            "arena_inference": self.config.arena_inference,
            "dtype": "float32" if self.config.arena_inference else "float64",
            "quantized_scoring": self.config.quantized_scoring,
            "arenas": arenas,
        }

    def to_sql(self, question: str | list[str], table: Table) -> str:
        """Convenience: question text in, SQL text out.

        Raises :class:`AnnotationError` when recovery fails.
        """
        translation = self.translate(question, table)
        if translation.query is None:
            raise AnnotationError(
                f"could not recover SQL: {translation.error}")
        return translation.query.to_sql()


# ----------------------------------------------------------------------
# Stages (the paper's three steps as pipeline nodes)
# ----------------------------------------------------------------------


class _NLIDBStage:
    """Base for stages bound to one (stateless w.r.t. requests) NLIDB."""

    __slots__ = ("nlidb",)

    def __init__(self, nlidb: NLIDB):
        self.nlidb = nlidb


class _AnnotateStage(_NLIDBStage):
    """Step 1, ``q → qᵃ``: the annotator's sub-pipeline, composed.

    Runs the annotation sub-stages on the *same* context, so their
    dotted records (``annotate.values`` …) land in the same trace; any
    escaping error is re-labelled with this stage's top-level name,
    which is the granularity the serving ladder routes on.
    """

    name = "annotate"
    provides = ("annotation",)

    def run(self, ctx: PipelineContext) -> None:
        try:
            self.nlidb.annotator.annotation_pipeline(ctx.mode).run(ctx)
        except ReproError as exc:
            exc.stage = self.name
            raise


class _TranslateStage(_NLIDBStage):
    """Step 2, ``qᵃ → sᵃ``: encode and beam-decode the annotation."""

    name = "translate"
    provides = ("source", "predicted")

    def run(self, ctx: PipelineContext) -> None:
        # Reuse the schema cache's warm artifact when one exists: its
        # header tokens and frozen candidate-token vectors are
        # question-independent.  peek never *builds* an encoding, so
        # degraded modes that skipped the annotator's cache stay cheap.
        header_tokens = ctx.header_tokens
        token_vectors = None
        schema = self.nlidb.annotator.peek_schema_encoding(ctx.table)
        if schema is not None:
            if header_tokens is None:
                header_tokens = schema.header_tokens
            token_vectors = (
                schema.token_vectors32 if getattr(
                    getattr(self.nlidb.translator, "config", None),
                    "arena_inference", False)
                else schema.token_vectors)
        source, predicted = self.nlidb.predict_annotated(
            ctx.artifacts["annotation"], beam_width=ctx.beam_width,
            header_tokens=header_tokens, token_vectors=token_vectors)
        ctx.artifacts["source"] = source
        ctx.artifacts["predicted"] = predicted
        decode = getattr(self.nlidb.translator, "last_decode", None) or {}
        ctx.note(source_len=len(source), predicted_len=len(predicted),
                 schema_encoding="hit" if schema is not None else "none",
                 **({"decode_path": decode["path"],
                     "decode_steps": decode["steps"]} if decode else {}))


class _RecoverStage(_NLIDBStage):
    """Step 3, ``sᵃ → s``: resolve symbols into an executable query."""

    name = "recover"
    provides = ("translation",)

    def run(self, ctx: PipelineContext) -> None:
        translation = self.nlidb.recover(
            ctx.artifacts["source"], ctx.artifacts["predicted"],
            ctx.artifacts["annotation"])
        ctx.artifacts["translation"] = translation
        ctx.note(recovered=translation.error is None)
