"""The end-to-end NLIDB: annotate → translate → recover.

:class:`NLIDB` is the library's main entry point.  It owns the
annotation pipeline (Section IV) and the annotated seq2seq translator
(Section V), trains both from (question, SQL, table) examples, and
translates new questions against *any* table — including tables and
domains never seen in training (the transfer-learnability claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.records import Example
from repro.errors import AnnotationError, ModelError, ReproError
from repro.sqlengine import Query, Table
from repro.text import KnowledgeBase, WordEmbeddings, tokenize

from repro.core.annotate import (
    AnnotatedQuestion,
    build_annotated_sql,
    recover_sql,
)
from repro.core.annotator import Annotator, AnnotatorConfig
from repro.core.mention import ClassifierConfig
from repro.core.seq2seq.model import (
    AnnotatedSeq2Seq,
    Seq2SeqConfig,
    TrainingPair,
)

__all__ = ["NLIDBConfig", "NLIDB", "Translation"]


@dataclass
class NLIDBConfig:
    """Top-level configuration, including the paper's ablation switches."""

    # Annotation encoding (Section V-A).
    column_name_appending: bool = True   # ablation: symbol substitution
    header_encoding: bool = True         # ablation: no table headers
    # Translator.
    seq2seq: Seq2SeqConfig = field(default_factory=Seq2SeqConfig)
    # Annotation pipeline.
    annotator: AnnotatorConfig = field(default_factory=AnnotatorConfig)
    classifier: ClassifierConfig | None = None
    # Training budgets.
    classifier_epochs: int = 5
    classifier_lr: float = 2e-3
    value_epochs: int = 30
    seq2seq_epochs: int = 10
    seq2seq_lr: float = 2e-3
    seed: int = 0


@dataclass
class Translation:
    """The result of translating one question."""

    query: Query | None
    annotated_tokens: list[str]
    predicted_annotated_sql: list[str]
    annotation: AnnotatedQuestion
    error: str | None = None


class NLIDB:
    """Natural language interface for databases (the paper's system)."""

    def __init__(self, embeddings: WordEmbeddings | None = None,
                 config: NLIDBConfig | None = None,
                 knowledge: KnowledgeBase | None = None,
                 translator=None):
        self.embeddings = embeddings or WordEmbeddings(dim=32)
        self.config = config or NLIDBConfig()
        classifier_config = (self.config.classifier
                             or ClassifierConfig(word_dim=self.embeddings.dim))
        self.annotator = Annotator(self.embeddings,
                                   config=self.config.annotator,
                                   classifier_config=classifier_config,
                                   knowledge=knowledge)
        # The translator is pluggable: the "+Transformer" ablation swaps
        # in a TransformerTranslator with the same fit/translate API.
        self.translator = translator or AnnotatedSeq2Seq(self.embeddings,
                                                         self.config.seq2seq)
        self._fitted = False

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(self, examples: list[Example], verbose: bool = False,
            reuse_annotator: Annotator | None = None) -> "NLIDB":
        """Train the annotator, then the translator on annotated pairs.

        ``reuse_annotator`` lets the paper's translator-side ablations
        share one trained annotation pipeline instead of retraining it.
        """
        if not examples:
            raise ModelError("fit() needs training examples")
        cfg = self.config
        if reuse_annotator is not None:
            self.annotator = reuse_annotator
        else:
            self.annotator.fit(examples,
                               classifier_epochs=cfg.classifier_epochs,
                               classifier_lr=cfg.classifier_lr,
                               value_epochs=cfg.value_epochs, seed=cfg.seed,
                               verbose=verbose)
        pairs = []
        skipped = 0
        for example in examples:
            try:
                pairs.append(self.training_pair(example))
            except ReproError:
                skipped += 1
        if not pairs:
            raise ModelError("annotation failed on every training example")
        if verbose and skipped:
            print(f"[nlidb] skipped {skipped} unannotatable examples")
        self.translator.fit(pairs, epochs=cfg.seq2seq_epochs,
                            lr=cfg.seq2seq_lr, shuffle_seed=cfg.seed,
                            verbose=verbose)
        self._fitted = True
        return self

    def training_pair(self, example: Example) -> TrainingPair:
        """Annotate one example into a (source, target) training pair."""
        annotation = self.annotator.annotate(example.question_tokens,
                                             example.table)
        source = annotation.annotated_tokens(
            append=self.config.column_name_appending,
            header_encoding=self.config.header_encoding)
        target = build_annotated_sql(
            annotation, example.query,
            header_encoding=self.config.header_encoding)
        return TrainingPair(source=source, target=target,
                            header_tokens=self._header_tokens(example.table),
                            extra_symbols=self._symbols(annotation))

    @staticmethod
    def _symbols(annotation: AnnotatedQuestion) -> tuple[str, ...]:
        symbols = [f"c{ann.index}" for ann in annotation.columns]
        symbols.extend(f"v{ann.index}" for ann in annotation.values)
        return tuple(symbols)

    @staticmethod
    def _header_tokens(table: Table) -> list[str]:
        tokens: list[str] = []
        for name in table.column_names:
            tokens.extend(tokenize(name))
        return tokens

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def translate(self, question: str | list[str], table: Table,
                  beam_width: int | None = None) -> Translation:
        """Translate a question into an executable SQL query.

        Never raises on model errors: a failed recovery yields a
        :class:`Translation` with ``query=None`` and the error message,
        which the metrics count as incorrect.
        """
        if not self._fitted:
            raise ModelError("translate() called before fit()")
        annotation = self.annotator.annotate(question, table)
        source = annotation.annotated_tokens(
            append=self.config.column_name_appending,
            header_encoding=self.config.header_encoding)
        predicted = self.translator.translate(
            source, self._header_tokens(table),
            extra_symbols=self._symbols(annotation), beam_width=beam_width)
        try:
            query = recover_sql(predicted, annotation)
        except AnnotationError as exc:
            return Translation(query=None, annotated_tokens=source,
                               predicted_annotated_sql=predicted,
                               annotation=annotation, error=str(exc))
        return Translation(query=query, annotated_tokens=source,
                           predicted_annotated_sql=predicted,
                           annotation=annotation)

    def to_sql(self, question: str | list[str], table: Table) -> str:
        """Convenience: question text in, SQL text out.

        Raises :class:`AnnotationError` when recovery fails.
        """
        translation = self.translate(question, table)
        if translation.query is None:
            raise AnnotationError(
                f"could not recover SQL: {translation.error}")
        return translation.query.to_sql()
