"""Mining database-specific natural language metadata (Section II).

The paper introduces per-column mention phrases ``P_c`` and describing
expressions ``D_c`` as *manually provided* knowledge, injected as extra
mention candidates.  This module automates the collection: given
(question, SQL) training examples, it mines the n-grams most associated
with each column (a PMI-style contrast of questions whose SQL uses the
column against those whose SQL does not) and loads them into a
:class:`~repro.text.lexicon.KnowledgeBase`.

The mined knowledge is optional and orthogonal to the learned models —
exactly the role the paper assigns it.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.data.records import Example
from repro.errors import DataError
from repro.text import KnowledgeBase, is_stop_word

__all__ = ["MinedPhrase", "mine_column_phrases", "build_knowledge_base"]


@dataclass(frozen=True)
class MinedPhrase:
    """One mined mention phrase with its association statistics."""

    column: str
    phrase: str
    score: float          # smoothed P(phrase | column) / P(phrase | ¬column)
    support: int          # questions containing the phrase whose SQL uses c


def _ngrams(tokens: list[str], max_n: int) -> set[str]:
    out = set()
    for n in range(1, max_n + 1):
        for i in range(len(tokens) - n + 1):
            window = tokens[i:i + n]
            # A useful phrase has at least one content word and no
            # punctuation-only tokens.
            if all(not any(ch.isalnum() for ch in t) for t in window):
                continue
            if all(is_stop_word(t) for t in window):
                continue
            out.add(" ".join(window))
    return out


def mine_column_phrases(examples: list[Example], max_ngram: int = 4,
                        min_support: int = 2, top_k: int = 5,
                        min_score: float = 3.0) -> list[MinedPhrase]:
    """Mine candidate ``P_c`` phrases from training examples.

    For every column ``c`` occurring in some example's SQL, n-grams of
    the questions are contrasted: phrases much more frequent in
    questions that use ``c`` than in those that do not become mention
    phrase candidates.  Value surfaces are excluded (they vary per
    question and are not *column* mentions).
    """
    if not examples:
        raise DataError("mine_column_phrases() needs examples")

    phrase_with: dict[str, Counter] = defaultdict(Counter)
    phrase_without: Counter = Counter()
    questions_with: Counter = Counter()
    total_questions = 0

    for example in examples:
        tokens = example.question_tokens
        value_surfaces = {str(c.value).lower()
                          for c in example.query.conditions}
        grams = {g for g in _ngrams(tokens, max_ngram)
                 if g not in value_surfaces}
        columns = {example.query.select_column.lower()}
        columns.update(c.column.lower() for c in example.query.conditions)
        total_questions += 1
        for column in columns:
            questions_with[column] += 1
            for gram in grams:
                phrase_with[column][gram] += 1
        for gram in grams:
            phrase_without[gram] += 1  # corpus-wide count

    mined: list[MinedPhrase] = []
    for column, counter in phrase_with.items():
        n_with = questions_with[column]
        n_without = max(total_questions - n_with, 1)
        scored = []
        for gram, count in counter.items():
            if count < min_support:
                continue
            rate_with = (count + 0.5) / (n_with + 1.0)
            out_count = phrase_without[gram] - count
            rate_without = (out_count + 0.5) / (n_without + 1.0)
            score = rate_with / rate_without
            if score >= min_score:
                scored.append(MinedPhrase(column, gram, score, count))
        scored.sort(key=lambda m: (-m.score, -m.support, m.phrase))
        # Prefer longer, more specific phrases among near-equals.
        mined.extend(scored[:top_k])
    mined.sort(key=lambda m: (m.column, -m.score))
    return mined


def build_knowledge_base(examples: list[Example], max_ngram: int = 4,
                         min_support: int = 2, top_k: int = 5,
                         min_score: float = 3.0) -> KnowledgeBase:
    """Mine phrases and package them as a :class:`KnowledgeBase`."""
    knowledge = KnowledgeBase()
    for mined in mine_column_phrases(examples, max_ngram=max_ngram,
                                     min_support=min_support, top_k=top_k,
                                     min_score=min_score):
        knowledge.add(mined.column, mention_phrases=[mined.phrase])
    return knowledge
