"""Token embedding and candidate-set machinery for the translator.

The paper ties embedding weights between the input and output layers and
represents annotation symbols (``c_i``/``v_i``/``g_j``) as the
concatenation of a *type* embedding and an *index* embedding
(Section VII-A.2).  We reproduce that exactly:

* regular words use the frozen, lexicon-structured hash embeddings
  (the GloVe stand-in) — any string has a vector, so unseen domains
  never hit an OOV wall (this is what enables zero-shot transfer);
* symbols use trainable type ⊕ index embeddings;
* the output layer scores *candidate tokens* by the dot product of
  their (tied) embedding with a projection of the decoder state, so the
  output space adapts per example instead of being a fixed vocabulary.

The candidate set of an example is: structural SQL tokens + the symbols
present in the input + the input tokens themselves + the table's header
tokens.  Every valid annotated-SQL token is guaranteed to be in it.
"""

from __future__ import annotations

import re

import numpy as np

from repro.errors import VocabularyError
from repro.nn import Embedding, Module, Tensor, concat, current_generation
from repro.text import WordEmbeddings

__all__ = ["STRUCTURAL_TOKENS", "EXTENDED_STRUCTURAL_TOKENS",
           "structural_tokens", "EOS", "SOS", "is_symbol", "symbol_parts",
           "TokenEmbedder", "build_candidates"]

EOS = "<eos>"
SOS = "<sos>"

STRUCTURAL_TOKENS = [
    "select", "where", "and", "=", ">", "<",
    "max", "min", "count", "sum", "avg", EOS,
]

# Extra structural tokens of the extended grammar (OR/NOT with
# parentheses, GROUP BY + HAVING, ORDER BY + LIMIT).  Kept separate so
# the legacy candidate list stays byte-identical; appended right after
# the base list when enabled, so their indices are stable too.  LIMIT
# counts and HAVING thresholds are digits surfaced in the question, so
# the copy mechanism covers them.
EXTENDED_STRUCTURAL_TOKENS = [
    "or", "not", "(", ")",
    "group", "by", "having", "order", "limit", "asc", "desc",
]


def structural_tokens(extended: bool = False) -> list[str]:
    """The structural token list, with or without the extended grammar."""
    out = list(STRUCTURAL_TOKENS)
    if extended:
        out.extend(EXTENDED_STRUCTURAL_TOKENS)
    return out

_SYMBOL_RE = re.compile(r"^([cvg])(\d+)$")
_TYPE_IDS = {"c": 0, "v": 1, "g": 2}


def is_symbol(token: str) -> bool:
    """Whether a token is an annotation symbol (``c1``, ``v2``, ``g3``)."""
    return _SYMBOL_RE.match(token) is not None


def symbol_parts(token: str) -> tuple[str, int]:
    """Split a symbol into (type, index); raises on non-symbols."""
    match = _SYMBOL_RE.match(token)
    if not match:
        raise VocabularyError(f"not an annotation symbol: {token!r}")
    return match.group(1), int(match.group(2))


class TokenEmbedder(Module):
    """Tied token embeddings: frozen hash vectors + trainable symbols."""

    def __init__(self, embeddings: WordEmbeddings, max_symbol_index: int = 30,
                 seed: int = 0):
        super().__init__()
        if embeddings.dim % 2 != 0:
            raise VocabularyError("embedding dim must be even for symbols")
        self.embeddings = embeddings
        self.dim = embeddings.dim
        self.max_symbol_index = max_symbol_index
        rng = np.random.default_rng(seed)
        half = self.dim // 2
        self.type_embedding = Embedding(len(_TYPE_IDS), half, rng)
        self.index_embedding = Embedding(max_symbol_index + 1, half, rng)
        self._np_cache: dict[str, np.ndarray] = {}
        self._np_gen = -1

    def embed(self, token: str) -> Tensor:
        """Embedding of one token, shape ``(1, dim)``."""
        match = _SYMBOL_RE.match(token)
        if match:
            kind, index = match.group(1), int(match.group(2))
            if index > self.max_symbol_index:
                raise VocabularyError(
                    f"symbol index {index} exceeds maximum "
                    f"{self.max_symbol_index}")
            type_vec = self.type_embedding([_TYPE_IDS[kind]])
            index_vec = self.index_embedding([index])
            return concat([type_vec, index_vec], axis=-1)
        return Tensor(self.embeddings.vector(token).reshape(1, self.dim))

    def embed_sequence(self, tokens: list[str]) -> list[Tensor]:
        """Per-token embeddings for a sequence."""
        return [self.embed(t) for t in tokens]

    def embed_np(self, token: str) -> np.ndarray:
        """Float32 ``(dim,)`` twin of :meth:`embed` with a persistent cache.

        Rows are cached keyed by the model generation (symbol halves are
        trainable), so warm decodes hit the dict and allocate nothing.
        """
        gen = current_generation()
        if self._np_gen != gen:
            self._np_cache.clear()
            self._np_gen = gen
        vec = self._np_cache.get(token)
        if vec is None:
            match = _SYMBOL_RE.match(token)
            if match:
                kind, index = match.group(1), int(match.group(2))
                if index > self.max_symbol_index:
                    raise VocabularyError(
                        f"symbol index {index} exceeds maximum "
                        f"{self.max_symbol_index}")
                vec = np.concatenate(
                    [self.type_embedding.table32()[_TYPE_IDS[kind]],
                     self.index_embedding.table32()[index]])
            else:
                vec = self.embeddings.vector(token).astype(np.float32)
            self._np_cache[token] = vec
        return vec

    def candidate_matrix(self, candidates: list[str]) -> Tensor:
        """Stacked embeddings of candidate tokens, shape ``(C, dim)``."""
        if not candidates:
            raise VocabularyError("candidate set must be non-empty")
        return concat([self.embed(t) for t in candidates], axis=0)


def build_candidates(input_tokens: list[str], header_tokens: list[str],
                     extra_symbols: list[str] | tuple[str, ...] = (),
                     extended: bool = False) -> list[str]:
    """Candidate output tokens for one example (deduplicated, ordered).

    Structural tokens come first so their indices are stable (the
    extended-grammar tokens directly after the base set when enabled);
    then the input tokens (symbols and words), header-name tokens, and
    any extra symbols — e.g. ``c_i`` of *implicit* column mentions,
    which appear in the annotated SQL even though they never occur in
    ``qᵃ`` (Figure 1(d): county is referenced only through ``v2``).
    """
    structural = structural_tokens(extended)
    seen = set(structural)
    out = list(structural)
    for token in list(input_tokens) + list(header_tokens) + list(extra_symbols):
        if token not in seen:
            seen.add(token)
            out.append(token)
    return out
