"""Transformer encoder-decoder — the "+Transformer" ablation.

Table II's last row replaces the GRU seq2seq with a Transformer while
keeping the same annotation.  We implement a small pre-norm Transformer
(multi-head self/cross attention, sinusoidal positions) that shares the
:class:`~repro.core.seq2seq.vocab.TokenEmbedder` and the candidate
output space, but uses plain softmax generation — no copy mechanism —
matching the vanilla architecture the paper plugged in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError, ShapeError
from repro.nn import (
    Adam,
    LayerNorm,
    Linear,
    Module,
    Tensor,
    clip_grad_norm,
    concat,
    no_grad,
)
from repro.nn.functional import masked_softmax, softmax
from repro.text import WordEmbeddings

from repro.core.seq2seq.vocab import EOS, SOS, TokenEmbedder, build_candidates

__all__ = ["TransformerConfig", "TransformerTranslator"]


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Standard sinusoidal positional encodings, shape ``(length, dim)``."""
    positions = np.arange(length)[:, None]
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    table = np.zeros((length, dim))
    table[:, 0::2] = np.sin(positions * div)
    table[:, 1::2] = np.cos(positions * div[: (dim + 1) // 2])
    return table


@dataclass
class TransformerConfig:
    """Hyper-parameters of the Transformer ablation."""

    heads: int = 4
    layers: int = 1
    ff_hidden: int = 64
    max_decode_len: int = 26
    beam_width: int = 5
    grad_clip: float = 5.0
    max_symbol_index: int = 30
    seed: int = 0
    #: Include the extended-grammar structural tokens in candidate sets
    #: (mirrors ``Seq2SeqConfig.extended_grammar``).
    extended_grammar: bool = False


class MultiHeadAttention(Module):
    """Scaled dot-product attention with ``heads`` heads (batch-free)."""

    def __init__(self, dim: int, heads: int, rng: np.random.Generator):
        super().__init__()
        if dim % heads != 0:
            raise ShapeError(f"dim {dim} not divisible by heads {heads}")
        self.dim = dim
        self.heads = heads
        self.dk = dim // heads
        self.wq = Linear(dim, dim, rng)
        self.wk = Linear(dim, dim, rng)
        self.wv = Linear(dim, dim, rng)
        self.wo = Linear(dim, dim, rng)

    def forward(self, queries: Tensor, keys: Tensor, values: Tensor,
                mask: np.ndarray | None = None) -> Tensor:
        tq, tk = queries.shape[0], keys.shape[0]
        q = self.wq(queries).reshape(tq, self.heads, self.dk).transpose(1, 0, 2)
        k = self.wk(keys).reshape(tk, self.heads, self.dk).transpose(1, 0, 2)
        v = self.wv(values).reshape(tk, self.heads, self.dk).transpose(1, 0, 2)
        scores = (q @ k.transpose(0, 2, 1)) * (1.0 / np.sqrt(self.dk))
        if mask is not None:
            weights = masked_softmax(
                scores, np.broadcast_to(mask, (self.heads, tq, tk)), axis=-1)
        else:
            weights = softmax(scores, axis=-1)
        out = (weights @ v).transpose(1, 0, 2).reshape(tq, self.dim)
        return self.wo(out)


class _Block(Module):
    """One pre-norm transformer block (self-attn [+ cross-attn] + FFN)."""

    def __init__(self, dim: int, heads: int, ff_hidden: int,
                 rng: np.random.Generator, cross: bool):
        super().__init__()
        self.self_attn = MultiHeadAttention(dim, heads, rng)
        self.norm1 = LayerNorm(dim)
        self.cross_attn = MultiHeadAttention(dim, heads, rng) if cross else None
        self.norm2 = LayerNorm(dim) if cross else None
        self.ff1 = Linear(dim, ff_hidden, rng)
        self.ff2 = Linear(ff_hidden, dim, rng)
        self.norm3 = LayerNorm(dim)

    def forward(self, x: Tensor, memory: Tensor | None = None,
                self_mask: np.ndarray | None = None) -> Tensor:
        normed = self.norm1(x)
        x = x + self.self_attn(normed, normed, normed, mask=self_mask)
        if self.cross_attn is not None:
            if memory is None:
                raise ModelError("decoder block needs encoder memory")
            x = x + self.cross_attn(self.norm2(x), memory, memory)
        x = x + self.ff2(self.ff1(self.norm3(x)).relu())
        return x


class TransformerTranslator(Module):
    """Annotated-question → annotated-SQL Transformer."""

    def __init__(self, embeddings: WordEmbeddings,
                 config: TransformerConfig | None = None):
        super().__init__()
        self.config = config or TransformerConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.embedder = TokenEmbedder(embeddings,
                                      max_symbol_index=cfg.max_symbol_index,
                                      seed=cfg.seed)
        dim = self.embedder.dim
        self.encoder_blocks = [
            _Block(dim, cfg.heads, cfg.ff_hidden, rng, cross=False)
            for _ in range(cfg.layers)]
        self.decoder_blocks = [
            _Block(dim, cfg.heads, cfg.ff_hidden, rng, cross=True)
            for _ in range(cfg.layers)]
        self.enc_norm = LayerNorm(dim)
        self.dec_norm = LayerNorm(dim)
        self.out_proj = Linear(dim, dim, rng)
        self._fitted = False

    # ------------------------------------------------------------------

    def _embed_with_positions(self, tokens: list[str]) -> Tensor:
        matrix = concat(self.embedder.embed_sequence(tokens), axis=0)
        return matrix + Tensor(
            sinusoidal_positions(len(tokens), self.embedder.dim))

    def encode(self, tokens: list[str]) -> Tensor:
        """Encoder memory, shape ``(T, dim)``."""
        if not tokens:
            raise ModelError("cannot encode an empty sequence")
        x = self._embed_with_positions(tokens)
        for block in self.encoder_blocks:
            x = block(x)
        return self.enc_norm(x)

    def _decode_states(self, target_in: list[str], memory: Tensor) -> Tensor:
        x = self._embed_with_positions(target_in)
        n = len(target_in)
        causal = np.tril(np.ones((n, n), dtype=bool))
        for block in self.decoder_blocks:
            x = block(x, memory=memory, self_mask=causal)
        return self.dec_norm(x)

    def _logits(self, states: Tensor, candidate_matrix: Tensor) -> Tensor:
        """(T_dec, C) generation logits via tied candidate embeddings."""
        return self.out_proj(states) @ candidate_matrix.T

    # ------------------------------------------------------------------

    def loss(self, source: list[str], target: list[str],
             header_tokens: list[str],
             extra_symbols: tuple[str, ...] = ()) -> Tensor:
        """Teacher-forced mean NLL for one pair."""
        candidates = build_candidates(source, header_tokens, extra_symbols,
                                      extended=self.config.extended_grammar)
        cand_index = {t: i for i, t in enumerate(candidates)}
        full_target = list(target) + [EOS]
        for token in full_target:
            if token not in cand_index:
                raise ModelError(
                    f"target token {token!r} missing from candidate set")
        memory = self.encode(source)
        states = self._decode_states([SOS] + list(target), memory)
        logits = self._logits(states,
                              self.embedder.candidate_matrix(candidates))
        log_probs = logits - logits.max(axis=-1, keepdims=True).detach()
        log_probs = log_probs - log_probs.exp().sum(
            axis=-1, keepdims=True).log()
        picked = log_probs[np.arange(len(full_target)),
                           [cand_index[t] for t in full_target]]
        return -picked.mean()

    def reachable(self, pair) -> bool:
        """Whether every target token is in the pair's candidate set."""
        candidates = set(build_candidates(
            pair.source, pair.header_tokens, pair.extra_symbols,
            extended=self.config.extended_grammar))
        return all(t in candidates for t in list(pair.target) + [EOS])

    def fit(self, pairs, epochs: int = 10, lr: float = 1e-3,
            shuffle_seed: int = 0, verbose: bool = False) -> list[float]:
        """Train on :class:`~repro.core.seq2seq.model.TrainingPair` items.

        Pairs with unreachable targets are skipped (``skipped_pairs``).
        """
        total_input = len(pairs)
        pairs = [p for p in pairs if self.reachable(p)]
        self.skipped_pairs = total_input - len(pairs)
        if not pairs:
            raise ModelError("fit() needs training pairs")
        optimizer = Adam(self.parameters(), lr=lr)
        rng = np.random.default_rng(shuffle_seed)
        order = np.arange(len(pairs))
        losses = []
        for epoch in range(epochs):
            rng.shuffle(order)
            total = 0.0
            for idx in order:
                pair = pairs[idx]
                optimizer.zero_grad()
                loss = self.loss(pair.source, pair.target,
                                 pair.header_tokens, pair.extra_symbols)
                loss.backward()
                clip_grad_norm(self.parameters(), self.config.grad_clip)
                optimizer.step()
                total += loss.item()
            losses.append(total / len(pairs))
            if verbose:
                print(f"[transformer] epoch {epoch + 1}: "
                      f"loss={losses[-1]:.4f}")
        self._fitted = True
        return losses

    def translate(self, source: list[str], header_tokens: list[str],
                  extra_symbols: tuple[str, ...] = (),
                  beam_width: int | None = None) -> list[str]:
        """Greedy-beam decode of the annotated SQL token sequence."""
        width = beam_width or self.config.beam_width
        candidates = build_candidates(source, header_tokens, extra_symbols,
                                      extended=self.config.extended_grammar)
        with no_grad():
            memory = self.encode(source)
            candidate_matrix = self.embedder.candidate_matrix(candidates)
            beams = [(0.0, [])]
            finished = []
            for _ in range(self.config.max_decode_len):
                expansions = []
                for nll, tokens in beams:
                    states = self._decode_states([SOS] + tokens, memory)
                    logits = self._logits(
                        states, candidate_matrix).numpy()[-1]
                    probs = np.exp(logits - logits.max())
                    probs = probs / probs.sum()
                    for ci in np.argsort(probs)[::-1][:width]:
                        token = candidates[int(ci)]
                        new_nll = nll - float(np.log(probs[ci] + 1e-12))
                        if token == EOS:
                            finished.append((new_nll / (len(tokens) + 1),
                                             tokens))
                        else:
                            expansions.append((new_nll, tokens + [token]))
                if not expansions:
                    break
                expansions.sort(key=lambda b: b[0])
                beams = expansions[:width]
            if not finished:
                finished = [(nll / max(len(t), 1), t) for nll, t in beams]
        finished.sort(key=lambda b: b[0])
        return finished[0][1]
