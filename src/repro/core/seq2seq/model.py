"""The annotated seq2seq translator (Section V-B).

Encoder: stacked bidirectional GRU with per-layer affine transforms.
Decoder: attentive GRU (Bahdanau) with the paper's custom copy
mechanism::

    p(s_i | qᵃ, s_{1:i-1}) ∝ exp(U[d_i, β_i]) + M_i
    M_i[token] = Σ_{j : input_j = token} exp(e_ij)

i.e. the generation distribution gets extra unnormalized mass from the
attention scores of input positions holding the same token, *added
before normalization* (unlike the vanilla softmax-only formulation —
the distinction the paper emphasizes).

Output scores are tied to token embeddings: ``U[d_i, β_i]`` is projected
into embedding space and scored against each candidate token's
embedding, so the output space follows the example (symbols + input
tokens + headers) instead of a fixed vocabulary — this is what makes
zero-shot transfer to unseen domains possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.errors import ModelError
from repro.nn import (
    Adam,
    BiGRU,
    GRUCell,
    InferenceArena,
    Linear,
    Module,
    Tensor,
    clip_grad_norm,
    concat,
    no_grad,
    softmax_rows_,
    tanh_,
)
from repro.text import WordEmbeddings

from repro.core.seq2seq.vocab import (
    EOS,
    TokenEmbedder,
    build_candidates,
)

__all__ = ["Seq2SeqConfig", "AnnotatedSeq2Seq", "TrainingPair"]


@dataclass
class Seq2SeqConfig:
    """Hyper-parameters of the translator.

    The paper uses hidden 400 (encoder) / 800 (decoder) with GloVe-300;
    we scale down proportionally for the numpy substrate.  The "half
    hidden size" ablation divides ``hidden`` by two.
    """

    hidden: int = 48
    encoder_layers: int = 1
    attention_dim: int = 48
    max_decode_len: int = 26
    beam_width: int = 5
    use_copy: bool = True
    grad_clip: float = 5.0
    max_symbol_index: int = 30
    seed: int = 0
    #: Include the extended-grammar structural tokens (OR/NOT, GROUP
    #: BY/HAVING, ORDER BY/LIMIT, parens) in every candidate set.  Off
    #: by default so legacy models keep a byte-identical output space.
    extended_grammar: bool = False
    #: Advance all live beams through one batched decoder/attention call
    #: per step (the vectorized fast path).  The per-beam Python loop is
    #: kept as the differential-testing reference.
    lockstep_beam: bool = True
    #: Run lockstep inference through the float32 arena kernels (reused
    #: preallocated buffers, no autodiff graph, no per-step heap
    #: allocation).  Training and the per-beam reference stay float64.
    arena_inference: bool = True


@dataclass
class TrainingPair:
    """One (annotated question, annotated SQL) training pair.

    ``extra_symbols`` are annotation symbols that can appear in the
    target but not in the source (implicit column mentions).
    """

    source: list[str]
    target: list[str]
    header_tokens: list[str]
    extra_symbols: tuple[str, ...] = ()


@dataclass
class _DecodeLane:
    """Per-request beam-search state inside :meth:`translate_many`.

    The tensor path stores ``memory``/``memory_proj`` as Tensors and
    ``copy_map`` as the ``(C, T)`` matrix; the arena path stores float32
    arena views for everything and ``copy_map`` transposed to ``(T, C)``
    (the layout its in-place copy-mass matmul wants).
    """

    candidates: list[str]
    memory: Tensor | np.ndarray
    memory_proj: Tensor | np.ndarray
    cand_rows: np.ndarray
    copy_map: np.ndarray
    d_mat: np.ndarray
    ctx_mat: np.ndarray
    width: int
    steps: int = 0
    done: bool = False

    def __post_init__(self):
        # (nll, tokens, prev token) per live beam; finished (nll, tokens).
        self.meta: list[tuple[float, list[str], str | None]] = [(0.0, [], None)]
        self.finished: list[tuple[float, list[str]]] = []


class AnnotatedSeq2Seq(Module):
    """Sequence-to-sequence translation of ``qᵃ`` into ``sᵃ``."""

    #: The serving/pipeline layers may pass precomputed frozen token
    #: vectors (header + structural tokens) to :meth:`translate`.
    accepts_token_vectors = True

    def __init__(self, embeddings: WordEmbeddings,
                 config: Seq2SeqConfig | None = None):
        super().__init__()
        self.config = config or Seq2SeqConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.embedder = TokenEmbedder(embeddings,
                                      max_symbol_index=cfg.max_symbol_index,
                                      seed=cfg.seed)
        dim = self.embedder.dim
        self.encoder = BiGRU(dim, cfg.hidden, rng,
                             num_layers=cfg.encoder_layers)
        enc_dim = 2 * cfg.hidden
        self.decoder_cell = GRUCell(dim + enc_dim, enc_dim, rng)
        self.init_proj = Linear(enc_dim, enc_dim, rng)
        # Bahdanau attention: e_ij = v^T tanh(W2 h_j + W3 d_i).
        self.att_memory = Linear(enc_dim, cfg.attention_dim, rng, bias=False)
        self.att_query = Linear(enc_dim, cfg.attention_dim, rng)
        self.att_v = Linear(cfg.attention_dim, 1, rng, bias=False)
        # Output: project [d_i, β_i] into embedding space (tied weights).
        self.out_proj = Linear(2 * enc_dim, dim, rng)
        #: Reused inference buffers for the float32 arena fast path —
        #: grown on the first request of each shape class, then steady.
        self.arena = InferenceArena()
        # Optional observer called as ``timing_hook(stage, seconds)``
        # with stage ∈ {"encode", "beam_search"} on every translate()
        # call (the serving layer's latency histograms attach here).
        self.timing_hook = None
        #: Facts about the most recent :meth:`translate` decode (path,
        #: steps, beam width, candidate count) — the translate pipeline
        #: stage copies these into its trace record.
        self.last_decode: dict = {}
        self._fitted = False

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, tokens: list[str]) -> list[Tensor]:
        """Encoder states ``h_j``, one ``(1, 2*hidden)`` tensor per token."""
        if not tokens:
            raise ModelError("cannot encode an empty sequence")
        return self.encoder(self.embedder.embed_sequence(tokens))

    def _initial_state(self, states: list[Tensor]) -> Tensor:
        hidden = self.config.hidden
        fwd_last = states[-1][:, :hidden]
        bwd_first = states[0][:, hidden:]
        return self.init_proj(concat([fwd_last, bwd_first], axis=-1)).tanh()

    # ------------------------------------------------------------------
    # One decoder step
    # ------------------------------------------------------------------

    def _attend(self, memory: Tensor, memory_proj: Tensor,
                d: Tensor) -> tuple[Tensor, Tensor]:
        """Return (raw attention scores e_i (T,), context β_i (1, enc_dim))."""
        scores = self.att_v(
            (memory_proj + self.att_query(d)).tanh()).reshape(memory.shape[0])
        # The softmax shift is invariant here, so detaching it is exact.
        shifted = scores - scores.max(axis=0, keepdims=True).detach()
        weights = shifted.exp()
        weights = weights / weights.sum(axis=0, keepdims=True)
        context = weights.reshape(1, memory.shape[0]) @ memory
        return scores, context

    def _step_distribution(self, d: Tensor, context: Tensor,
                           attention_scores: Tensor, copy_map: np.ndarray,
                           candidate_matrix: Tensor) -> Tensor:
        """Probability over candidates: ``∝ exp(U[d,β]) + M_i``.

        Generation logits and copy scores must share ONE numerical
        shift: the normalization is only shift-invariant (and the
        detached shift only gradient-exact) when the same constant
        multiplies both mass terms.
        """
        projected = self.out_proj(concat([d, context], axis=-1))
        gen_logits = candidate_matrix @ projected.reshape(projected.shape[1])
        if self.config.use_copy:
            shift = max(float(gen_logits.numpy().max()),
                        float(attention_scores.numpy().max()))
            mass = ((gen_logits - shift).exp()
                    + Tensor(copy_map) @ (attention_scores - shift).exp())
        else:
            shift = float(gen_logits.numpy().max())
            mass = (gen_logits - shift).exp()
        return mass / mass.sum(axis=0, keepdims=True)

    @staticmethod
    def _copy_map(candidates: list[str],
                  input_tokens: list[str]) -> np.ndarray:
        """(C, T) matrix: 1 where candidate c equals input token at j."""
        index = {token: i for i, token in enumerate(candidates)}
        copy_map = np.zeros((len(candidates), len(input_tokens)))
        for j, token in enumerate(input_tokens):
            i = index.get(token)
            if i is not None:
                copy_map[i, j] = 1.0
        return copy_map

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def loss(self, pair: TrainingPair) -> Tensor:
        """Teacher-forced negative log-likelihood of one pair."""
        candidates = build_candidates(pair.source, pair.header_tokens,
                                      pair.extra_symbols,
                                      extended=self.config.extended_grammar)
        cand_index = {t: i for i, t in enumerate(candidates)}
        target = list(pair.target) + [EOS]
        for token in target:
            if token not in cand_index:
                raise ModelError(
                    f"target token {token!r} missing from candidate set")

        states = self.encode(pair.source)
        memory = concat(states, axis=0)
        memory_proj = self.att_memory(memory)
        candidate_matrix = self.embedder.candidate_matrix(candidates)
        copy_map = self._copy_map(candidates, pair.source)

        d = self._initial_state(states)
        _, context = self._attend(memory, memory_proj, d)
        nll = None
        prev_token = None
        for token in target:
            prev_emb = (self.embedder.embed(prev_token) if prev_token
                        else Tensor.zeros(1, self.embedder.dim))
            d = self.decoder_cell(concat([prev_emb, context], axis=-1), d)
            att_scores, context = self._attend(memory, memory_proj, d)
            probs = self._step_distribution(d, context, att_scores, copy_map,
                                            candidate_matrix)
            step_nll = -(probs[cand_index[token]] + 1e-12).log()
            nll = step_nll if nll is None else nll + step_nll
            prev_token = token
        return nll / len(target)

    def reachable(self, pair: TrainingPair) -> bool:
        """Whether every target token is in the pair's candidate set.

        Symbol-substitution annotation can erase literal value tokens
        from the source, making some targets unproducible — those pairs
        are skipped by :meth:`fit` (and are part of why the substitution
        ablation underperforms).
        """
        candidates = set(build_candidates(
            pair.source, pair.header_tokens, pair.extra_symbols,
            extended=self.config.extended_grammar))
        return all(t in candidates for t in list(pair.target) + [EOS])

    def fit(self, pairs: list[TrainingPair], epochs: int = 10,
            lr: float = 2e-3, shuffle_seed: int = 0,
            verbose: bool = False) -> list[float]:
        """Train with Adam + gradient clipping; returns per-epoch loss.

        Pairs with unreachable targets are skipped (counted in
        ``self.skipped_pairs``).
        """
        total_input = len(pairs)
        pairs = [p for p in pairs if self.reachable(p)]
        self.skipped_pairs = total_input - len(pairs)
        if verbose and self.skipped_pairs:
            print(f"[seq2seq] skipped {self.skipped_pairs} pairs with "
                  f"unreachable targets")
        if not pairs:
            raise ModelError("fit() needs at least one training pair")
        optimizer = Adam(self.parameters(), lr=lr)
        rng = np.random.default_rng(shuffle_seed)
        order = np.arange(len(pairs))
        losses = []
        for epoch in range(epochs):
            rng.shuffle(order)
            total = 0.0
            for idx in order:
                optimizer.zero_grad()
                loss = self.loss(pairs[idx])
                loss.backward()
                clip_grad_norm(self.parameters(), self.config.grad_clip)
                optimizer.step()
                total += loss.item()
            losses.append(total / len(pairs))
            if verbose:
                print(f"[seq2seq] epoch {epoch + 1}: loss={losses[-1]:.4f}")
        self._fitted = True
        return losses

    # ------------------------------------------------------------------
    # Inference (beam search)
    # ------------------------------------------------------------------

    @staticmethod
    def _top_k(probs: np.ndarray, k: int) -> np.ndarray:
        """Indices of the ``k`` largest entries, best first.

        ``argpartition`` + a small sort instead of a full argsort of the
        candidate vocabulary.  Ties break toward the lower candidate
        index (partition indices are pre-sorted, the rank sort is
        stable), so the per-beam and lockstep paths — which both route
        through here — expand candidates in the same order.
        """
        if k >= probs.shape[0]:
            idx = np.arange(probs.shape[0])
        else:
            idx = np.sort(np.argpartition(probs, -k)[-k:])
        return idx[np.argsort(-probs[idx], kind="stable")]

    def _attend_batch(self, memory: Tensor, memory_proj: Tensor,
                      d_batch: Tensor, query_proj: Tensor | None = None,
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`_attend`: B decoder states against one memory.

        Returns numpy ``(scores (B, T), contexts (B, enc_dim))`` — the
        lockstep decoder is inference-only, so no graph is needed.
        ``query_proj`` optionally supplies ``att_query(d_batch)`` rows
        computed as part of a larger (cross-request) projection.
        """
        t = memory.shape[0]
        b = d_batch.shape[0]
        attn = self.config.attention_dim
        if query_proj is None:
            query_proj = self.att_query(d_batch)
        hidden = (memory_proj.reshape(1, t, attn)
                  + query_proj.reshape(b, 1, attn)).tanh()
        scores = self.att_v(hidden.reshape(b * t, attn)).numpy().reshape(b, t)
        weights = np.exp(scores - scores.max(axis=1, keepdims=True))
        weights /= weights.sum(axis=1, keepdims=True)
        return scores, weights @ memory.numpy()

    def _step_distribution_batch(self, d_batch: np.ndarray,
                                 contexts: np.ndarray,
                                 attention_scores: np.ndarray,
                                 copy_map: np.ndarray,
                                 candidate_matrix: np.ndarray,
                                 projected: np.ndarray | None = None,
                                 ) -> np.ndarray:
        """Batched :meth:`_step_distribution`: ``(B, C)`` probabilities.

        Row ``b`` applies the paper's ``∝ exp(U[d,β]) + M_i`` rule with
        the same shared shift (max over that row's generation logits and
        attention scores) the per-beam path uses.  ``projected``
        optionally supplies ``out_proj([d, β])`` rows computed as part
        of a larger (cross-request) projection.
        """
        if projected is None:
            projected = self.out_proj(
                Tensor(np.concatenate([d_batch, contexts], axis=1))).numpy()
        gen_logits = projected @ candidate_matrix.T
        if self.config.use_copy:
            shift = np.maximum(gen_logits.max(axis=1),
                               attention_scores.max(axis=1))[:, None]
            mass = (np.exp(gen_logits - shift)
                    + np.exp(attention_scores - shift) @ copy_map.T)
        else:
            shift = gen_logits.max(axis=1, keepdims=True)
            mass = np.exp(gen_logits - shift)
        return mass / mass.sum(axis=1, keepdims=True)

    def _inference_candidate_matrix(self, candidates: list[str],
                                    token_vectors: dict | None) -> Tensor:
        """The ``(C, dim)`` tied-embedding matrix, from cached vectors.

        Bit-identical to :meth:`TokenEmbedder.candidate_matrix`: frozen
        hash vectors come straight from ``token_vectors`` (or the
        embedder) as numpy rows, symbols still go through the trainable
        type ⊕ index embeddings.
        """
        rows = np.empty((len(candidates), self.embedder.dim))
        for i, token in enumerate(candidates):
            vector = token_vectors.get(token) if token_vectors else None
            if vector is None:
                vector = self.embedder.embed(token).numpy().reshape(-1)
            rows[i] = vector
        return Tensor(rows)

    # ------------------------------------------------------------------
    # Float32 arena inference kernels
    # ------------------------------------------------------------------

    def _encode_np(self, tokens: list[str], tag: str,
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Arena twin of encode + init: ``(memory, memory_proj, d0)``.

        All three live in reused float32 slabs keyed by ``tag`` (one tag
        per lane, so concurrent lanes never alias).
        """
        if not tokens:
            raise ModelError("cannot encode an empty sequence")
        arena = self.arena
        dim = self.embedder.dim
        hidden = self.config.hidden
        n = len(tokens)
        emb = arena.take(f"{tag}.emb", (n, 1, dim))
        for i, token in enumerate(tokens):
            emb[i, 0] = self.embedder.embed_np(token)
        states = self.encoder.forward_batch_np(emb, None, arena, f"{tag}.enc")
        memory = states.reshape(n, 2 * hidden)
        memory_proj = arena.take(f"{tag}.mp", (n, self.config.attention_dim))
        self.att_memory.forward_np(memory, memory_proj)
        init_in = arena.take(f"{tag}.ii", (1, 2 * hidden))
        init_in[0, :hidden] = memory[n - 1, :hidden]
        init_in[0, hidden:] = memory[0, hidden:]
        d0 = arena.take(f"{tag}.d0", (1, 2 * hidden))
        self.init_proj.forward_np(init_in, d0)
        tanh_(d0)
        return memory, memory_proj, d0

    def _attend_np(self, memory: np.ndarray, memory_proj: np.ndarray,
                   d: np.ndarray, tag: str,
                   query_proj: np.ndarray | None = None,
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Arena twin of :meth:`_attend_batch`: ``(scores, contexts)``.

        Raw scores survive in their own slab (the copy rule needs them);
        the softmax runs in a separate weights slab, in place.
        """
        arena = self.arena
        t = memory.shape[0]
        b = d.shape[0]
        attn = self.config.attention_dim
        if query_proj is None:
            query_proj = arena.take(f"{tag}.qp", (b, attn))
            self.att_query.forward_np(d, query_proj)
        hidden = arena.take(f"{tag}.h", (b, t, attn))
        np.add(memory_proj[None, :, :], query_proj[:, None, :], out=hidden)
        tanh_(hidden)
        v, _ = self.att_v.weights32()
        scores = arena.take(f"{tag}.s", (b, t))
        np.matmul(hidden.reshape(b * t, attn), v,
                  out=scores.reshape(b * t, 1))
        weights = arena.take(f"{tag}.w", (b, t))
        np.copyto(weights, scores)
        softmax_rows_(weights, arena.take(f"{tag}.r", (b, 1)))
        contexts = arena.take(f"{tag}.c", (b, memory.shape[1]))
        np.matmul(weights, memory, out=contexts)
        return scores, contexts

    def _step_distribution_np(self, attention_scores: np.ndarray,
                              lane: "_DecodeLane", projected: np.ndarray,
                              tag: str) -> np.ndarray:
        """Arena twin of :meth:`_step_distribution_batch`: ``(B, C)``.

        Same shared-shift copy rule, every exponential and the
        normalization in place; the lane's ``copy_map`` is stored
        transposed ``(T, C)`` so the copy mass is one matmul.
        """
        arena = self.arena
        b = projected.shape[0]
        c = lane.cand_rows.shape[0]
        gen = arena.take(f"{tag}.g", (b, c))
        np.matmul(projected, lane.cand_rows.T, out=gen)
        shift = arena.take(f"{tag}.sh", (b, 1))
        np.amax(gen, axis=1, keepdims=True, out=shift)
        if self.config.use_copy:
            att_max = arena.take(f"{tag}.am", (b, 1))
            np.amax(attention_scores, axis=1, keepdims=True, out=att_max)
            np.maximum(shift, att_max, out=shift)
            gen -= shift
            np.exp(gen, out=gen)
            att_exp = arena.take(f"{tag}.ae", attention_scores.shape)
            np.subtract(attention_scores, shift, out=att_exp)
            np.exp(att_exp, out=att_exp)
            copy_mass = arena.take(f"{tag}.cm", (b, c))
            np.matmul(att_exp, lane.copy_map, out=copy_mass)
            gen += copy_mass
        else:
            gen -= shift
            np.exp(gen, out=gen)
        np.sum(gen, axis=1, keepdims=True, out=shift)
        gen /= shift
        return gen

    def _prepare_lane_np(self, source: list[str], header_tokens: list[str],
                         extra_symbols, width: int | None,
                         token_vectors: dict | None,
                         lane_index: int) -> "_DecodeLane":
        """Encode one request into a float32 arena decode lane."""
        candidates = build_candidates(source, header_tokens, extra_symbols,
                                      extended=self.config.extended_grammar)
        arena = self.arena
        tag = f"lane{lane_index}"
        memory, memory_proj, d0 = self._encode_np(source, tag)
        cand_rows = arena.take(f"{tag}.cand",
                               (len(candidates), self.embedder.dim))
        for i, token in enumerate(candidates):
            vector = token_vectors.get(token) if token_vectors else None
            cand_rows[i] = (self.embedder.embed_np(token) if vector is None
                            else vector)
        copy_map = arena.take(f"{tag}.copy", (len(source), len(candidates)))
        copy_map[...] = 0.0
        index = {token: i for i, token in enumerate(candidates)}
        for j, token in enumerate(source):
            i = index.get(token)
            if i is not None:
                copy_map[j, i] = 1.0
        _, context0 = self._attend_np(memory, memory_proj, d0, f"{tag}.a0")
        enc_dim = 2 * self.config.hidden
        d_mat = arena.take(f"{tag}.dmat", (1, enc_dim))
        np.copyto(d_mat, d0)
        ctx_mat = arena.take(f"{tag}.cmat", (1, enc_dim))
        np.copyto(ctx_mat, context0)
        return _DecodeLane(candidates=candidates, memory=memory,
                           memory_proj=memory_proj, cand_rows=cand_rows,
                           copy_map=copy_map, d_mat=d_mat, ctx_mat=ctx_mat,
                           width=width or self.config.beam_width)

    def _decode_lockstep_many_np(self, lanes: list["_DecodeLane"],
                                 ) -> tuple[list[list[str]], list[int]]:
        """Arena twin of :meth:`_decode_lockstep_many` (handles ≥1 lanes).

        One fused GRU-cell call advances the union of all live beams per
        step; attention, the copy rule, and top-k pruning stay per lane.
        Every intermediate lives in a reused slab — a warm decode
        performs no Tensor construction and no slab growth.  Expansion
        order and the stable sorts match the float64 paths, so the SQL
        comes out byte-identical (pinned by the differential tests).
        """
        arena = self.arena
        dim = self.embedder.dim
        enc_dim = 2 * self.config.hidden
        attn = self.config.attention_dim
        for _ in range(self.config.max_decode_len):
            live = [(li, lane) for li, lane in enumerate(lanes)
                    if not lane.done]
            if not live:
                break
            total = sum(len(lane.meta) for _, lane in live)
            # Union decoder-cell input [prev_emb, context, d].
            xh = arena.take("dec.xh", (total, dim + 2 * enc_dim))
            d_union = arena.take("dec.d", (total, enc_dim))
            slices = []
            offset = 0
            for _, lane in live:
                lane.steps += 1
                rows = slice(offset, offset + len(lane.meta))
                for b, (_, _, prev) in enumerate(lane.meta):
                    if prev is None:
                        xh[offset + b, :dim] = 0.0
                    else:
                        xh[offset + b, :dim] = self.embedder.embed_np(prev)
                xh[rows, dim:dim + enc_dim] = lane.ctx_mat
                d_union[rows] = lane.d_mat
                slices.append(rows)
                offset += len(lane.meta)
            xh[:, dim + enc_dim:] = d_union
            d_next = arena.take("dec.dn", (total, enc_dim))
            self.decoder_cell.step_np(xh, d_union, d_next, arena, "dec.cell")
            query_proj = arena.take("dec.qp", (total, attn))
            self.att_query.forward_np(d_next, query_proj)

            proj_in = arena.take("dec.pi", (total, 2 * enc_dim))
            proj_in[:, :enc_dim] = d_next
            att_by_lane = []
            for (li, lane), rows in zip(live, slices):
                att_scores, contexts = self._attend_np(
                    lane.memory, lane.memory_proj, d_next[rows],
                    f"dec.a{li}", query_proj=query_proj[rows])
                att_by_lane.append(att_scores)
                proj_in[rows, enc_dim:] = contexts
            projected = arena.take("dec.pr", (total, dim))
            self.out_proj.forward_np(proj_in, projected)

            for ((li, lane), rows, att_scores) in zip(live, slices,
                                                      att_by_lane):
                probs = self._step_distribution_np(
                    att_scores, lane, projected[rows], f"dec.p{li}")
                expansions = []  # (nll, tokens, beam row, token)
                for b, (nll, tokens, _) in enumerate(lane.meta):
                    for ci in self._top_k(probs[b], lane.width):
                        token = lane.candidates[int(ci)]
                        new_nll = nll - float(
                            np.log(float(probs[b, ci]) + 1e-12))
                        if token == EOS:
                            lane.finished.append(
                                (new_nll / (len(tokens) + 1), tokens))
                        else:
                            expansions.append((new_nll, tokens + [token],
                                               b, token))
                if not expansions:
                    lane.done = True
                    continue
                expansions.sort(key=lambda e: e[0])
                kept = expansions[:lane.width]
                keep_rows = [row for _, _, row, _ in kept]
                d_keep = arena.take(f"lane{li}.dmat", (len(kept), enc_dim))
                np.take(d_next[rows], keep_rows, axis=0, out=d_keep)
                ctx_keep = arena.take(f"lane{li}.cmat", (len(kept), enc_dim))
                np.take(proj_in[rows, enc_dim:], keep_rows, axis=0,
                        out=ctx_keep)
                lane.d_mat = d_keep
                lane.ctx_mat = ctx_keep
                lane.meta = [(nll, tokens, token)
                             for nll, tokens, _, token in kept]

        outputs, steps = [], []
        for lane in lanes:
            finished = lane.finished
            if not finished:
                finished = [(nll / max(len(tokens), 1), tokens)
                            for nll, tokens, _ in lane.meta]
            finished.sort(key=lambda b: b[0])
            outputs.append(finished[0][1])
            steps.append(lane.steps)
        return outputs, steps

    def translate(self, source: list[str], header_tokens: list[str],
                  extra_symbols: tuple[str, ...] = (),
                  beam_width: int | None = None,
                  lockstep: bool | None = None,
                  token_vectors: dict | None = None) -> list[str]:
        """Decode the most likely annotated SQL token sequence.

        ``lockstep`` overrides ``config.lockstep_beam`` (``True`` stacks
        all live beams into one decoder/attention call per step;
        ``False`` is the reference per-beam loop — both produce
        identical SQL).  ``token_vectors`` optionally supplies
        precomputed frozen embeddings for candidate tokens (the schema
        cache provides header + structural vectors).
        """
        width = beam_width or self.config.beam_width
        use_lockstep = (self.config.lockstep_beam if lockstep is None
                        else lockstep)
        if use_lockstep and self.config.arena_inference:
            with no_grad():
                start = perf_counter()
                lane = self._prepare_lane_np(source, header_tokens,
                                             extra_symbols, width,
                                             token_vectors, 0)
                if self.timing_hook is not None:
                    self.timing_hook("encode", perf_counter() - start)
                start = perf_counter()
                outputs, steps = self._decode_lockstep_many_np([lane])
                if self.timing_hook is not None:
                    self.timing_hook("beam_search", perf_counter() - start)
            self.last_decode = {
                "path": "lockstep", "steps": steps[0], "beam_width": width,
                "candidates": len(lane.candidates),
                "dtype": "float32", "arena": True,
            }
            return outputs[0]
        candidates = build_candidates(source, header_tokens, extra_symbols,
                                      extended=self.config.extended_grammar)
        with no_grad():
            start = perf_counter()
            states = self.encode(source)
            memory = concat(states, axis=0)
            memory_proj = self.att_memory(memory)
            candidate_matrix = self._inference_candidate_matrix(
                candidates, token_vectors)
            copy_map = self._copy_map(candidates, source)
            d0 = self._initial_state(states)
            _, context0 = self._attend(memory, memory_proj, d0)
            if self.timing_hook is not None:
                self.timing_hook("encode", perf_counter() - start)

            start = perf_counter()
            decode = self._decode_lockstep if use_lockstep \
                else self._decode_per_beam
            finished, steps = decode(candidates, memory, memory_proj,
                                     candidate_matrix, copy_map,
                                     d0, context0, width)
            if self.timing_hook is not None:
                self.timing_hook("beam_search", perf_counter() - start)
        finished.sort(key=lambda b: b[0])
        self.last_decode = {
            "path": "lockstep" if use_lockstep else "per_beam",
            "steps": steps, "beam_width": width,
            "candidates": len(candidates),
            "dtype": "float64", "arena": False,
        }
        return finished[0][1]

    def translate_many(self, requests: list[dict]) -> list[list[str]]:
        """Decode several sources in ONE cross-request lockstep batch.

        Each request is a dict with ``source`` and ``header_tokens``
        plus optional ``extra_symbols`` / ``beam_width`` /
        ``token_vectors`` — the :meth:`translate` signature in mapping
        form.  Encoding, the candidate/copy machinery, and everything
        whose reduction shape is per-request (attention softmax +
        context, generation/copy mass, top-k pruning) run per lane
        exactly as :meth:`translate` would; only the row-sliced shared
        projections (decoder cell, attention query, output projection)
        advance the union of all lanes' live beams per step.  Lane ``i``
        therefore returns the same SQL tokens as a stand-alone
        :meth:`translate` call (pinned by the differential tests).

        Falls back to sequential :meth:`translate` calls when the
        lockstep path is disabled or only one request is given.
        """
        if not requests:
            return []
        if not self.config.lockstep_beam or len(requests) == 1:
            return [self.translate(req["source"], req["header_tokens"],
                                   req.get("extra_symbols", ()),
                                   beam_width=req.get("beam_width"),
                                   token_vectors=req.get("token_vectors"))
                    for req in requests]
        if self.config.arena_inference:
            with no_grad():
                start = perf_counter()
                lanes = [self._prepare_lane_np(
                    req["source"], req["header_tokens"],
                    req.get("extra_symbols", ()), req.get("beam_width"),
                    req.get("token_vectors"), li)
                    for li, req in enumerate(requests)]
                if self.timing_hook is not None:
                    self.timing_hook("encode", perf_counter() - start)
                start = perf_counter()
                outputs, steps = self._decode_lockstep_many_np(lanes)
                if self.timing_hook is not None:
                    self.timing_hook("beam_search", perf_counter() - start)
            self.last_decode = {
                "path": "lockstep_many", "lanes": len(requests),
                "steps": steps,
                "beam_width": [lane.width for lane in lanes],
                "candidates": [len(lane.candidates) for lane in lanes],
                "dtype": "float32", "arena": True,
            }
            return outputs
        lanes = []
        with no_grad():
            start = perf_counter()
            for req in requests:
                source = req["source"]
                candidates = build_candidates(
                    source, req["header_tokens"],
                    req.get("extra_symbols", ()),
                    extended=self.config.extended_grammar)
                states = self.encode(source)
                memory = concat(states, axis=0)
                memory_proj = self.att_memory(memory)
                candidate_matrix = self._inference_candidate_matrix(
                    candidates, req.get("token_vectors"))
                copy_map = self._copy_map(candidates, source)
                d0 = self._initial_state(states)
                _, context0 = self._attend(memory, memory_proj, d0)
                lanes.append(_DecodeLane(
                    candidates=candidates, memory=memory,
                    memory_proj=memory_proj,
                    cand_rows=candidate_matrix.numpy(), copy_map=copy_map,
                    d_mat=d0.numpy(), ctx_mat=context0.numpy().reshape(1, -1),
                    width=req.get("beam_width") or self.config.beam_width))
            if self.timing_hook is not None:
                self.timing_hook("encode", perf_counter() - start)

            start = perf_counter()
            outputs, steps = self._decode_lockstep_many(lanes)
            if self.timing_hook is not None:
                self.timing_hook("beam_search", perf_counter() - start)
        self.last_decode = {
            "path": "lockstep_many", "lanes": len(requests), "steps": steps,
            "beam_width": [lane.width for lane in lanes],
            "candidates": [len(lane.candidates) for lane in lanes],
            "dtype": "float64", "arena": False,
        }
        return outputs

    def _decode_lockstep_many(self, lanes: list["_DecodeLane"],
                              ) -> tuple[list[list[str]], list[int]]:
        """Advance every lane's live beams as one batch per step.

        The cross-request extension of :meth:`_decode_lockstep`: the
        union of all live beam rows goes through one decoder-cell /
        attention-query / output-projection call per step, then each
        lane scores, expands, and prunes its own rows with the exact
        single-request code.  Lanes finish independently (EOS everywhere
        or ``max_decode_len``) and simply drop out of the union.
        """
        embed_cache: dict[str, np.ndarray] = {}
        for _ in range(self.config.max_decode_len):
            live = [lane for lane in lanes if not lane.done]
            if not live:
                break
            inputs, d_rows, slices = [], [], []
            offset = 0
            for lane in live:
                lane.steps += 1
                prev_embs = np.zeros((len(lane.meta), self.embedder.dim))
                for b, (_, _, prev) in enumerate(lane.meta):
                    if prev is not None:
                        vec = embed_cache.get(prev)
                        if vec is None:
                            vec = self.embedder.embed(prev).numpy().reshape(-1)
                            embed_cache[prev] = vec
                        prev_embs[b] = vec
                inputs.append(np.concatenate([prev_embs, lane.ctx_mat],
                                             axis=1))
                d_rows.append(lane.d_mat)
                slices.append(slice(offset, offset + len(lane.meta)))
                offset += len(lane.meta)

            d_next = self.decoder_cell(
                Tensor(np.concatenate(inputs, axis=0)),
                Tensor(np.concatenate(d_rows, axis=0)))
            query_proj = self.att_query(d_next)
            d_np = d_next.numpy()

            ctx_union = np.empty((offset, d_np.shape[1]))
            att_by_lane = []
            for lane, rows in zip(live, slices):
                att_scores, ctx = self._attend_batch(
                    lane.memory, lane.memory_proj,
                    d_next[rows.start:rows.stop, :],
                    query_proj=query_proj[rows.start:rows.stop, :])
                att_by_lane.append(att_scores)
                ctx_union[rows.start:rows.stop] = ctx
            projected_union = self.out_proj(
                Tensor(np.concatenate([d_np, ctx_union], axis=1))).numpy()

            for lane, rows, att_scores in zip(live, slices, att_by_lane):
                probs = self._step_distribution_batch(
                    d_np[rows.start:rows.stop],
                    ctx_union[rows.start:rows.stop],
                    att_scores, lane.copy_map, lane.cand_rows,
                    projected=projected_union[rows.start:rows.stop])
                expansions = []  # (nll, tokens, beam row, token)
                for b, (nll, tokens, _) in enumerate(lane.meta):
                    for ci in self._top_k(probs[b], lane.width):
                        token = lane.candidates[int(ci)]
                        new_nll = nll - float(np.log(probs[b, ci] + 1e-12))
                        if token == EOS:
                            lane.finished.append(
                                (new_nll / (len(tokens) + 1), tokens))
                        else:
                            expansions.append((new_nll, tokens + [token],
                                               b, token))
                if not expansions:
                    lane.done = True
                    continue
                expansions.sort(key=lambda e: e[0])
                kept = expansions[:lane.width]
                keep_rows = [row for _, _, row, _ in kept]
                lane.d_mat = d_np[rows.start:rows.stop][keep_rows]
                lane.ctx_mat = ctx_union[rows.start:rows.stop][keep_rows]
                lane.meta = [(nll, tokens, token)
                             for nll, tokens, _, token in kept]

        outputs, steps = [], []
        for lane in lanes:
            finished = lane.finished
            if not finished:
                finished = [(nll / max(len(tokens), 1), tokens)
                            for nll, tokens, _ in lane.meta]
            finished.sort(key=lambda b: b[0])
            outputs.append(finished[0][1])
            steps.append(lane.steps)
        return outputs, steps

    def _decode_per_beam(self, candidates, memory, memory_proj,
                         candidate_matrix, copy_map, d0, context0,
                         width: int):
        """The reference decoder: a Python loop over live beams."""
        beams = [(0.0, [], d0, context0, None)]  # (nll, tokens, d, ctx, prev)
        finished: list[tuple[float, list[str]]] = []
        steps = 0
        for _ in range(self.config.max_decode_len):
            steps += 1
            expansions = []
            for nll, tokens, d, context, prev in beams:
                prev_emb = (self.embedder.embed(prev) if prev
                            else Tensor.zeros(1, self.embedder.dim))
                d_next = self.decoder_cell(
                    concat([prev_emb, context], axis=-1), d)
                att_scores, ctx_next = self._attend(memory, memory_proj,
                                                    d_next)
                probs = self._step_distribution(
                    d_next, ctx_next, att_scores, copy_map,
                    candidate_matrix).numpy()
                for ci in self._top_k(probs, width):
                    token = candidates[int(ci)]
                    new_nll = nll - float(np.log(probs[ci] + 1e-12))
                    if token == EOS:
                        finished.append((new_nll / (len(tokens) + 1),
                                         tokens))
                    else:
                        expansions.append((new_nll, tokens + [token],
                                           d_next, ctx_next, token))
            if not expansions:
                break
            expansions.sort(key=lambda b: b[0])
            beams = expansions[:width]
        if not finished:
            finished = [(nll / max(len(tokens), 1), tokens)
                        for nll, tokens, *_ in beams]
        return finished, steps

    def _decode_lockstep(self, candidates, memory, memory_proj,
                         candidate_matrix, copy_map, d0, context0,
                         width: int):
        """Lockstep decoder: all live beams share one call per step.

        Beam states live in ``(B, enc_dim)`` matrices; survivors of the
        pruning step are row-gathered.  Expansion order (beam-major,
        best-candidate-first) and the stable score sorts match the
        per-beam loop exactly, so both paths pick identical SQL.
        """
        cand_rows = candidate_matrix.numpy()
        d_mat = d0.numpy()
        ctx_mat = context0.numpy().reshape(1, -1)
        meta: list[tuple[float, list[str], str | None]] = [(0.0, [], None)]
        finished: list[tuple[float, list[str]]] = []
        embed_cache: dict[str, np.ndarray] = {}
        steps = 0
        for _ in range(self.config.max_decode_len):
            steps += 1
            prev_embs = np.zeros((len(meta), self.embedder.dim))
            for b, (_, _, prev) in enumerate(meta):
                if prev is not None:
                    vec = embed_cache.get(prev)
                    if vec is None:
                        vec = self.embedder.embed(prev).numpy().reshape(-1)
                        embed_cache[prev] = vec
                    prev_embs[b] = vec
            d_next = self.decoder_cell(
                Tensor(np.concatenate([prev_embs, ctx_mat], axis=1)),
                Tensor(d_mat))
            att_scores, ctx_next = self._attend_batch(memory, memory_proj,
                                                      d_next)
            d_np = d_next.numpy()
            probs = self._step_distribution_batch(
                d_np, ctx_next, att_scores, copy_map, cand_rows)
            expansions = []  # (nll, tokens, beam row, token)
            for b, (nll, tokens, _) in enumerate(meta):
                for ci in self._top_k(probs[b], width):
                    token = candidates[int(ci)]
                    new_nll = nll - float(np.log(probs[b, ci] + 1e-12))
                    if token == EOS:
                        finished.append((new_nll / (len(tokens) + 1),
                                         tokens))
                    else:
                        expansions.append((new_nll, tokens + [token],
                                           b, token))
            if not expansions:
                break
            expansions.sort(key=lambda b: b[0])
            kept = expansions[:width]
            rows = [row for _, _, row, _ in kept]
            d_mat = d_np[rows]
            ctx_mat = ctx_next[rows]
            meta = [(nll, tokens, token) for nll, tokens, _, token in kept]
        if not finished:
            finished = [(nll / max(len(tokens), 1), tokens)
                        for nll, tokens, _ in meta]
        return finished, steps
