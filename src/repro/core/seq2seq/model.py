"""The annotated seq2seq translator (Section V-B).

Encoder: stacked bidirectional GRU with per-layer affine transforms.
Decoder: attentive GRU (Bahdanau) with the paper's custom copy
mechanism::

    p(s_i | qᵃ, s_{1:i-1}) ∝ exp(U[d_i, β_i]) + M_i
    M_i[token] = Σ_{j : input_j = token} exp(e_ij)

i.e. the generation distribution gets extra unnormalized mass from the
attention scores of input positions holding the same token, *added
before normalization* (unlike the vanilla softmax-only formulation —
the distinction the paper emphasizes).

Output scores are tied to token embeddings: ``U[d_i, β_i]`` is projected
into embedding space and scored against each candidate token's
embedding, so the output space follows the example (symbols + input
tokens + headers) instead of a fixed vocabulary — this is what makes
zero-shot transfer to unseen domains possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.errors import ModelError
from repro.nn import (
    Adam,
    BiGRU,
    GRUCell,
    Linear,
    Module,
    Tensor,
    clip_grad_norm,
    concat,
    no_grad,
)
from repro.text import WordEmbeddings

from repro.core.seq2seq.vocab import (
    EOS,
    TokenEmbedder,
    build_candidates,
)

__all__ = ["Seq2SeqConfig", "AnnotatedSeq2Seq", "TrainingPair"]


@dataclass
class Seq2SeqConfig:
    """Hyper-parameters of the translator.

    The paper uses hidden 400 (encoder) / 800 (decoder) with GloVe-300;
    we scale down proportionally for the numpy substrate.  The "half
    hidden size" ablation divides ``hidden`` by two.
    """

    hidden: int = 48
    encoder_layers: int = 1
    attention_dim: int = 48
    max_decode_len: int = 26
    beam_width: int = 5
    use_copy: bool = True
    grad_clip: float = 5.0
    max_symbol_index: int = 30
    seed: int = 0


@dataclass
class TrainingPair:
    """One (annotated question, annotated SQL) training pair.

    ``extra_symbols`` are annotation symbols that can appear in the
    target but not in the source (implicit column mentions).
    """

    source: list[str]
    target: list[str]
    header_tokens: list[str]
    extra_symbols: tuple[str, ...] = ()


class AnnotatedSeq2Seq(Module):
    """Sequence-to-sequence translation of ``qᵃ`` into ``sᵃ``."""

    def __init__(self, embeddings: WordEmbeddings,
                 config: Seq2SeqConfig | None = None):
        super().__init__()
        self.config = config or Seq2SeqConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.embedder = TokenEmbedder(embeddings,
                                      max_symbol_index=cfg.max_symbol_index,
                                      seed=cfg.seed)
        dim = self.embedder.dim
        self.encoder = BiGRU(dim, cfg.hidden, rng,
                             num_layers=cfg.encoder_layers)
        enc_dim = 2 * cfg.hidden
        self.decoder_cell = GRUCell(dim + enc_dim, enc_dim, rng)
        self.init_proj = Linear(enc_dim, enc_dim, rng)
        # Bahdanau attention: e_ij = v^T tanh(W2 h_j + W3 d_i).
        self.att_memory = Linear(enc_dim, cfg.attention_dim, rng, bias=False)
        self.att_query = Linear(enc_dim, cfg.attention_dim, rng)
        self.att_v = Linear(cfg.attention_dim, 1, rng, bias=False)
        # Output: project [d_i, β_i] into embedding space (tied weights).
        self.out_proj = Linear(2 * enc_dim, dim, rng)
        # Optional observer called as ``timing_hook(stage, seconds)``
        # with stage ∈ {"encode", "beam_search"} on every translate()
        # call (the serving layer's latency histograms attach here).
        self.timing_hook = None
        self._fitted = False

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, tokens: list[str]) -> list[Tensor]:
        """Encoder states ``h_j``, one ``(1, 2*hidden)`` tensor per token."""
        if not tokens:
            raise ModelError("cannot encode an empty sequence")
        return self.encoder(self.embedder.embed_sequence(tokens))

    def _initial_state(self, states: list[Tensor]) -> Tensor:
        hidden = self.config.hidden
        fwd_last = states[-1][:, :hidden]
        bwd_first = states[0][:, hidden:]
        return self.init_proj(concat([fwd_last, bwd_first], axis=-1)).tanh()

    # ------------------------------------------------------------------
    # One decoder step
    # ------------------------------------------------------------------

    def _attend(self, memory: Tensor, memory_proj: Tensor,
                d: Tensor) -> tuple[Tensor, Tensor]:
        """Return (raw attention scores e_i (T,), context β_i (1, enc_dim))."""
        scores = self.att_v(
            (memory_proj + self.att_query(d)).tanh()).reshape(memory.shape[0])
        # The softmax shift is invariant here, so detaching it is exact.
        shifted = scores - scores.max(axis=0, keepdims=True).detach()
        weights = shifted.exp()
        weights = weights / weights.sum(axis=0, keepdims=True)
        context = weights.reshape(1, memory.shape[0]) @ memory
        return scores, context

    def _step_distribution(self, d: Tensor, context: Tensor,
                           attention_scores: Tensor, copy_map: np.ndarray,
                           candidate_matrix: Tensor) -> Tensor:
        """Probability over candidates: ``∝ exp(U[d,β]) + M_i``.

        Generation logits and copy scores must share ONE numerical
        shift: the normalization is only shift-invariant (and the
        detached shift only gradient-exact) when the same constant
        multiplies both mass terms.
        """
        projected = self.out_proj(concat([d, context], axis=-1))
        gen_logits = candidate_matrix @ projected.reshape(projected.shape[1])
        if self.config.use_copy:
            shift = max(float(gen_logits.numpy().max()),
                        float(attention_scores.numpy().max()))
            mass = ((gen_logits - shift).exp()
                    + Tensor(copy_map) @ (attention_scores - shift).exp())
        else:
            shift = float(gen_logits.numpy().max())
            mass = (gen_logits - shift).exp()
        return mass / mass.sum(axis=0, keepdims=True)

    @staticmethod
    def _copy_map(candidates: list[str],
                  input_tokens: list[str]) -> np.ndarray:
        """(C, T) matrix: 1 where candidate c equals input token at j."""
        index = {token: i for i, token in enumerate(candidates)}
        copy_map = np.zeros((len(candidates), len(input_tokens)))
        for j, token in enumerate(input_tokens):
            i = index.get(token)
            if i is not None:
                copy_map[i, j] = 1.0
        return copy_map

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def loss(self, pair: TrainingPair) -> Tensor:
        """Teacher-forced negative log-likelihood of one pair."""
        candidates = build_candidates(pair.source, pair.header_tokens,
                                      pair.extra_symbols)
        cand_index = {t: i for i, t in enumerate(candidates)}
        target = list(pair.target) + [EOS]
        for token in target:
            if token not in cand_index:
                raise ModelError(
                    f"target token {token!r} missing from candidate set")

        states = self.encode(pair.source)
        memory = concat(states, axis=0)
        memory_proj = self.att_memory(memory)
        candidate_matrix = self.embedder.candidate_matrix(candidates)
        copy_map = self._copy_map(candidates, pair.source)

        d = self._initial_state(states)
        _, context = self._attend(memory, memory_proj, d)
        nll = None
        prev_token = None
        for token in target:
            prev_emb = (self.embedder.embed(prev_token) if prev_token
                        else Tensor.zeros(1, self.embedder.dim))
            d = self.decoder_cell(concat([prev_emb, context], axis=-1), d)
            att_scores, context = self._attend(memory, memory_proj, d)
            probs = self._step_distribution(d, context, att_scores, copy_map,
                                            candidate_matrix)
            step_nll = -(probs[cand_index[token]] + 1e-12).log()
            nll = step_nll if nll is None else nll + step_nll
            prev_token = token
        return nll / len(target)

    def reachable(self, pair: TrainingPair) -> bool:
        """Whether every target token is in the pair's candidate set.

        Symbol-substitution annotation can erase literal value tokens
        from the source, making some targets unproducible — those pairs
        are skipped by :meth:`fit` (and are part of why the substitution
        ablation underperforms).
        """
        candidates = set(build_candidates(pair.source, pair.header_tokens,
                                          pair.extra_symbols))
        return all(t in candidates for t in list(pair.target) + [EOS])

    def fit(self, pairs: list[TrainingPair], epochs: int = 10,
            lr: float = 2e-3, shuffle_seed: int = 0,
            verbose: bool = False) -> list[float]:
        """Train with Adam + gradient clipping; returns per-epoch loss.

        Pairs with unreachable targets are skipped (counted in
        ``self.skipped_pairs``).
        """
        total_input = len(pairs)
        pairs = [p for p in pairs if self.reachable(p)]
        self.skipped_pairs = total_input - len(pairs)
        if verbose and self.skipped_pairs:
            print(f"[seq2seq] skipped {self.skipped_pairs} pairs with "
                  f"unreachable targets")
        if not pairs:
            raise ModelError("fit() needs at least one training pair")
        optimizer = Adam(self.parameters(), lr=lr)
        rng = np.random.default_rng(shuffle_seed)
        order = np.arange(len(pairs))
        losses = []
        for epoch in range(epochs):
            rng.shuffle(order)
            total = 0.0
            for idx in order:
                optimizer.zero_grad()
                loss = self.loss(pairs[idx])
                loss.backward()
                clip_grad_norm(self.parameters(), self.config.grad_clip)
                optimizer.step()
                total += loss.item()
            losses.append(total / len(pairs))
            if verbose:
                print(f"[seq2seq] epoch {epoch + 1}: loss={losses[-1]:.4f}")
        self._fitted = True
        return losses

    # ------------------------------------------------------------------
    # Inference (beam search)
    # ------------------------------------------------------------------

    def translate(self, source: list[str], header_tokens: list[str],
                  extra_symbols: tuple[str, ...] = (),
                  beam_width: int | None = None) -> list[str]:
        """Decode the most likely annotated SQL token sequence."""
        width = beam_width or self.config.beam_width
        candidates = build_candidates(source, header_tokens, extra_symbols)
        with no_grad():
            start = perf_counter()
            states = self.encode(source)
            memory = concat(states, axis=0)
            memory_proj = self.att_memory(memory)
            candidate_matrix = self.embedder.candidate_matrix(candidates)
            copy_map = self._copy_map(candidates, source)
            if self.timing_hook is not None:
                self.timing_hook("encode", perf_counter() - start)

            start = perf_counter()
            d0 = self._initial_state(states)
            _, context0 = self._attend(memory, memory_proj, d0)
            beams = [(0.0, [], d0, context0, None)]  # (nll, tokens, d, ctx, prev)
            finished: list[tuple[float, list[str]]] = []
            for _ in range(self.config.max_decode_len):
                expansions = []
                for nll, tokens, d, context, prev in beams:
                    prev_emb = (self.embedder.embed(prev) if prev
                                else Tensor.zeros(1, self.embedder.dim))
                    d_next = self.decoder_cell(
                        concat([prev_emb, context], axis=-1), d)
                    att_scores, ctx_next = self._attend(memory, memory_proj,
                                                     d_next)
                    probs = self._step_distribution(
                        d_next, ctx_next, att_scores, copy_map,
                        candidate_matrix).numpy()
                    top = np.argsort(probs)[::-1][:width]
                    for ci in top:
                        token = candidates[int(ci)]
                        new_nll = nll - float(np.log(probs[ci] + 1e-12))
                        if token == EOS:
                            finished.append((new_nll / (len(tokens) + 1),
                                             tokens))
                        else:
                            expansions.append((new_nll, tokens + [token],
                                               d_next, ctx_next, token))
                if not expansions:
                    break
                expansions.sort(key=lambda b: b[0])
                beams = expansions[:width]
            if not finished:
                finished = [(nll / max(len(tokens), 1), tokens)
                            for nll, tokens, *_ in beams]
            if self.timing_hook is not None:
                self.timing_hook("beam_search", perf_counter() - start)
        finished.sort(key=lambda b: b[0])
        return finished[0][1]
