"""Annotated sequence-to-sequence translation (Section V)."""

from repro.core.seq2seq.model import AnnotatedSeq2Seq, Seq2SeqConfig, TrainingPair
from repro.core.seq2seq.vocab import (
    EOS,
    SOS,
    STRUCTURAL_TOKENS,
    TokenEmbedder,
    build_candidates,
    is_symbol,
    symbol_parts,
)

__all__ = [
    "AnnotatedSeq2Seq", "Seq2SeqConfig", "TrainingPair",
    "TokenEmbedder", "build_candidates", "STRUCTURAL_TOKENS",
    "EOS", "SOS", "is_symbol", "symbol_parts",
]
