"""Evaluation metrics (Section VII).

Three accuracies, exactly as the paper defines them:

* ``Acc_lf`` — logical-form accuracy: token-by-token agreement
  (condition order matters);
* ``Acc_qm`` — query-match accuracy: agreement of canonical
  representations (condition order ignored);
* ``Acc_ex`` — execution accuracy: the two queries return the same
  result on the table.

Plus the Section VII-A.1 *mention-detection* metric: canonical match of
the WHERE clause's ``$COND_COL``/``$COND_VAL`` pairs, and the Table III
*pre-recovery* metric computed in annotated-symbol space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.records import Example
from repro.errors import SQLExecutionError
from repro.sqlengine import (
    Aggregate,
    Not,
    Operator,
    Or,
    Query,
    execute,
    results_equal,
)

__all__ = ["EvalResult", "evaluate", "mention_detection_accuracy",
           "annotated_match", "sketch_label", "evaluate_by_sketch"]


@dataclass
class EvalResult:
    """Aggregated accuracies over an evaluation set."""

    acc_lf: float
    acc_qm: float
    acc_ex: float
    n: int

    def as_row(self) -> str:
        """Formatted like the paper's tables."""
        return (f"Acc_lf={self.acc_lf:.1%}  Acc_qm={self.acc_qm:.1%}  "
                f"Acc_ex={self.acc_ex:.1%}  (n={self.n})")


def _execution_match(predicted: Query, example: Example) -> bool:
    try:
        expected = execute(example.query, example.table)
        actual = execute(predicted, example.table)
    except SQLExecutionError:
        return False
    return results_equal(expected, actual)


def evaluate(predictions: list[Query | None],
             examples: list[Example]) -> EvalResult:
    """Score predictions (``None`` = failed translation) against gold."""
    if len(predictions) != len(examples):
        raise ValueError(
            f"{len(predictions)} predictions vs {len(examples)} examples")
    if not examples:
        return EvalResult(0.0, 0.0, 0.0, 0)
    lf = qm = ex = 0
    for predicted, example in zip(predictions, examples):
        if predicted is None:
            continue
        if predicted.logical_form_equal(example.query):
            lf += 1
        if predicted.query_match_equal(example.query):
            qm += 1
        if _execution_match(predicted, example):
            ex += 1
    n = len(examples)
    return EvalResult(lf / n, qm / n, ex / n, n)


def _contains_node(expr, node_type) -> bool:
    if isinstance(expr, node_type):
        return True
    if isinstance(expr, Not):
        return _contains_node(expr.operand, node_type)
    children = getattr(expr, "items", ())
    return any(_contains_node(child, node_type) for child in children)


def sketch_label(query: Query) -> str:
    """Name the sketch family a query belongs to (for breakout scoring).

    Mirrors the intent generators in :mod:`repro.data.intents`: each
    generator's output maps back to its own label, so per-sketch
    accuracy directly measures per-intent accuracy.  Priority order
    matters — a grouped query with a HAVING is still ``group_agg``, a
    range query with an aggregate is still ``range``.
    """
    if query.group_by is not None:
        return "group_agg"
    if query.order_by is not None or query.limit is not None:
        return "topn"
    expr = query.where_expr()
    if expr is not None:
        if _contains_node(expr, Or):
            return "disjunction"
        if _contains_node(expr, Not):
            return "negation"
    leaves = query.where_leaves()
    by_column: dict[str, set[Operator]] = {}
    for leaf in leaves:
        by_column.setdefault(leaf.column.lower(), set()).add(leaf.operator)
    if any({Operator.GT, Operator.LT} <= ops for ops in by_column.values()):
        return "range"
    if query.aggregate is Aggregate.COUNT:
        return "count"
    if query.aggregate is not Aggregate.NONE:
        return "aggregate"
    return "filter"


def evaluate_by_sketch(predictions: list[Query | None],
                       examples: list[Example]) -> dict[str, EvalResult]:
    """Per-sketch-family accuracies (examples grouped by gold label)."""
    if len(predictions) != len(examples):
        raise ValueError(
            f"{len(predictions)} predictions vs {len(examples)} examples")
    grouped: dict[str, tuple[list[Query | None], list[Example]]] = {}
    for predicted, example in zip(predictions, examples):
        bucket = grouped.setdefault(sketch_label(example.query), ([], []))
        bucket[0].append(predicted)
        bucket[1].append(example)
    return {label: evaluate(preds, exs)
            for label, (preds, exs) in sorted(grouped.items())}


def mention_detection_accuracy(predictions: list[Query | None],
                               examples: list[Example]) -> float:
    """Canonical $COND_COL/$COND_VAL agreement rate (Section VII-A.1)."""
    if not examples:
        return 0.0
    hits = 0
    for predicted, example in zip(predictions, examples):
        if predicted is None:
            continue
        if predicted.where_canonical() == example.query.where_canonical():
            hits += 1
    return hits / len(examples)


def annotated_match(predicted_tokens: list[str],
                    gold_tokens: list[str]) -> bool:
    """Pre-recovery query match, in annotated-symbol space (Table III).

    Both sequences follow ``select [agg] col where col op val (and …)``;
    the comparison canonicalizes by sorting conditions, like ``Acc_qm``,
    but symbols are compared as raw strings (``c1`` ≠ ``g1`` even when
    both resolve to the same column — recovery fixes that, which is why
    post-recovery accuracy is higher).
    """
    predicted = _annotated_canonical(predicted_tokens)
    gold = _annotated_canonical(gold_tokens)
    if predicted is None or gold is None:
        return False
    return predicted == gold


def _annotated_canonical(tokens: list[str]):
    if not tokens or tokens[0] != "select":
        return None
    try:
        where = tokens.index("where")
        head, tail = tokens[1:where], tokens[where + 1:]
    except ValueError:
        head, tail = tokens[1:], []
    conditions = []
    current: list[str] = []
    for token in tail + ["and"]:
        if token == "and":
            if current:
                conditions.append(tuple(current))
            current = []
        else:
            current.append(token)
    return (tuple(head), tuple(sorted(conditions)))
