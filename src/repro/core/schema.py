"""Fingerprint-keyed schema encodings (the per-table inference artifact).

Like SQLNet/TypeSQL-style column-attention models, the column side of
the paper's annotation step is *question-independent*: the column-RNN
states the mention classifier attends from, the unit-normalized column
word embeddings its similarity features use, the value classifier's
per-column statistics, and the translator's header tokens and their
frozen embedding vectors all depend only on the table.  A
:class:`SchemaEncoding` bundles that work so one table's encoding is
computed once and reused for every question asked against it — the
annotator caches these in an LRU keyed by the table's *content*
fingerprint (:func:`repro.sqlengine.table_fingerprint`), so a
recreated-but-equal table hits the warm entry while any schema or data
edit recomputes.

The classifier-derived fields become stale when the mention classifier
is retrained; :meth:`repro.core.annotator.Annotator.fit` therefore
drops the cache.  The ``token_vectors`` are frozen hash embeddings and
would survive retraining, but rebuilding them is cheap enough that the
simpler whole-cache invalidation wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn import no_grad
from repro.sqlengine import Table, table_fingerprint
from repro.text import tokenize

from repro.core.mention import EncodedColumns
from repro.core.seq2seq.vocab import is_symbol, structural_tokens

__all__ = ["SchemaEncoding", "build_schema_encoding"]


@dataclass
class SchemaEncoding:
    """Precomputed, question-independent inference state of one table."""

    fingerprint: str
    column_names: list[str]
    column_tokens: dict[str, list[str]]
    column_index: dict[str, int]
    #: Lockstep column-RNN states + unit embeddings for the mention
    #: classifier's batched scoring; ``None`` when it is untrained.
    columns: EncodedColumns | None
    #: Per-column value statistics (the value classifier's ``s_c``).
    stats: dict[str, np.ndarray]
    #: Tokenized headers fed to the translator's copy space.
    header_tokens: list[str]
    #: Frozen embedding vectors of the non-symbol candidate tokens the
    #: translator can always see for this table (structural + header).
    token_vectors: dict[str, np.ndarray] = field(repr=False)
    _vectors32: dict[str, np.ndarray] | None = field(
        default=None, repr=False, compare=False)

    @property
    def token_vectors32(self) -> dict[str, np.ndarray]:
        """Float32 twins of :attr:`token_vectors` for the arena decoder.

        Cast lazily, once per table — the float32 candidate-matrix fill
        then copies rows without a per-request float64→float32 pass.
        """
        if self._vectors32 is None:
            self._vectors32 = {
                token: np.ascontiguousarray(vec, dtype=np.float32)
                for token, vec in self.token_vectors.items()}
        return self._vectors32

    def encoded_subset(self, names: list[str]) -> EncodedColumns | None:
        """Cached column encodings row-gathered down to ``names``."""
        if self.columns is None:
            return None
        return self.columns.subset([self.column_index[name]
                                    for name in names])


def build_schema_encoding(annotator, table: Table) -> SchemaEncoding:
    """Encode one table's column side for the given annotator.

    Everything runs under ``no_grad``; the artifact holds plain numpy
    (no autodiff graph), so it is safe to share across requests.
    """
    column_names = list(table.column_names)
    column_tokens = {name: tokenize(name) for name in column_names}

    header_tokens: list[str] = []
    for name in column_names:
        header_tokens.extend(column_tokens[name])

    classifier = annotator.column_classifier
    encoded = None
    if getattr(classifier, "_trained", False):
        encoded = classifier.encode_columns(
            [column_tokens[name] for name in column_names])

    embeddings = annotator.embeddings
    token_vectors: dict[str, np.ndarray] = {}
    with no_grad():
        # Extended-grammar tokens are included unconditionally: legacy
        # candidate lookups never see them, and an extended model can
        # then reuse the same cached vectors.
        for token in structural_tokens(extended=True) + header_tokens:
            if token not in token_vectors and not is_symbol(token):
                token_vectors[token] = embeddings.vector(token)

    return SchemaEncoding(
        fingerprint=table_fingerprint(table),
        column_names=column_names,
        column_tokens=column_tokens,
        column_index={name: i for i, name in enumerate(column_names)},
        columns=encoded,
        stats=annotator._stats_for(table),
        header_tokens=header_tokens,
        token_vectors=token_vectors)
