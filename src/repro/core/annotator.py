"""The end-to-end annotation pipeline (Section IV).

Given a question and a table, the :class:`Annotator` produces an
:class:`~repro.core.annotate.AnnotatedQuestion` by composing:

1. context-free column matching (exact / edit / semantic / knowledge);
2. the column-mention binary classifier + adversarial localization for
   mentions that string distances cannot find;
3. exact cell matching and the value-detection classifier (statistics
   based, counterfactual-safe) for value spans;
4. dependency-tree mention resolution pairing values with columns;
5. symbol index allocation in order of first reference.

Training (`fit`) uses only (question, SQL) pairs plus metadata, as in
the paper: column labels come from SQL column usage, value spans from
locating SQL literals in the question.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.caching import LRUCache
from repro.data.records import Example
from repro.errors import ModelError
from repro.pipeline import (
    Pipeline,
    PipelineContext,
    StageTrace,
    artifact_cache_middleware,
)
from repro.sqlengine import Table, table_fingerprint
from repro.text import (
    KnowledgeBase,
    WordEmbeddings,
    column_statistics,
    parse_dependency,
    tokenize,
)

from repro.core.annotate import (
    AnnotatedQuestion,
    ColumnAnnotation,
    ValueAnnotation,
)
from repro.core.mention import (
    ClassifierConfig,
    ColumnMatcher,
    ColumnMentionClassifier,
    ValueCandidate,
    ValueDetectionClassifier,
    candidate_spans,
    compute_influence,
    contrastive_profile,
    locate_mention,
    resolve_mentions,
)
from repro.core.schema import SchemaEncoding, build_schema_encoding

__all__ = ["AnnotatorConfig", "Annotator", "ANNOTATION_MODES"]

#: Capacity of the per-annotator column-statistics cache.  Statistics
#: are keyed by table *content* fingerprint, so the cache survives table
#: object recreation but never outlives a data or schema edit.
STATS_CACHE_SIZE = 64

#: Capacity of the per-annotator schema-encoding cache (column-RNN
#: states, unit embeddings, header token vectors — see
#: :mod:`repro.core.schema`).  Encodings are larger than raw statistics,
#: so the bound is tighter.
SCHEMA_CACHE_SIZE = 32

#: The annotation pipeline variants: the paper's full adversarial
#: pipeline, and the context-free matcher-only rung the serving layer
#: degrades to.  Variant selection lives on the ``PipelineContext``
#: (``ctx.mode``); the stage graph itself is shared.
ANNOTATION_MODES = ("full", "context_free")


@dataclass
class AnnotatorConfig:
    """Behavioural switches of the annotation pipeline."""

    column_threshold: float = 0.5
    value_threshold: float = 0.6
    max_value_span: int = 3
    max_mention_span: int = 4
    use_column_classifier: bool = True
    use_value_classifier: bool = True
    use_contrastive_influence: bool = False
    use_dependency_resolution: bool = True
    influence_alpha: float = 1.0
    influence_beta: float = 0.0
    influence_norm: str = "l2"


class Annotator:
    """Trains and runs the full mention-detection/annotation pipeline."""

    def __init__(self, embeddings: WordEmbeddings,
                 config: AnnotatorConfig | None = None,
                 classifier_config: ClassifierConfig | None = None,
                 knowledge: KnowledgeBase | None = None):
        self.embeddings = embeddings
        self.config = config or AnnotatorConfig()
        self.matcher = ColumnMatcher(embeddings, knowledge=knowledge,
                                     max_span=self.config.max_mention_span)
        self.column_classifier = ColumnMentionClassifier(
            embeddings, classifier_config
            or ClassifierConfig(word_dim=embeddings.dim))
        self.value_classifier = ValueDetectionClassifier(embeddings)
        self._column_stats_cache = LRUCache(maxsize=STATS_CACHE_SIZE)
        self._schema_cache = LRUCache(maxsize=SCHEMA_CACHE_SIZE)
        self._pipeline: Pipeline | None = None  # built lazily, stateless
        self._fitted = False

    # ------------------------------------------------------------------
    # Training (weak supervision from (question, SQL) pairs)
    # ------------------------------------------------------------------

    def fit(self, examples: list[Example], classifier_epochs: int = 5,
            classifier_lr: float = 2e-3, value_epochs: int = 30,
            seed: int = 0, verbose: bool = False) -> None:
        """Train both classifiers from dataset examples."""
        if not examples:
            raise ModelError("fit() needs at least one example")
        rng = np.random.default_rng(seed)

        column_pairs = self._column_pairs(examples, rng)
        self.column_classifier.fit(column_pairs, epochs=classifier_epochs,
                                   lr=classifier_lr, verbose=verbose)

        value_rows = self._value_rows(examples, rng)
        self.value_classifier.fit(value_rows, epochs=value_epochs)
        # Cached schema encodings embed the (now stale) classifier's
        # column-RNN states; drop them so inference re-encodes.
        self._schema_cache.clear()
        self._fitted = True

    def _column_pairs(self, examples: list[Example],
                      rng: np.random.Generator):
        pairs = []
        for example in examples:
            q = example.question_tokens
            used = {example.query.select_column.lower()}
            used.update(c.column.lower() for c in example.query.conditions)
            others = [c for c in example.table.column_names
                      if c.lower() not in used]
            for column in used:
                pairs.append((q, tokenize(column), 1))
            rng.shuffle(others)
            for column in others[:len(used)]:
                pairs.append((q, tokenize(column), 0))
        return pairs

    def _value_rows(self, examples: list[Example], rng: np.random.Generator):
        rows = []
        for example in examples:
            q = example.question_tokens
            stats = self._stats_for(example.table)
            for cond in example.query.conditions:
                value_tokens = tokenize(str(cond.value))
                start = _find_subsequence(q, value_tokens)
                if start is None:
                    continue
                span_stats = self.value_classifier.span_stats(value_tokens)
                rows.append((span_stats, stats[cond.column.lower()], 1.0))
                # Negative: same span against a different column.
                other_cols = [c for c in example.table.column_names
                              if c.lower() != cond.column.lower()]
                if other_cols:
                    other = str(rng.choice(other_cols))
                    rows.append((span_stats, stats[other.lower()], 0.0))
                # Negative: a random non-value span against the column.
                negatives = [s for s in candidate_spans(
                    q, self.config.max_value_span)
                    if not (s[0] < start + len(value_tokens)
                            and start < s[1])]
                if negatives:
                    ns, ne = negatives[int(rng.integers(0, len(negatives)))]
                    rows.append((self.value_classifier.span_stats(q[ns:ne]),
                                 stats[cond.column.lower()], 0.0))
        return rows

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def _stats_for(self, table: Table) -> dict[str, np.ndarray]:
        # Keyed by content fingerprint: a recreated-but-equal table hits
        # the warm entry, while any mutation (new row, renamed column)
        # changes the key and recomputes.  The bounded LRU keeps the
        # cache from growing without limit under many-table traffic.
        key = table_fingerprint(table)
        return self._column_stats_cache.get_or_compute(key, lambda: {
            column.name.lower(): column_statistics(
                table.column_values(column.name), self.embeddings.vector,
                self.embeddings.dim)
            for column in table.columns
        })

    # ------------------------------------------------------------------
    # Schema encodings (the fingerprint-keyed fast-path artifact)
    # ------------------------------------------------------------------

    def schema_encoding(self, table: Table) -> tuple[SchemaEncoding, str]:
        """The table's cached :class:`SchemaEncoding`, building on miss.

        Returns ``(encoding, status)`` with status ``"hit"`` or
        ``"miss"`` — derived from the cache's miss counter so a
        coalesced concurrent build still reports as a hit.
        """
        key = table_fingerprint(table)
        misses_before = self._schema_cache.misses
        encoding = self._schema_cache.get_or_compute(
            key, lambda: build_schema_encoding(self, table))
        status = "miss" if self._schema_cache.misses > misses_before \
            else "hit"
        return encoding, status

    def peek_schema_encoding(self, table: Table) -> SchemaEncoding | None:
        """The cached encoding if present — never builds, never counts.

        The translate stage uses this to piggyback on an encoding the
        column stage already built, without forcing one on paths (e.g.
        context-free degraded annotation) that skipped it.
        """
        return self._schema_cache.get(table_fingerprint(table), count=False)

    def schema_cache_stats(self) -> dict:
        """Hit/miss/eviction counters of the schema-encoding cache."""
        cache = self._schema_cache
        return {
            "size": len(cache),
            "maxsize": cache.maxsize,
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "hit_rate": cache.hit_rate(),
        }

    @staticmethod
    def _numeric_ranges(table: Table) -> dict[str, tuple[float, float]]:
        """Value ranges of numeric-looking columns (database statistics).

        Used to bind bare numbers in the question to columns whose value
        range covers them — the classic query-optimizer statistic reused
        for NL understanding (Section II).
        """
        ranges: dict[str, tuple[float, float]] = {}
        for column in table.columns:
            numbers = []
            for cell in table.column_values(column.name):
                try:
                    numbers.append(float(str(cell)))
                except ValueError:
                    numbers.clear()
                    break
            if numbers:
                lo, hi = min(numbers), max(numbers)
                margin = (hi - lo) * 0.5 + 1.0
                ranges[column.name.lower()] = (lo - margin, hi + margin)
        return ranges

    # ------------------------------------------------------------------
    # Annotation
    # ------------------------------------------------------------------

    def annotation_pipeline(self, mode: str = "full") -> Pipeline:
        """The annotation stage graph (validated for ``mode``).

        Four explicit substages — value detection, column detection
        (classifier + adversarial localization in full mode), mention
        resolution, symbol allocation — communicating through the
        context's artifacts.  The graph itself is mode-independent
        (stages read ``ctx.mode``); the argument only validates the
        requested variant.
        """
        if mode not in ANNOTATION_MODES:
            raise ModelError(f"unknown annotation mode {mode!r}; "
                             "expected 'full' or 'context_free'")
        if self._pipeline is None:
            self._pipeline = Pipeline(
                (_ValueDetectionStage(self), _ColumnDetectionStage(self),
                 _MentionResolutionStage(self), _SymbolAllocationStage(self)),
                middleware=(artifact_cache_middleware,), name="annotate")
        return self._pipeline

    def annotate(self, question: str | list[str], table: Table,
                 mode: str = "full",
                 trace: StageTrace | None = None) -> AnnotatedQuestion:
        """Produce the annotated form ``qᵃ`` of a question.

        ``mode="full"`` runs the whole pipeline.  ``mode="context_free"``
        restricts detection to the paper's context-free machinery —
        exact/edit/semantic/knowledge column matching and exact cell
        matches — skipping both trained classifiers and the adversarial
        localization.  It is cheaper and model-independent, which makes
        it the serving layer's degraded-annotation fallback.

        Pass a :class:`StageTrace` to collect per-substage records
        (wall time, outcome, the mention-resolution strategy).
        """
        pipeline = self.annotation_pipeline(mode)
        tokens = (tokenize(question) if isinstance(question, str)
                  else list(question))
        ctx = PipelineContext(question_tokens=tokens, table=table, mode=mode,
                              trace=trace if trace is not None
                              else StageTrace())
        pipeline.run(ctx)
        return ctx.artifacts["annotation"]

    def resolve_assignments(self, tokens: list[str],
                            column_spans: dict[str, tuple[int, int]],
                            value_spans: list[ValueCandidate],
                            ) -> tuple[dict[tuple[int, int], str], str]:
        """Pair value spans with columns; returns ``(assignments, strategy)``.

        The strategy is ``"dependency"`` (tree-based, the paper's
        resolution) or ``"linear"`` (token-distance fallback) — recorded
        in the stage trace.
        """
        if self.config.use_dependency_resolution:
            strategy, tree = "dependency", parse_dependency(tokens)
        else:
            strategy, tree = "linear", _LinearTree(tokens)
        return self._pair_mentions(tokens, column_spans, value_spans,
                                   tree), strategy

    def _pair_mentions(self, tokens: list[str],
                       column_spans: dict[str, tuple[int, int]],
                       value_spans: list[ValueCandidate],
                       tree) -> dict[tuple[int, int], str]:
        """Pair value spans with columns (explicitly, then implicitly)."""
        resolved = resolve_mentions(tokens, column_spans, value_spans,
                                    tree=tree)
        paired_columns = {pair.column for pair in resolved}

        # Unresolved value spans: pair with their best-scoring column
        # (the column becomes an implicit mention — challenge 3).
        assignments = {(p.value_start, p.value_end): p.column
                       for p in resolved}
        for candidate in value_spans:
            key = (candidate.start, candidate.end)
            if key in assignments:
                continue
            free = [(candidate.score_of(col), col)
                    for col in candidate.columns
                    if col not in paired_columns]
            if not free:
                continue
            _, column = max(free)
            assignments[key] = column
            paired_columns.add(column)
        return assignments

    # -- detection stages ------------------------------------------------

    def _detect_values(self, tokens: list[str], table: Table,
                       use_classifier: bool = True,
                       ) -> list[ValueCandidate]:
        # ``use_classifier=False`` is the context-free mode: only exact
        # cell matches survive as value candidates.
        cfg = self.config
        stats = self._stats_for(table)
        by_span: dict[tuple[int, int], dict[str, float]] = {}

        # Exact cell matches (context-free case).
        for column in table.column_names:
            for cand in self.matcher.find_cell_values(
                    tokens, column, table.column_values(column)):
                by_span.setdefault((cand.start, cand.end), {})[column] = 1.0

        # Statistics-based detection (counterfactual-safe).  Spans made
        # purely of schema vocabulary (words of column names) are never
        # value candidates — a literal column word in the question is a
        # column mention, not a value (exact cell matches above already
        # cover the rare case where a cell equals a column word).
        schema_words = {w for name in table.column_names
                        for w in tokenize(name)}
        ranges = self._numeric_ranges(table)
        if (use_classifier and cfg.use_value_classifier
                and self.value_classifier._trained):
            for start, end in candidate_spans(tokens, cfg.max_value_span):
                window = tokens[start:end]
                if all(w in schema_words for w in window):
                    continue
                number = _try_float(" ".join(window))
                if number is not None:
                    # Bare numbers bind by value range, not embeddings
                    # (hash vectors carry no magnitude information).
                    for column in table.column_names:
                        bounds = ranges.get(column.lower())
                        if bounds and bounds[0] <= number <= bounds[1]:
                            entry = by_span.setdefault((start, end), {})
                            entry[column] = max(entry.get(column, 0.0), 0.9)
                    continue
                span_stats = self.value_classifier.span_stats(window)
                for column in table.column_names:
                    if column.lower() in ranges:
                        continue  # numeric columns take numeric values
                    prob = self.value_classifier.predict_proba(
                        span_stats, stats[column.lower()])
                    if prob > cfg.value_threshold:
                        entry = by_span.setdefault((start, end), {})
                        entry[column] = max(entry.get(column, 0.0), prob)

        # Keep a non-overlapping set, preferring longer/stronger spans.
        ordered = sorted(
            by_span.items(),
            key=lambda item: (-max(item[1].values()),
                              -(item[0][1] - item[0][0]), item[0][0]))
        chosen: list[ValueCandidate] = []
        taken: set[int] = set()
        for (start, end), columns in ordered:
            if any(i in taken for i in range(start, end)):
                continue
            taken.update(range(start, end))
            # An exact cell match (score 1.0) owns the span outright —
            # statistics-based candidates are speculative and must not
            # compete with literal database content.  Otherwise keep
            # only columns close to the best score.
            best_score = max(columns.values())
            if best_score >= 0.999:
                columns = {c: s for c, s in columns.items() if s >= 0.999}
            else:
                columns = {c: s for c, s in columns.items()
                           if s >= best_score - 0.15}
            cols = tuple(sorted(columns, key=columns.get, reverse=True))
            scores = tuple(columns[c] for c in cols)
            chosen.append(ValueCandidate(start, end, cols, scores))
        chosen.sort(key=lambda c: c.start)
        return chosen

    def column_scoring_plan(self, tokens: list[str], table: Table,
                            blocked: set[int],
                            use_classifier: bool = True,
                            ) -> tuple[dict[str, tuple[tuple[int, int], float]],
                                       list[str]]:
        """Phase one of column detection: matcher pass + classifier plan.

        Returns ``(scored, needed)``: spans the context-free matcher
        decided outright (span + confidence; matcher hits outrank
        classifier hits by the +2 offset) and the columns that still
        need a classifier score.  ``needed`` is what a cross-request
        scheduler coalesces into one ``score_columns`` pass before
        handing each request back to :meth:`columns_from_scores`.
        """
        cfg = self.config
        scored: dict[str, tuple[tuple[int, int], float]] = {}
        needed: list[str] = []
        for column in table.column_names:
            candidate = self.matcher.best(tokens, column)
            if candidate is not None and not any(
                    i in blocked for i in range(candidate.start, candidate.end)):
                scored[column] = ((candidate.start, candidate.end),
                                  2.0 + candidate.score)
                continue
            if not (use_classifier and cfg.use_column_classifier
                    and self.column_classifier._trained):
                continue
            needed.append(column)
        return scored, needed

    def columns_from_scores(self, tokens: list[str], blocked: set[int],
                            scored: dict[str, tuple[tuple[int, int], float]],
                            needed: list[str], probs,
                            ) -> dict[str, tuple[int, int]]:
        """Phase two: threshold, adversarially localize, dedup spans.

        ``probs`` are the classifier probabilities for ``needed`` (from
        :meth:`ColumnMentionClassifier.score_columns` — single request —
        or one lane of ``score_columns_multi``).  Adversarial
        localization (Section IV-C) needs per-column gradients and stays
        per-item by construction.
        """
        cfg = self.config
        scored = dict(scored)
        profiles = {}
        confidences = {}
        for column, prob in zip(needed, probs):
            if prob <= cfg.column_threshold:
                continue
            confidences[column] = float(prob)
            profiles[column] = compute_influence(
                self.column_classifier, tokens, tokenize(column),
                alpha=cfg.influence_alpha, beta=cfg.influence_beta,
                norm=cfg.influence_norm)
        if cfg.use_contrastive_influence and profiles:
            profiles = {
                col: contrastive_profile(
                    prof, [p for c, p in profiles.items() if c != col])
                for col, prof in profiles.items()
            }
        for column, profile in profiles.items():
            scored[column] = (
                locate_mention(profile, max_length=cfg.max_mention_span,
                               blocked=blocked),
                confidences[column])

        # A span can only mention one column: keep the most confident
        # claimant per identical span, drop the rest (they may still be
        # referenced through header symbols downstream).
        best_for_span: dict[tuple[int, int], tuple[float, str]] = {}
        for column, (span, confidence) in scored.items():
            incumbent = best_for_span.get(span)
            if incumbent is None or confidence > incumbent[0]:
                best_for_span[span] = (confidence, column)
        return {column: span
                for span, (_conf, column) in best_for_span.items()}

    def _detect_columns(self, tokens: list[str], table: Table,
                        blocked: set[int],
                        use_classifier: bool = True,
                        schema: SchemaEncoding | None = None,
                        info: dict | None = None,
                        ) -> dict[str, tuple[int, int]]:
        # ``use_classifier=False`` (context-free mode) keeps only the
        # matcher's string/edit/semantic/knowledge candidates.  Pass a
        # ``SchemaEncoding`` to reuse cached column-RNN states; ``info``
        # (when given) reports the classifier batch size.
        scored, needed = self.column_scoring_plan(
            tokens, table, blocked, use_classifier=use_classifier)
        if info is not None:
            info["batch"] = len(needed)
        probs = ()
        if needed:
            # One lockstep classifier pass over every undecided column —
            # the question side is computed once and broadcast.
            encoded = schema.encoded_subset(needed) if schema is not None \
                else None
            probs = self.column_classifier.score_columns(
                tokens, [tokenize(column) for column in needed],
                encoded=encoded)
        return self.columns_from_scores(tokens, blocked, scored, needed,
                                        probs)

    # -- symbol allocation ------------------------------------------------

    def _allocate_symbols(self, tokens: list[str], table: Table,
                          column_spans: dict[str, tuple[int, int]],
                          assignments: dict[tuple[int, int], str],
                          ) -> AnnotatedQuestion:
        # Order of first reference: explicit column mention position, or
        # the paired value's position for implicit columns.
        first_pos: dict[str, int] = {}
        for column, (start, _end) in column_spans.items():
            first_pos[column] = min(first_pos.get(column, start), start)
        for (start, _end), column in assignments.items():
            first_pos[column] = min(first_pos.get(column, start), start)

        ordered = sorted(first_pos, key=lambda col: (first_pos[col], col))
        indices = {col: i + 1 for i, col in enumerate(ordered)}

        columns = [ColumnAnnotation(col, indices[col],
                                    column_spans.get(col))
                   for col in ordered]
        values = [ValueAnnotation(column, indices[column], (start, end),
                                  " ".join(tokens[start:end]))
                  for (start, end), column in sorted(assignments.items())]
        return AnnotatedQuestion(question_tokens=tokens, table=table,
                                 columns=columns, values=values)


# ----------------------------------------------------------------------
# Annotation substages (the stage-graph decomposition of ``annotate``)
# ----------------------------------------------------------------------


class _AnnotatorStage:
    """Base for substages: stateless, bound to one annotator."""

    __slots__ = ("annotator",)

    def __init__(self, annotator: Annotator):
        self.annotator = annotator


class _ValueDetectionStage(_AnnotatorStage):
    """Exact cell matching plus (full mode) the statistics classifier."""

    name = "annotate.values"
    provides = ("value_spans",)

    def run(self, ctx) -> None:
        tokens = ctx.question_tokens
        if not tokens:
            raise ModelError("cannot annotate an empty question")
        use_classifier = ctx.mode == "full"
        spans = self.annotator._detect_values(tokens, ctx.table,
                                              use_classifier=use_classifier)
        ctx.artifacts["value_spans"] = spans
        ctx.note(classifier=use_classifier
                 and self.annotator.config.use_value_classifier,
                 spans=len(spans))


class _ColumnDetectionStage(_AnnotatorStage):
    """Context-free matching plus (full mode) classifier + adversarial
    localization of column mentions."""

    name = "annotate.columns"
    provides = ("column_spans",)

    def run(self, ctx) -> None:
        annotator = self.annotator
        value_spans = ctx.artifacts["value_spans"]
        blocked = {i for candidate in value_spans
                   for i in range(candidate.start, candidate.end)}
        use_classifier = ctx.mode == "full"
        # Fetch (or build) the cached per-table encoding only when the
        # classifier will actually run; the context-free rung must stay
        # cheap and model-independent.
        schema, cache_status = None, "off"
        if (use_classifier and annotator.config.use_column_classifier
                and annotator.column_classifier._trained):
            schema, cache_status = annotator.schema_encoding(ctx.table)
        info: dict = {}
        spans = annotator._detect_columns(ctx.question_tokens, ctx.table,
                                          blocked,
                                          use_classifier=use_classifier,
                                          schema=schema, info=info)
        ctx.artifacts["column_spans"] = spans
        ctx.note(classifier=use_classifier
                 and annotator.config.use_column_classifier,
                 columns=len(spans), schema_cache=cache_status,
                 batch=info.get("batch", 0))


class _MentionResolutionStage(_AnnotatorStage):
    """Pair value spans with columns; records which strategy resolved
    them (dependency tree vs the linear token-distance fallback)."""

    name = "annotate.resolve"
    provides = ("assignments",)

    def run(self, ctx) -> None:
        assignments, strategy = self.annotator.resolve_assignments(
            ctx.question_tokens, ctx.artifacts["column_spans"],
            ctx.artifacts["value_spans"])
        ctx.artifacts["assignments"] = assignments
        ctx.note(strategy=strategy, pairs=len(assignments))


class _SymbolAllocationStage(_AnnotatorStage):
    """Allocate ``c_i`` / ``v_i`` indices in first-reference order."""

    name = "annotate.symbols"
    provides = ("annotation",)

    def run(self, ctx) -> None:
        ctx.artifacts["annotation"] = self.annotator._allocate_symbols(
            ctx.question_tokens, ctx.table, ctx.artifacts["column_spans"],
            ctx.artifacts["assignments"])


class _LinearTree:
    """Token-distance fallback when dependency resolution is disabled."""

    def __init__(self, tokens: list[str]):
        self.tokens = tokens

    def span_distance(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        return min(abs(i - j) for i in range(*a) for j in range(*b))


def _try_float(text: str) -> float | None:
    try:
        return float(text)
    except ValueError:
        return None


def _find_subsequence(haystack: list[str], needle: list[str]) -> int | None:
    if not needle:
        return None
    for i in range(len(haystack) - len(needle) + 1):
        if haystack[i:i + len(needle)] == needle:
            return i
    return None
