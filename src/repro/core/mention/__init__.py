"""Mention detection and resolution (Section IV of the paper)."""

from repro.core.mention.adversarial import (
    InfluenceProfile,
    compute_influence,
    contrastive_profile,
    locate_mention,
)
from repro.core.mention.column_classifier import (
    ClassifierConfig,
    ColumnMentionClassifier,
    EmbeddedWord,
    EncodedColumns,
)
from repro.core.mention.matcher import ColumnMatcher, MentionCandidate
from repro.core.mention.resolution import (
    ResolvedPair,
    ValueCandidate,
    resolve_mentions,
)
from repro.core.mention.value_classifier import (
    ValueDetectionClassifier,
    candidate_spans,
)

__all__ = [
    "ClassifierConfig", "ColumnMentionClassifier", "EmbeddedWord",
    "EncodedColumns",
    "InfluenceProfile", "compute_influence", "contrastive_profile",
    "locate_mention",
    "ColumnMatcher", "MentionCandidate",
    "ValueDetectionClassifier", "candidate_spans",
    "ValueCandidate", "ResolvedPair", "resolve_mentions",
]
