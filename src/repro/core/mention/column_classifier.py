"""Column Mention Binary Classifier (Section IV-B).

Given a question ``q`` and a column ``c`` (both as word sequences), the
classifier predicts whether ``c`` is mentioned in ``q``.  Architecture,
following the paper:

(i)   a **word embedder** ``emb(w) = [E_word(w), E_char(w)]`` — frozen
      semantic word vectors (our GloVe stand-in) concatenated with a
      trainable multi-width character CNN;
(ii)  an LSTM over the question and a separate BiLSTM over the column,
      each with per-layer affine pre-transforms;
(iii) a bidirectional LSTM over the column states whose input at step
      ``t`` is ``[s_t^c ; Σ_j α_tj s_j^q]`` with additive attention
      scores ``e_t = v^T tanh(W1 S^q + (W2 s_t^c + W3 d_{t-1} + b) ⊗ e_n)``,
      followed by an MLP over the zero-padded concatenation of all
      ``d_t``.

Training needs only (question, SQL) pairs: the positive label for
``(q, c)`` is "column ``c`` appears in the SQL of ``q``".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.nn import (
    MLP,
    Adam,
    AdditiveAttention,
    BiLSTM,
    CharConvEncoder,
    InferenceArena,
    LSTM,
    LSTMCell,
    Linear,
    Module,
    Tensor,
    binary_cross_entropy_with_logits,
    clip_grad_norm,
    concat,
    merge_steps,
    no_grad,
    pack_steps,
    sigmoid_,
)
from repro.text import CHAR_VOCAB_SIZE, WordEmbeddings, char_ids

__all__ = ["ClassifierConfig", "ColumnMentionClassifier", "EmbeddedWord",
           "EncodedColumns"]


@dataclass
class ClassifierConfig:
    """Hyper-parameters of the column-mention classifier."""

    word_dim: int = 32
    char_dim: int = 12
    char_out_per_width: int = 6
    char_widths: tuple[int, ...] = (3, 4, 5)
    hidden: int = 32
    question_layers: int = 1
    attention_dim: int = 32
    mlp_hidden: int = 32
    max_column_words: int = 4
    seed: int = 0

    @property
    def char_out(self) -> int:
        return self.char_out_per_width * len(self.char_widths)

    @property
    def emb_dim(self) -> int:
        return self.word_dim + self.char_out


@dataclass
class EmbeddedWord:
    """One word's embedded representation with gradient capture points.

    ``word_leaf`` and ``char_leaf`` are graph *leaves*, so after a
    backward pass their ``.grad`` holds exactly ``dL/dE_word(w)`` and
    ``dL/dE_char(w)`` — the quantities the adversarial text method
    (Section IV-C) measures.
    """

    word: str
    word_leaf: Tensor
    char_leaf: Tensor
    combined: Tensor


@dataclass
class EncodedColumns:
    """Question-independent column-side encodings of one schema.

    ``states[t]`` holds the column BiLSTM output at step ``t`` for every
    column (rows past a column's length are padding) and ``units`` the
    unit-normalized word+char embeddings the similarity features use.
    Pure numpy — an inference artifact, safe to cache across requests
    until the classifier is retrained.
    """

    tokens: list[list[str]]      # per column, truncated to max words
    lengths: np.ndarray          # (B,) true token counts
    states: list[np.ndarray]     # T × (B, 2·hidden) column-RNN outputs
    units: np.ndarray            # (B, T, emb_dim); zero rows past length

    # Lazy float32 snapshot (stacked states, units) used by the arena
    # inference path.  Class-level None; built on first use and carried
    # through subset() so warm requests never re-cast.  Lives on the
    # cached SchemaEncoding, so it is invalidated with the schema cache
    # on refit.
    _f32: tuple[np.ndarray, np.ndarray] | None = None

    def as_f32(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(states32 (T, B, 2H), units32 (B, T, emb))``."""
        if self._f32 is None:
            states32 = np.ascontiguousarray(np.stack(self.states)
                                            if self.states else
                                            np.zeros((0, len(self.tokens), 0)),
                                            dtype=np.float32)
            units32 = np.ascontiguousarray(self.units, dtype=np.float32)
            self._f32 = (states32, units32)
        return self._f32

    def subset(self, indices: list[int]) -> "EncodedColumns":
        """Row-gather a sub-batch of columns (no recomputation)."""
        idx = np.asarray(indices, dtype=np.intp)
        lengths = self.lengths[idx]
        t_max = int(lengths.max()) if len(lengths) else 0
        sub = EncodedColumns(
            tokens=[self.tokens[i] for i in indices],
            lengths=lengths,
            states=[s[idx] for s in self.states[:t_max]],
            units=self.units[idx][:, :t_max])
        if self._f32 is not None:
            states32, units32 = self._f32
            sub._f32 = (np.ascontiguousarray(states32[:t_max, idx]),
                        np.ascontiguousarray(units32[idx][:, :t_max]))
        return sub

    def __len__(self) -> int:
        return len(self.tokens)


class ColumnMentionClassifier(Module):
    """The machine-comprehension binary classifier of Section IV-B."""

    def __init__(self, embeddings: WordEmbeddings,
                 config: ClassifierConfig | None = None):
        super().__init__()
        self.config = config or ClassifierConfig()
        if embeddings.dim != self.config.word_dim:
            raise ModelError(
                f"embeddings dim {embeddings.dim} != config.word_dim "
                f"{self.config.word_dim}")
        self.embeddings = embeddings
        rng = np.random.default_rng(self.config.seed)
        cfg = self.config

        self.char_encoder = CharConvEncoder(
            CHAR_VOCAB_SIZE, cfg.char_dim, cfg.char_out_per_width, rng,
            widths=cfg.char_widths)
        self.question_rnn = LSTM(cfg.emb_dim, cfg.hidden, rng,
                                 num_layers=cfg.question_layers)
        self.column_rnn = BiLSTM(cfg.emb_dim, cfg.hidden, rng)
        # Part (iii): attentive BiLSTM over column states.
        attn_in = 2 * cfg.hidden + cfg.hidden  # [s_t^c ; context over S^q]
        self.fwd_cell = LSTMCell(attn_in, cfg.hidden, rng)
        self.bwd_cell = LSTMCell(attn_in, cfg.hidden, rng)
        # Attention query is [s_t^c ; d_{t-1}] (equivalent to W2 s + W3 d + b).
        self.attention = AdditiveAttention(
            memory_dim=cfg.hidden, query_dim=2 * cfg.hidden + cfg.hidden,
            attention_dim=cfg.attention_dim, rng=rng)
        # tanh hidden units: the head sees zero-padded features, and a
        # ReLU hidden layer can die under Adam on this input pattern.
        # Head input: attentive BiLSTM states plus, per column word, the
        # max/mean cosine similarity against question words (the
        # BiDAF-style similarity term; computed in-graph so adversarial
        # gradients flow to exactly the matching question word).
        self.head = MLP(
            [(2 * cfg.hidden + 2) * cfg.max_column_words, cfg.mlp_hidden, 1],
            rng, hidden_activation="tanh")
        # Shared zero block padding short columns to max_column_words —
        # constant, so one instance serves every forward call (gradients
        # never flow into a non-leaf zeros tensor).
        self._feature_pad = Tensor.zeros(1, 2 * cfg.hidden + 2)
        self._trained = False
        # Arena inference state (serving fast path).  ``arena_inference``
        # and ``quantized_scoring`` are plain attributes (not config
        # fields) so persisted configs stay wire-compatible; NLIDB
        # mirrors its flags onto them at construction.
        self.arena = InferenceArena()
        self.arena_inference = True
        self.quantized_scoring = False
        self._wordvec32: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Embedding
    # ------------------------------------------------------------------

    def embed_words(self, words: list[str],
                    capture: bool = False) -> list[EmbeddedWord]:
        """Embed a word sequence.

        With ``capture=True`` the word vector and the char-CNN output
        become graph leaves so their gradients can be read afterwards
        (inference-time adversarial analysis; training gradients into
        the char CNN are cut, so use ``capture=False`` when fitting).
        """
        out = []
        for word in words:
            word_leaf = Tensor(
                self.embeddings.vector(word).reshape(1, -1),
                requires_grad=capture)
            char_vec = self.char_encoder(char_ids(word)).reshape(
                1, self.config.char_out)
            if capture:
                char_vec = Tensor(char_vec.numpy().copy(), requires_grad=True)
            combined = concat([word_leaf, char_vec], axis=-1)
            out.append(EmbeddedWord(word, word_leaf, char_vec, combined))
        return out

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------

    def _question_side(self, question: list[str], capture: bool = False,
                       ) -> tuple[list[EmbeddedWord], Tensor, Tensor]:
        """Column-independent work: ``(embedded, memory S^q, q_unit)``.

        Computed once per question and shared by every column — both by
        :meth:`forward` (one column) and :meth:`score_columns` (all of
        a table's columns in one batch).
        """
        q_embedded = self.embed_words(question, capture=capture)
        s_q = self.question_rnn([e.combined for e in q_embedded])
        memory = concat(s_q, axis=0)  # (n, hidden)
        q_matrix = concat([e.combined for e in q_embedded], axis=0)
        q_norms = ((q_matrix * q_matrix).sum(axis=1, keepdims=True)
                   + 1e-8) ** 0.5
        return q_embedded, memory, q_matrix / q_norms

    def forward(self, question: list[str], column: list[str],
                capture: bool = False,
                ) -> tuple[Tensor, list[EmbeddedWord]]:
        """Return ``(logit, embedded_question_words)``."""
        if not question or not column:
            raise ModelError("question and column must be non-empty")
        cfg = self.config
        column = column[:cfg.max_column_words]

        q_embedded, memory, q_unit = self._question_side(question,
                                                         capture=capture)
        c_embedded = self.embed_words(column)
        s_c = self.column_rnn([e.combined for e in c_embedded])

        # Attentive BiLSTM over the column (part iii).
        def run_direction(cell, states):
            h, c = cell.initial_state(1)
            outputs = []
            for s_t in states:
                query = concat([s_t, h], axis=-1).reshape(
                    s_t.shape[1] + h.shape[1])
                context, _ = self.attention(memory, query)
                z_t = concat([s_t, context.reshape(1, -1)], axis=-1)
                h, c = cell(z_t, h, c)
                outputs.append(h)
            return outputs

        fwd = run_direction(self.fwd_cell, s_c)
        bwd = list(reversed(run_direction(self.bwd_cell, list(reversed(s_c)))))
        d_states = [concat([f, b], axis=-1) for f, b in zip(fwd, bwd)]

        # BiDAF-style similarity features: per column word, the max and
        # mean cosine similarity against all question words, computed on
        # the combined word+char embeddings *inside the graph*.
        for t, emb_t in enumerate(c_embedded):
            c_norm = ((emb_t.combined * emb_t.combined).sum(
                axis=1, keepdims=True) + 1e-8) ** 0.5
            c_unit = emb_t.combined / c_norm
            sims = q_unit @ c_unit.reshape(cfg.emb_dim)  # (n,)
            sim_features = concat(
                [sims.max(axis=0, keepdims=True),
                 sims.mean(axis=0, keepdims=True)], axis=-1).reshape(1, 2)
            d_states[t] = concat([d_states[t], sim_features], axis=-1)

        # Zero-pad to max_column_words and concatenate for the MLP head.
        while len(d_states) < cfg.max_column_words:
            d_states.append(self._feature_pad)
        features = concat(d_states, axis=-1)
        logit = self.head(features).reshape(1)
        return logit, q_embedded

    # ------------------------------------------------------------------
    # Training / inference
    # ------------------------------------------------------------------

    def fit(self, pairs: list[tuple[list[str], list[str], int]],
            epochs: int = 5, lr: float = 2e-3, clip: float = 5.0,
            shuffle_seed: int = 0, verbose: bool = False) -> list[float]:
        """Train on ``(question_tokens, column_tokens, label)`` triples.

        Returns the per-epoch mean loss.
        """
        if not pairs:
            raise ModelError("fit() needs at least one training pair")
        optimizer = Adam(self.parameters(), lr=lr)
        rng = np.random.default_rng(shuffle_seed)
        losses = []
        order = np.arange(len(pairs))
        for epoch in range(epochs):
            rng.shuffle(order)
            total = 0.0
            for idx in order:
                question, column, label = pairs[idx]
                optimizer.zero_grad()
                logit, _ = self(question, column)
                loss = binary_cross_entropy_with_logits(logit, [float(label)])
                loss.backward()
                clip_grad_norm(self.parameters(), clip)
                optimizer.step()
                total += loss.item()
            losses.append(total / len(pairs))
            if verbose:
                print(f"[column-classifier] epoch {epoch + 1}: "
                      f"loss={losses[-1]:.4f}")
        self._trained = True
        return losses

    def predict_proba(self, question: list[str], column: list[str]) -> float:
        """Probability that ``column`` is mentioned in ``question``."""
        with no_grad():
            logit, _ = self(question, column)
        return float(1.0 / (1.0 + np.exp(-logit.numpy()[0])))

    # ------------------------------------------------------------------
    # Batched inference (the vectorized fast path)
    # ------------------------------------------------------------------

    def encode_columns(self, columns: list[list[str]]) -> EncodedColumns:
        """Precompute the question-independent side of every column.

        One lockstep column-RNN pass over all B columns; the result is
        a numpy artifact reusable across every question asked against
        the same schema (see :class:`EncodedColumns`).
        """
        if not columns:
            raise ModelError("encode_columns() needs at least one column")
        cfg = self.config
        tokens = [list(column[:cfg.max_column_words]) for column in columns]
        if any(not column for column in tokens):
            raise ModelError("question and column must be non-empty")
        with no_grad():
            embedded = [self.embed_words(column) for column in tokens]
            steps, lengths = pack_steps(
                [[e.combined for e in col] for col in embedded])
            states = [s.numpy()
                      for s in self.column_rnn.forward_batch(steps, lengths)]
            units = np.zeros((len(tokens), len(steps), cfg.emb_dim))
            for b, col in enumerate(embedded):
                for t, emb_t in enumerate(col):
                    vec = emb_t.combined.numpy()
                    norm = np.sqrt((vec * vec).sum() + 1e-8)
                    units[b, t] = vec.reshape(-1) / norm
        return EncodedColumns(tokens=tokens, lengths=lengths,
                              states=states, units=units)

    def score_columns(self, question: list[str],
                      columns: list[list[str]] | None = None, *,
                      encoded: EncodedColumns | None = None) -> np.ndarray:
        """Mention probabilities of many columns in one batched pass.

        The question side (embedding, question LSTM, unit matrix) runs
        once; the attentive BiLSTM advances all columns in lockstep with
        batched attention.  Equals per-column :meth:`predict_proba` to
        working precision — float32 on the default arena path, float64
        with ``arena_inference`` off (BLAS path differences only).  Pass
        ``encoded`` to reuse a cached :meth:`encode_columns` artifact.
        """
        if not question:
            raise ModelError("question and column must be non-empty")
        cfg = self.config
        with no_grad():
            if encoded is None:
                if not columns:
                    raise ModelError(
                        "score_columns() needs columns or encoded=")
                encoded = self.encode_columns(columns)
            if self.arena_inference:
                return self._score_columns_np(question, encoded)
            batch = len(encoded)
            total = len(encoded.states)
            _, memory, q_unit = self._question_side(question)

            needs_mask = int(encoded.lengths.min()) < total
            masks = [(encoded.lengths > t).astype(np.float64).reshape(-1, 1)
                     for t in range(total)] if needs_mask else None

            def run_direction(cell, reverse):
                h, c = cell.initial_state(batch)
                outputs: list[Tensor | None] = [None] * total
                order = range(total - 1, -1, -1) if reverse \
                    else range(total)
                for t in order:
                    s_t = Tensor(encoded.states[t])
                    query = concat([s_t, h], axis=-1)
                    context, _ = self.attention.forward_batch(memory, query)
                    z_t = concat([s_t, context], axis=-1)
                    h_new, c_new = cell(z_t, h, c)
                    if masks is not None:
                        m = Tensor(masks[t])
                        h = h_new * m + h * (1.0 - m)
                        c = c_new * m + c * (1.0 - m)
                    else:
                        h, c = h_new, c_new
                    outputs[t] = h
                return outputs

            fwd = run_direction(self.fwd_cell, reverse=False)
            bwd = run_direction(self.bwd_cell, reverse=True)

            # Similarity features for all (column word, question) pairs:
            # (B, T, emb) × (n, emb) → (B, T, n), then max/mean over n.
            sims = encoded.units @ q_unit.numpy().T
            sim_max = sims.max(axis=2)
            sim_mean = sims.mean(axis=2)

            # Assemble the zero-padded feature matrix exactly as the
            # per-item path does: valid steps get [d_t; max; mean],
            # steps past a column's length stay zero.
            width = 2 * cfg.hidden + 2
            features = np.zeros((batch, width * cfg.max_column_words))
            for t in range(total):
                block = np.concatenate(
                    [fwd[t].numpy(), bwd[t].numpy(),
                     sim_max[:, t:t + 1], sim_mean[:, t:t + 1]], axis=1)
                valid = encoded.lengths > t
                features[valid, t * width:(t + 1) * width] = block[valid]
            logits = self.head(Tensor(features)).numpy().reshape(batch)
        return 1.0 / (1.0 + np.exp(-logits))

    # ------------------------------------------------------------------
    # Arena inference twins (float32, allocation-free when warm)
    # ------------------------------------------------------------------

    def _embed_word_np(self, word: str, out: np.ndarray) -> None:
        """Write ``[E_word(w); E_char(w)]`` into ``out`` (emb_dim,)."""
        cfg = self.config
        vec = self._wordvec32.get(word)
        if vec is None:
            # Frozen hash embeddings never change; cache float32 rows
            # permanently so warm requests skip the hash computation.
            vec = self.embeddings.vector(word).astype(np.float32)
            self._wordvec32[word] = vec
        out[:cfg.word_dim] = vec
        self.char_encoder.forward_np(
            char_ids(word), out[cfg.word_dim:], self.arena, "q.char")

    def _question_side_np(self, question: list[str], tag: str,
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Arena twin of :meth:`_question_side`.

        Returns ``(memory (n, hidden), memory_proj (n, attn), q_unit
        (n, emb))`` — all arena-owned under ``tag``-scoped keys, so
        multi-request callers pass distinct tags per request.
        """
        cfg = self.config
        arena = self.arena
        n = len(question)
        emb = arena.take(f"{tag}.emb", (n, cfg.emb_dim))
        for i, word in enumerate(question):
            self._embed_word_np(word, emb[i])
        memory = self.question_rnn.forward_batch_np(
            emb.reshape(n, 1, cfg.emb_dim), None, arena,
            f"{tag}.rnn").reshape(n, cfg.hidden)
        mp = self.attention.project_memory_np(memory, arena, f"{tag}.mp")
        q_unit = arena.take(f"{tag}.unit", (n, cfg.emb_dim))
        norms = arena.take(f"{tag}.norm", (n, 1))
        np.multiply(emb, emb, out=q_unit)
        np.sum(q_unit, axis=1, keepdims=True, out=norms)
        norms += 1e-8
        np.sqrt(norms, out=norms)
        np.divide(emb, norms, out=q_unit)
        return memory, mp, q_unit

    def _attentive_pass_np(self, states32: np.ndarray,
                           lengths: np.ndarray,
                           attend, tag: str,
                           ) -> tuple[np.ndarray, np.ndarray]:
        """Run both attentive-LSTM directions over ``(T, B, 2H)`` states.

        ``attend(query, tag)`` computes the per-request attention
        contexts (single memory or grouped); returns the ``(T, B, H)``
        forward and backward output slabs.
        """
        cfg = self.config
        arena = self.arena
        total, batch, _ = states32.shape
        hs = cfg.hidden
        needs_mask = int(lengths.min()) < total
        masks = None
        if needs_mask:
            masks = arena.take(f"{tag}.mask", (total, batch, 1))
            masks[...] = (lengths[None, :, None]
                          > np.arange(total)[:, None, None])
        outs = []
        for direction, cell in ((0, self.fwd_cell), (1, self.bwd_cell)):
            dtag = f"{tag}.d{direction}"
            out = arena.take(f"{dtag}.out", (total, batch, hs))
            h = arena.take(f"{dtag}.h", (batch, hs))
            c = arena.take(f"{dtag}.c", (batch, hs))
            hn = arena.take(f"{dtag}.hn", (batch, hs))
            cn = arena.take(f"{dtag}.cn", (batch, hs))
            query = arena.take(f"{dtag}.q", (batch, 3 * hs))
            xh = arena.take(f"{dtag}.xh", (batch, 4 * hs))
            h[...] = 0.0
            c[...] = 0.0
            order = range(total - 1, -1, -1) if direction else range(total)
            for t in order:
                s_t = states32[t]
                query[:, :2 * hs] = s_t
                query[:, 2 * hs:] = h
                contexts = attend(query, dtag)
                xh[:, :2 * hs] = s_t
                xh[:, 2 * hs:3 * hs] = contexts
                xh[:, 3 * hs:] = h
                cell.step_np(xh, c, hn, cn, arena, f"{dtag}.cell")
                if masks is not None:
                    m = masks[t]
                    np.subtract(hn, h, out=hn)
                    hn *= m
                    h += hn
                    np.subtract(cn, c, out=cn)
                    cn *= m
                    c += cn
                else:
                    h, hn = hn, h
                    c, cn = cn, c
                out[t] = h
            outs.append(out)
        return outs[0], outs[1]

    def _features_np(self, fwd: np.ndarray, bwd: np.ndarray,
                     sim_max: np.ndarray, sim_mean: np.ndarray,
                     lengths: np.ndarray, rows: slice,
                     features: np.ndarray) -> None:
        """Fill one request's rows of the zero-padded feature matrix."""
        cfg = self.config
        hs = cfg.hidden
        width = 2 * hs + 2
        total = sim_max.shape[1]
        for t in range(total):
            seg = features[rows, t * width:(t + 1) * width]
            seg[:, :hs] = fwd[t, rows]
            seg[:, hs:2 * hs] = bwd[t, rows]
            seg[:, 2 * hs] = sim_max[:, t]
            seg[:, 2 * hs + 1] = sim_mean[:, t]
            invalid = lengths <= t
            if invalid.any():
                seg[invalid] = 0.0

    def _sims_np(self, units32: np.ndarray, q_unit: np.ndarray, tag: str,
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Max/mean cosine similarities: ``(B, T)`` each."""
        arena = self.arena
        batch, total, _ = units32.shape
        sims = arena.take(f"{tag}.sims", (batch, total, q_unit.shape[0]))
        np.matmul(units32, q_unit.T, out=sims)
        sim_max = arena.take(f"{tag}.smax", (batch, total))
        sim_mean = arena.take(f"{tag}.smean", (batch, total))
        np.amax(sims, axis=2, out=sim_max)
        np.mean(sims, axis=2, out=sim_mean)
        return sim_max, sim_mean

    def _score_columns_np(self, question: list[str],
                          encoded: EncodedColumns) -> np.ndarray:
        """Arena/float32 twin of the batched :meth:`score_columns` body."""
        cfg = self.config
        arena = self.arena
        batch = len(encoded)
        states32, units32 = encoded.as_f32()
        total = states32.shape[0]
        memory, mp, q_unit = self._question_side_np(question, "q")

        def attend(query, dtag):
            contexts, _ = self.attention.forward_batch_np(
                memory, mp, query, arena, f"{dtag}.att")
            return contexts

        fwd, bwd = self._attentive_pass_np(
            states32, encoded.lengths, attend, "col")
        sim_max, sim_mean = self._sims_np(units32, q_unit, "col")
        width = 2 * cfg.hidden + 2
        features = arena.take("col.feats", (batch, width * cfg.max_column_words))
        features[...] = 0.0
        self._features_np(fwd, bwd, sim_max, sim_mean, encoded.lengths,
                          slice(0, batch), features)
        logits = self.head.forward_np(features, arena, "col.head",
                                      quantized=self.quantized_scoring)
        probs = sigmoid_(logits)
        # Small per-request copy: callers hold the result across requests,
        # so it must not alias a reused slab.
        return probs.reshape(batch).astype(np.float64)

    def _score_columns_multi_np(
            self, items: list[tuple[list[str], EncodedColumns]],
            ) -> list[np.ndarray]:
        """Arena/float32 twin of :meth:`score_columns_multi`."""
        cfg = self.config
        arena = self.arena
        hs = cfg.hidden
        sizes = [len(encoded) for _question, encoded in items]
        batch = int(sum(sizes))
        offsets = np.concatenate([[0], np.cumsum(sizes[:-1])]) \
            if len(sizes) > 1 else np.zeros(1, dtype=np.intp)
        slices = [slice(int(off), int(off) + size)
                  for off, size in zip(offsets, sizes)]
        total = max(len(encoded.states) for _q, encoded in items)
        union = arena.take("m.states", (total, batch, 2 * hs))
        union[...] = 0.0
        per_request = []
        for rows, (question, encoded) in zip(slices, items):
            if not question:
                raise ModelError("question and column must be non-empty")
            states32, units32 = encoded.as_f32()
            union[:states32.shape[0], rows] = states32
            per_request.append((states32, units32))
        lengths = np.concatenate(
            [encoded.lengths for _q, encoded in items])

        sides = [self._question_side_np(question, f"m.q{ri}")
                 for ri, (question, _encoded) in enumerate(items)]

        def attend(query, dtag):
            contexts = arena.take(f"{dtag}.gctx", (batch, hs))
            for g, (rows, (memory, mp, _q_unit)) in enumerate(
                    zip(slices, sides)):
                ctx_g, _ = self.attention.forward_batch_np(
                    memory, mp, query[rows], arena, f"{dtag}.att{g}")
                contexts[rows] = ctx_g
            return contexts

        fwd, bwd = self._attentive_pass_np(union, lengths, attend, "m.col")
        width = 2 * hs + 2
        features = arena.take("m.feats", (batch, width * cfg.max_column_words))
        features[...] = 0.0
        for g, (rows, (question, encoded)) in enumerate(zip(slices, items)):
            _states32, units32 = per_request[g]
            sim_max, sim_mean = self._sims_np(units32, sides[g][2], f"m.s{g}")
            self._features_np(fwd, bwd, sim_max, sim_mean, encoded.lengths,
                              rows, features)
        logits = self.head.forward_np(features, arena, "m.head",
                                      quantized=self.quantized_scoring)
        probs = sigmoid_(logits).reshape(batch)
        return [probs[rows].astype(np.float64) for rows in slices]

    def score_columns_multi(
            self, items: list[tuple[list[str], EncodedColumns]],
            ) -> list[np.ndarray]:
        """Score several requests' columns in ONE attentive-BiLSTM pass.

        The cross-request form of :meth:`score_columns`: ``items`` pairs
        each question with the encoded columns it should score — usually
        different schemas with ragged column counts and word lengths.
        The column-side packings are fused with
        :func:`repro.nn.merge_steps`, the attentive-BiLSTM cells and the
        MLP head advance the union batch, and attention runs grouped so
        every request attends over its *own* question memory
        (:meth:`AdditiveAttention.forward_grouped`).

        Everything whose reduction shape depends on the request — the
        question side, attention softmax/context, similarity features —
        is computed per request with exactly the shapes
        :meth:`score_columns` would use, so item ``i``'s probabilities
        match a stand-alone call up to BLAS batch-size differences in
        the shared matmuls (empirically bit-equal on this substrate;
        pinned by the kernel differential tests).
        """
        if not items:
            return []
        if self.arena_inference:
            return self._score_columns_multi_np(items)
        cfg = self.config
        with no_grad():
            sizes = [len(encoded) for _question, encoded in items]
            merged, lengths, offsets = merge_steps(
                [(encoded.states, encoded.lengths)
                 for _question, encoded in items])
            slices = [slice(int(off), int(off) + size)
                      for off, size in zip(offsets, sizes)]
            batch = int(sum(sizes))
            total = len(merged)

            memories: list[Tensor] = []
            q_units: list[np.ndarray] = []
            for question, _encoded in items:
                if not question:
                    raise ModelError("question and column must be non-empty")
                _, memory, q_unit = self._question_side(question)
                memories.append(memory)
                q_units.append(q_unit.numpy())

            needs_mask = int(lengths.min()) < total
            masks = [(lengths > t).astype(np.float64).reshape(-1, 1)
                     for t in range(total)] if needs_mask else None

            def run_direction(cell, reverse):
                h, c = cell.initial_state(batch)
                outputs: list[Tensor | None] = [None] * total
                order = range(total - 1, -1, -1) if reverse \
                    else range(total)
                for t in order:
                    s_t = Tensor(merged[t])
                    query = concat([s_t, h], axis=-1)
                    contexts, _ = self.attention.forward_grouped(
                        memories, query, slices)
                    z_t = concat([s_t, contexts], axis=-1)
                    h_new, c_new = cell(z_t, h, c)
                    if masks is not None:
                        m = Tensor(masks[t])
                        h = h_new * m + h * (1.0 - m)
                        c = c_new * m + c * (1.0 - m)
                    else:
                        h, c = h_new, c_new
                    outputs[t] = h
                return outputs

            fwd = run_direction(self.fwd_cell, reverse=False)
            bwd = run_direction(self.bwd_cell, reverse=True)

            # Per-request similarity features and feature assembly: the
            # reductions run over each request's own question words, so
            # the blocks equal the single-request path's exactly.
            width = 2 * cfg.hidden + 2
            features = np.zeros((batch, width * cfg.max_column_words))
            for rows, (_question, encoded), q_unit in zip(
                    slices, items, q_units):
                sims = encoded.units @ q_unit.T
                sim_max = sims.max(axis=2)
                sim_mean = sims.mean(axis=2)
                block_rows = features[rows.start:rows.stop]
                for t in range(len(encoded.states)):
                    block = np.concatenate(
                        [fwd[t].numpy()[rows.start:rows.stop],
                         bwd[t].numpy()[rows.start:rows.stop],
                         sim_max[:, t:t + 1], sim_mean[:, t:t + 1]], axis=1)
                    valid = encoded.lengths > t
                    block_rows[valid, t * width:(t + 1) * width] = block[valid]
            logits = self.head(Tensor(features)).numpy().reshape(batch)
            probs = 1.0 / (1.0 + np.exp(-logits))
        return [probs[rows.start:rows.stop] for rows in slices]

    def predict(self, question: list[str], column: list[str],
                threshold: float = 0.5) -> bool:
        """Binary mention decision."""
        return self.predict_proba(question, column) > threshold
