"""Column Mention Binary Classifier (Section IV-B).

Given a question ``q`` and a column ``c`` (both as word sequences), the
classifier predicts whether ``c`` is mentioned in ``q``.  Architecture,
following the paper:

(i)   a **word embedder** ``emb(w) = [E_word(w), E_char(w)]`` — frozen
      semantic word vectors (our GloVe stand-in) concatenated with a
      trainable multi-width character CNN;
(ii)  an LSTM over the question and a separate BiLSTM over the column,
      each with per-layer affine pre-transforms;
(iii) a bidirectional LSTM over the column states whose input at step
      ``t`` is ``[s_t^c ; Σ_j α_tj s_j^q]`` with additive attention
      scores ``e_t = v^T tanh(W1 S^q + (W2 s_t^c + W3 d_{t-1} + b) ⊗ e_n)``,
      followed by an MLP over the zero-padded concatenation of all
      ``d_t``.

Training needs only (question, SQL) pairs: the positive label for
``(q, c)`` is "column ``c`` appears in the SQL of ``q``".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.nn import (
    MLP,
    Adam,
    AdditiveAttention,
    BiLSTM,
    CharConvEncoder,
    LSTM,
    LSTMCell,
    Linear,
    Module,
    Tensor,
    binary_cross_entropy_with_logits,
    clip_grad_norm,
    concat,
    merge_steps,
    no_grad,
    pack_steps,
)
from repro.text import CHAR_VOCAB_SIZE, WordEmbeddings, char_ids

__all__ = ["ClassifierConfig", "ColumnMentionClassifier", "EmbeddedWord",
           "EncodedColumns"]


@dataclass
class ClassifierConfig:
    """Hyper-parameters of the column-mention classifier."""

    word_dim: int = 32
    char_dim: int = 12
    char_out_per_width: int = 6
    char_widths: tuple[int, ...] = (3, 4, 5)
    hidden: int = 32
    question_layers: int = 1
    attention_dim: int = 32
    mlp_hidden: int = 32
    max_column_words: int = 4
    seed: int = 0

    @property
    def char_out(self) -> int:
        return self.char_out_per_width * len(self.char_widths)

    @property
    def emb_dim(self) -> int:
        return self.word_dim + self.char_out


@dataclass
class EmbeddedWord:
    """One word's embedded representation with gradient capture points.

    ``word_leaf`` and ``char_leaf`` are graph *leaves*, so after a
    backward pass their ``.grad`` holds exactly ``dL/dE_word(w)`` and
    ``dL/dE_char(w)`` — the quantities the adversarial text method
    (Section IV-C) measures.
    """

    word: str
    word_leaf: Tensor
    char_leaf: Tensor
    combined: Tensor


@dataclass
class EncodedColumns:
    """Question-independent column-side encodings of one schema.

    ``states[t]`` holds the column BiLSTM output at step ``t`` for every
    column (rows past a column's length are padding) and ``units`` the
    unit-normalized word+char embeddings the similarity features use.
    Pure numpy — an inference artifact, safe to cache across requests
    until the classifier is retrained.
    """

    tokens: list[list[str]]      # per column, truncated to max words
    lengths: np.ndarray          # (B,) true token counts
    states: list[np.ndarray]     # T × (B, 2·hidden) column-RNN outputs
    units: np.ndarray            # (B, T, emb_dim); zero rows past length

    def subset(self, indices: list[int]) -> "EncodedColumns":
        """Row-gather a sub-batch of columns (no recomputation)."""
        idx = np.asarray(indices, dtype=np.intp)
        lengths = self.lengths[idx]
        t_max = int(lengths.max()) if len(lengths) else 0
        return EncodedColumns(
            tokens=[self.tokens[i] for i in indices],
            lengths=lengths,
            states=[s[idx] for s in self.states[:t_max]],
            units=self.units[idx][:, :t_max])

    def __len__(self) -> int:
        return len(self.tokens)


class ColumnMentionClassifier(Module):
    """The machine-comprehension binary classifier of Section IV-B."""

    def __init__(self, embeddings: WordEmbeddings,
                 config: ClassifierConfig | None = None):
        super().__init__()
        self.config = config or ClassifierConfig()
        if embeddings.dim != self.config.word_dim:
            raise ModelError(
                f"embeddings dim {embeddings.dim} != config.word_dim "
                f"{self.config.word_dim}")
        self.embeddings = embeddings
        rng = np.random.default_rng(self.config.seed)
        cfg = self.config

        self.char_encoder = CharConvEncoder(
            CHAR_VOCAB_SIZE, cfg.char_dim, cfg.char_out_per_width, rng,
            widths=cfg.char_widths)
        self.question_rnn = LSTM(cfg.emb_dim, cfg.hidden, rng,
                                 num_layers=cfg.question_layers)
        self.column_rnn = BiLSTM(cfg.emb_dim, cfg.hidden, rng)
        # Part (iii): attentive BiLSTM over column states.
        attn_in = 2 * cfg.hidden + cfg.hidden  # [s_t^c ; context over S^q]
        self.fwd_cell = LSTMCell(attn_in, cfg.hidden, rng)
        self.bwd_cell = LSTMCell(attn_in, cfg.hidden, rng)
        # Attention query is [s_t^c ; d_{t-1}] (equivalent to W2 s + W3 d + b).
        self.attention = AdditiveAttention(
            memory_dim=cfg.hidden, query_dim=2 * cfg.hidden + cfg.hidden,
            attention_dim=cfg.attention_dim, rng=rng)
        # tanh hidden units: the head sees zero-padded features, and a
        # ReLU hidden layer can die under Adam on this input pattern.
        # Head input: attentive BiLSTM states plus, per column word, the
        # max/mean cosine similarity against question words (the
        # BiDAF-style similarity term; computed in-graph so adversarial
        # gradients flow to exactly the matching question word).
        self.head = MLP(
            [(2 * cfg.hidden + 2) * cfg.max_column_words, cfg.mlp_hidden, 1],
            rng, hidden_activation="tanh")
        # Shared zero block padding short columns to max_column_words —
        # constant, so one instance serves every forward call (gradients
        # never flow into a non-leaf zeros tensor).
        self._feature_pad = Tensor.zeros(1, 2 * cfg.hidden + 2)
        self._trained = False

    # ------------------------------------------------------------------
    # Embedding
    # ------------------------------------------------------------------

    def embed_words(self, words: list[str],
                    capture: bool = False) -> list[EmbeddedWord]:
        """Embed a word sequence.

        With ``capture=True`` the word vector and the char-CNN output
        become graph leaves so their gradients can be read afterwards
        (inference-time adversarial analysis; training gradients into
        the char CNN are cut, so use ``capture=False`` when fitting).
        """
        out = []
        for word in words:
            word_leaf = Tensor(
                self.embeddings.vector(word).reshape(1, -1),
                requires_grad=capture)
            char_vec = self.char_encoder(char_ids(word)).reshape(
                1, self.config.char_out)
            if capture:
                char_vec = Tensor(char_vec.numpy().copy(), requires_grad=True)
            combined = concat([word_leaf, char_vec], axis=-1)
            out.append(EmbeddedWord(word, word_leaf, char_vec, combined))
        return out

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------

    def _question_side(self, question: list[str], capture: bool = False,
                       ) -> tuple[list[EmbeddedWord], Tensor, Tensor]:
        """Column-independent work: ``(embedded, memory S^q, q_unit)``.

        Computed once per question and shared by every column — both by
        :meth:`forward` (one column) and :meth:`score_columns` (all of
        a table's columns in one batch).
        """
        q_embedded = self.embed_words(question, capture=capture)
        s_q = self.question_rnn([e.combined for e in q_embedded])
        memory = concat(s_q, axis=0)  # (n, hidden)
        q_matrix = concat([e.combined for e in q_embedded], axis=0)
        q_norms = ((q_matrix * q_matrix).sum(axis=1, keepdims=True)
                   + 1e-8) ** 0.5
        return q_embedded, memory, q_matrix / q_norms

    def forward(self, question: list[str], column: list[str],
                capture: bool = False,
                ) -> tuple[Tensor, list[EmbeddedWord]]:
        """Return ``(logit, embedded_question_words)``."""
        if not question or not column:
            raise ModelError("question and column must be non-empty")
        cfg = self.config
        column = column[:cfg.max_column_words]

        q_embedded, memory, q_unit = self._question_side(question,
                                                         capture=capture)
        c_embedded = self.embed_words(column)
        s_c = self.column_rnn([e.combined for e in c_embedded])

        # Attentive BiLSTM over the column (part iii).
        def run_direction(cell, states):
            h, c = cell.initial_state(1)
            outputs = []
            for s_t in states:
                query = concat([s_t, h], axis=-1).reshape(
                    s_t.shape[1] + h.shape[1])
                context, _ = self.attention(memory, query)
                z_t = concat([s_t, context.reshape(1, -1)], axis=-1)
                h, c = cell(z_t, h, c)
                outputs.append(h)
            return outputs

        fwd = run_direction(self.fwd_cell, s_c)
        bwd = list(reversed(run_direction(self.bwd_cell, list(reversed(s_c)))))
        d_states = [concat([f, b], axis=-1) for f, b in zip(fwd, bwd)]

        # BiDAF-style similarity features: per column word, the max and
        # mean cosine similarity against all question words, computed on
        # the combined word+char embeddings *inside the graph*.
        for t, emb_t in enumerate(c_embedded):
            c_norm = ((emb_t.combined * emb_t.combined).sum(
                axis=1, keepdims=True) + 1e-8) ** 0.5
            c_unit = emb_t.combined / c_norm
            sims = q_unit @ c_unit.reshape(cfg.emb_dim)  # (n,)
            sim_features = concat(
                [sims.max(axis=0, keepdims=True),
                 sims.mean(axis=0, keepdims=True)], axis=-1).reshape(1, 2)
            d_states[t] = concat([d_states[t], sim_features], axis=-1)

        # Zero-pad to max_column_words and concatenate for the MLP head.
        while len(d_states) < cfg.max_column_words:
            d_states.append(self._feature_pad)
        features = concat(d_states, axis=-1)
        logit = self.head(features).reshape(1)
        return logit, q_embedded

    # ------------------------------------------------------------------
    # Training / inference
    # ------------------------------------------------------------------

    def fit(self, pairs: list[tuple[list[str], list[str], int]],
            epochs: int = 5, lr: float = 2e-3, clip: float = 5.0,
            shuffle_seed: int = 0, verbose: bool = False) -> list[float]:
        """Train on ``(question_tokens, column_tokens, label)`` triples.

        Returns the per-epoch mean loss.
        """
        if not pairs:
            raise ModelError("fit() needs at least one training pair")
        optimizer = Adam(self.parameters(), lr=lr)
        rng = np.random.default_rng(shuffle_seed)
        losses = []
        order = np.arange(len(pairs))
        for epoch in range(epochs):
            rng.shuffle(order)
            total = 0.0
            for idx in order:
                question, column, label = pairs[idx]
                optimizer.zero_grad()
                logit, _ = self(question, column)
                loss = binary_cross_entropy_with_logits(logit, [float(label)])
                loss.backward()
                clip_grad_norm(self.parameters(), clip)
                optimizer.step()
                total += loss.item()
            losses.append(total / len(pairs))
            if verbose:
                print(f"[column-classifier] epoch {epoch + 1}: "
                      f"loss={losses[-1]:.4f}")
        self._trained = True
        return losses

    def predict_proba(self, question: list[str], column: list[str]) -> float:
        """Probability that ``column`` is mentioned in ``question``."""
        with no_grad():
            logit, _ = self(question, column)
        return float(1.0 / (1.0 + np.exp(-logit.numpy()[0])))

    # ------------------------------------------------------------------
    # Batched inference (the vectorized fast path)
    # ------------------------------------------------------------------

    def encode_columns(self, columns: list[list[str]]) -> EncodedColumns:
        """Precompute the question-independent side of every column.

        One lockstep column-RNN pass over all B columns; the result is
        a numpy artifact reusable across every question asked against
        the same schema (see :class:`EncodedColumns`).
        """
        if not columns:
            raise ModelError("encode_columns() needs at least one column")
        cfg = self.config
        tokens = [list(column[:cfg.max_column_words]) for column in columns]
        if any(not column for column in tokens):
            raise ModelError("question and column must be non-empty")
        with no_grad():
            embedded = [self.embed_words(column) for column in tokens]
            steps, lengths = pack_steps(
                [[e.combined for e in col] for col in embedded])
            states = [s.numpy()
                      for s in self.column_rnn.forward_batch(steps, lengths)]
            units = np.zeros((len(tokens), len(steps), cfg.emb_dim))
            for b, col in enumerate(embedded):
                for t, emb_t in enumerate(col):
                    vec = emb_t.combined.numpy()
                    norm = np.sqrt((vec * vec).sum() + 1e-8)
                    units[b, t] = vec.reshape(-1) / norm
        return EncodedColumns(tokens=tokens, lengths=lengths,
                              states=states, units=units)

    def score_columns(self, question: list[str],
                      columns: list[list[str]] | None = None, *,
                      encoded: EncodedColumns | None = None) -> np.ndarray:
        """Mention probabilities of many columns in one batched pass.

        The question side (embedding, question LSTM, unit matrix) runs
        once; the attentive BiLSTM advances all columns in lockstep with
        batched attention.  Equals per-column :meth:`predict_proba` to
        float64 precision (BLAS path differences only).  Pass ``encoded``
        to reuse a cached :meth:`encode_columns` artifact.
        """
        if not question:
            raise ModelError("question and column must be non-empty")
        cfg = self.config
        with no_grad():
            if encoded is None:
                if not columns:
                    raise ModelError(
                        "score_columns() needs columns or encoded=")
                encoded = self.encode_columns(columns)
            batch = len(encoded)
            total = len(encoded.states)
            _, memory, q_unit = self._question_side(question)

            needs_mask = int(encoded.lengths.min()) < total
            masks = [(encoded.lengths > t).astype(np.float64).reshape(-1, 1)
                     for t in range(total)] if needs_mask else None

            def run_direction(cell, reverse):
                h, c = cell.initial_state(batch)
                outputs: list[Tensor | None] = [None] * total
                order = range(total - 1, -1, -1) if reverse \
                    else range(total)
                for t in order:
                    s_t = Tensor(encoded.states[t])
                    query = concat([s_t, h], axis=-1)
                    context, _ = self.attention.forward_batch(memory, query)
                    z_t = concat([s_t, context], axis=-1)
                    h_new, c_new = cell(z_t, h, c)
                    if masks is not None:
                        m = Tensor(masks[t])
                        h = h_new * m + h * (1.0 - m)
                        c = c_new * m + c * (1.0 - m)
                    else:
                        h, c = h_new, c_new
                    outputs[t] = h
                return outputs

            fwd = run_direction(self.fwd_cell, reverse=False)
            bwd = run_direction(self.bwd_cell, reverse=True)

            # Similarity features for all (column word, question) pairs:
            # (B, T, emb) × (n, emb) → (B, T, n), then max/mean over n.
            sims = encoded.units @ q_unit.numpy().T
            sim_max = sims.max(axis=2)
            sim_mean = sims.mean(axis=2)

            # Assemble the zero-padded feature matrix exactly as the
            # per-item path does: valid steps get [d_t; max; mean],
            # steps past a column's length stay zero.
            width = 2 * cfg.hidden + 2
            features = np.zeros((batch, width * cfg.max_column_words))
            for t in range(total):
                block = np.concatenate(
                    [fwd[t].numpy(), bwd[t].numpy(),
                     sim_max[:, t:t + 1], sim_mean[:, t:t + 1]], axis=1)
                valid = encoded.lengths > t
                features[valid, t * width:(t + 1) * width] = block[valid]
            logits = self.head(Tensor(features)).numpy().reshape(batch)
        return 1.0 / (1.0 + np.exp(-logits))

    def score_columns_multi(
            self, items: list[tuple[list[str], EncodedColumns]],
            ) -> list[np.ndarray]:
        """Score several requests' columns in ONE attentive-BiLSTM pass.

        The cross-request form of :meth:`score_columns`: ``items`` pairs
        each question with the encoded columns it should score — usually
        different schemas with ragged column counts and word lengths.
        The column-side packings are fused with
        :func:`repro.nn.merge_steps`, the attentive-BiLSTM cells and the
        MLP head advance the union batch, and attention runs grouped so
        every request attends over its *own* question memory
        (:meth:`AdditiveAttention.forward_grouped`).

        Everything whose reduction shape depends on the request — the
        question side, attention softmax/context, similarity features —
        is computed per request with exactly the shapes
        :meth:`score_columns` would use, so item ``i``'s probabilities
        match a stand-alone call up to BLAS batch-size differences in
        the shared matmuls (empirically bit-equal on this substrate;
        pinned by the kernel differential tests).
        """
        if not items:
            return []
        cfg = self.config
        with no_grad():
            sizes = [len(encoded) for _question, encoded in items]
            merged, lengths, offsets = merge_steps(
                [(encoded.states, encoded.lengths)
                 for _question, encoded in items])
            slices = [slice(int(off), int(off) + size)
                      for off, size in zip(offsets, sizes)]
            batch = int(sum(sizes))
            total = len(merged)

            memories: list[Tensor] = []
            q_units: list[np.ndarray] = []
            for question, _encoded in items:
                if not question:
                    raise ModelError("question and column must be non-empty")
                _, memory, q_unit = self._question_side(question)
                memories.append(memory)
                q_units.append(q_unit.numpy())

            needs_mask = int(lengths.min()) < total
            masks = [(lengths > t).astype(np.float64).reshape(-1, 1)
                     for t in range(total)] if needs_mask else None

            def run_direction(cell, reverse):
                h, c = cell.initial_state(batch)
                outputs: list[Tensor | None] = [None] * total
                order = range(total - 1, -1, -1) if reverse \
                    else range(total)
                for t in order:
                    s_t = Tensor(merged[t])
                    query = concat([s_t, h], axis=-1)
                    contexts, _ = self.attention.forward_grouped(
                        memories, query, slices)
                    z_t = concat([s_t, contexts], axis=-1)
                    h_new, c_new = cell(z_t, h, c)
                    if masks is not None:
                        m = Tensor(masks[t])
                        h = h_new * m + h * (1.0 - m)
                        c = c_new * m + c * (1.0 - m)
                    else:
                        h, c = h_new, c_new
                    outputs[t] = h
                return outputs

            fwd = run_direction(self.fwd_cell, reverse=False)
            bwd = run_direction(self.bwd_cell, reverse=True)

            # Per-request similarity features and feature assembly: the
            # reductions run over each request's own question words, so
            # the blocks equal the single-request path's exactly.
            width = 2 * cfg.hidden + 2
            features = np.zeros((batch, width * cfg.max_column_words))
            for rows, (_question, encoded), q_unit in zip(
                    slices, items, q_units):
                sims = encoded.units @ q_unit.T
                sim_max = sims.max(axis=2)
                sim_mean = sims.mean(axis=2)
                block_rows = features[rows.start:rows.stop]
                for t in range(len(encoded.states)):
                    block = np.concatenate(
                        [fwd[t].numpy()[rows.start:rows.stop],
                         bwd[t].numpy()[rows.start:rows.stop],
                         sim_max[:, t:t + 1], sim_mean[:, t:t + 1]], axis=1)
                    valid = encoded.lengths > t
                    block_rows[valid, t * width:(t + 1) * width] = block[valid]
            logits = self.head(Tensor(features)).numpy().reshape(batch)
            probs = 1.0 / (1.0 + np.exp(-logits))
        return [probs[rows.start:rows.stop] for rows in slices]

    def predict(self, question: list[str], column: list[str],
                threshold: float = 0.5) -> bool:
        """Binary mention decision."""
        return self.predict_proba(question, column) > threshold
