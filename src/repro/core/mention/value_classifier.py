"""Value Detection Classifier (Section IV-D).

Decides whether a question span ``q[i, j]`` is likely a *value* of
column ``c`` using only the column's **statistics** ``s_c`` (mean cell
embedding) — never the concrete cell set — so it generalizes to
counterfactual values.  The model is the paper's two-layer MLP:

    y = σ(W2 · ReLU(W1 · [s_c − s_span, s_c ⊙ s_span] + b1) + b2)

Candidate spans contain no stop words and are at most a few words long.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.nn import MLP, Adam, Tensor, binary_cross_entropy_with_logits, no_grad
from repro.text import WordEmbeddings, is_stop_word, span_statistics

__all__ = ["ValueDetectionClassifier", "candidate_spans"]


def candidate_spans(tokens: list[str], max_length: int = 3,
                    ) -> list[tuple[int, int]]:
    """All ``[start, end)`` spans with no stop words, len ≤ max_length.

    Punctuation-only tokens are excluded as well.
    """
    spans = []
    n = len(tokens)
    for start in range(n):
        for end in range(start + 1, min(start + max_length, n) + 1):
            window = tokens[start:end]
            if any(is_stop_word(t) or not any(ch.isalnum() for ch in t)
                   for t in window):
                continue
            spans.append((start, end))
    return spans


@dataclass
class _TrainingRow:
    span_stats: np.ndarray
    col_stats: np.ndarray
    label: float


class ValueDetectionClassifier:
    """MLP over ``[s_c − s_span, s_c ⊙ s_span]`` features."""

    def __init__(self, embeddings: WordEmbeddings, hidden: int = 32,
                 seed: int = 0):
        self.embeddings = embeddings
        self.dim = embeddings.dim
        rng = np.random.default_rng(seed)
        self.mlp = MLP([2 * self.dim, hidden, 1], rng)
        self._trained = False

    # ------------------------------------------------------------------
    # Features
    # ------------------------------------------------------------------

    def features(self, span_stats: np.ndarray,
                 col_stats: np.ndarray) -> np.ndarray:
        """Build the classifier input from the two statistics vectors."""
        if span_stats.shape != (self.dim,) or col_stats.shape != (self.dim,):
            raise ModelError(
                f"statistics must have shape ({self.dim},); got "
                f"{span_stats.shape} and {col_stats.shape}")
        return np.concatenate([col_stats - span_stats, col_stats * span_stats])

    def span_stats(self, tokens: list[str]) -> np.ndarray:
        """``s_{q[i,j]}`` for a token window."""
        return span_statistics(tokens, self.embeddings.vector, self.dim)

    # ------------------------------------------------------------------
    # Training / inference
    # ------------------------------------------------------------------

    def fit(self, rows: list[tuple[np.ndarray, np.ndarray, float]],
            epochs: int = 30, lr: float = 5e-3, batch_size: int = 32,
            shuffle_seed: int = 0) -> list[float]:
        """Train on ``(span_stats, col_stats, label)`` rows."""
        if not rows:
            raise ModelError("fit() needs at least one training row")
        features = np.stack([self.features(s, c) for s, c, _ in rows])
        labels = np.array([float(l) for _, _, l in rows])
        optimizer = Adam(self.mlp.parameters(), lr=lr)
        rng = np.random.default_rng(shuffle_seed)
        order = np.arange(len(rows))
        losses = []
        for _ in range(epochs):
            rng.shuffle(order)
            total, batches = 0.0, 0
            for lo in range(0, len(order), batch_size):
                batch = order[lo:lo + batch_size]
                optimizer.zero_grad()
                logits = self.mlp(Tensor(features[batch])).reshape(len(batch))
                loss = binary_cross_entropy_with_logits(logits, labels[batch])
                loss.backward()
                optimizer.step()
                total += loss.item()
                batches += 1
            losses.append(total / batches)
        self._trained = True
        return losses

    def predict_proba(self, span_stats: np.ndarray,
                      col_stats: np.ndarray) -> float:
        """Likelihood that the span is a value of the column."""
        with no_grad():
            logit = self.mlp(
                Tensor(self.features(span_stats, col_stats).reshape(1, -1)))
        return float(1.0 / (1.0 + np.exp(-logit.numpy()[0, 0])))

    def predict(self, span_stats: np.ndarray, col_stats: np.ndarray,
                threshold: float = 0.5) -> bool:
        """Binary decision ``y > threshold``."""
        return self.predict_proba(span_stats, col_stats) > threshold
