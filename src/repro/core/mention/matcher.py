"""Context-free mention candidates: string, edit, semantic, and
knowledge-base matching.

Covers the cases the paper resolves *without* the neural classifier
(Section III footnote, Section VII-A.1: "string match with edit
distances and semantic distances to detect mentions that are
context-free"), plus the optional database-specific metadata of
Section II (phrases ``P_c`` and describing expressions ``D_c``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text import (
    KnowledgeBase,
    WordEmbeddings,
    is_stop_word,
    normalized_edit_similarity,
    tokenize,
)

__all__ = ["MentionCandidate", "ColumnMatcher"]


@dataclass(frozen=True)
class MentionCandidate:
    """One candidate mention of ``column`` at span ``[start, end)``."""

    column: str
    start: int
    end: int
    score: float
    method: str  # "exact" | "edit" | "semantic" | "knowledge"


class ColumnMatcher:
    """Detects context-free column mentions in a question."""

    def __init__(self, embeddings: WordEmbeddings,
                 knowledge: KnowledgeBase | None = None,
                 edit_threshold: float = 0.72,
                 semantic_threshold: float = 0.82,
                 max_span: int = 4):
        self.embeddings = embeddings
        self.knowledge = knowledge or KnowledgeBase()
        self.edit_threshold = edit_threshold
        self.semantic_threshold = semantic_threshold
        self.max_span = max_span

    # ------------------------------------------------------------------

    def _spans(self, tokens: list[str], max_span: int):
        for start in range(len(tokens)):
            if is_stop_word(tokens[start]):
                continue
            for end in range(start + 1, min(start + max_span, len(tokens)) + 1):
                yield start, end, " ".join(tokens[start:end])

    def find(self, tokens: list[str], column: str) -> list[MentionCandidate]:
        """All candidate mentions of ``column`` in a tokenized question.

        Candidates are sorted best-first (exact > knowledge > edit >
        semantic, then by score).
        """
        column_lower = column.lower()
        column_tokens = tokenize(column_lower)
        candidates: list[MentionCandidate] = []

        # 1. Exact token-sequence match of the column name.
        for i in range(len(tokens) - len(column_tokens) + 1):
            if tokens[i:i + len(column_tokens)] == column_tokens:
                candidates.append(MentionCandidate(
                    column, i, i + len(column_tokens), 1.0, "exact"))

        # 2. Knowledge-base phrases (P_c) and describing expressions (D_c).
        knowledge = self.knowledge.get(column)
        for phrase in (knowledge.mention_phrases
                       + knowledge.describing_expressions):
            phrase_tokens = tokenize(phrase)
            for i in range(len(tokens) - len(phrase_tokens) + 1):
                if tokens[i:i + len(phrase_tokens)] == phrase_tokens:
                    candidates.append(MentionCandidate(
                        column, i, i + len(phrase_tokens), 0.95, "knowledge"))

        # 3. Edit-distance match over spans (non-exact matching).
        for start, end, surface in self._spans(tokens, self.max_span):
            similarity = normalized_edit_similarity(surface, column_lower)
            if similarity >= self.edit_threshold and similarity < 1.0:
                candidates.append(MentionCandidate(
                    column, start, end, similarity, "edit"))

        # 4. Semantic (embedding) match over short spans.
        for start, end, surface in self._spans(
                tokens, min(self.max_span, len(column_tokens) + 1)):
            similarity = self.embeddings.phrase_similarity(surface, column_lower)
            if similarity >= self.semantic_threshold:
                candidates.append(MentionCandidate(
                    column, start, end, similarity, "semantic"))

        priority = {"exact": 0, "knowledge": 1, "edit": 2, "semantic": 3}
        candidates.sort(key=lambda c: (priority[c.method], -c.score,
                                       c.start, c.end))
        return candidates

    def best(self, tokens: list[str], column: str) -> MentionCandidate | None:
        """Best context-free candidate, or ``None`` if nothing matches."""
        found = self.find(tokens, column)
        return found[0] if found else None

    # ------------------------------------------------------------------

    def find_cell_values(self, tokens: list[str], column: str,
                         cells: list) -> list[MentionCandidate]:
        """Exact question-span matches of a column's cell values.

        The obvious context-free value case: the value literally appears
        in the question.  Counterfactual values are handled separately
        by :class:`~repro.core.mention.value_classifier.ValueDetectionClassifier`.
        """
        candidates = []
        seen_spans: set[tuple[int, int]] = set()
        for cell in cells:
            cell_tokens = tokenize(str(cell))
            if not cell_tokens:
                continue
            for i in range(len(tokens) - len(cell_tokens) + 1):
                span = (i, i + len(cell_tokens))
                if span in seen_spans:
                    continue
                if tokens[i:span[1]] == cell_tokens:
                    seen_spans.add(span)
                    candidates.append(MentionCandidate(
                        column, span[0], span[1], 1.0, "exact"))
        return candidates
