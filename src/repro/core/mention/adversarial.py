"""Adversarial text method for locating column mentions (Section IV-C).

Once the classifier decides that column ``c`` is mentioned in question
``q``, the fast-gradient method (FGM) finds *where*: the gradient of the
classifier's loss with respect to each word's representation measures
how influential that word is, and the mention is the contiguous span
with the highest influence:

    I(w) = α · p(dL/dE_word(w)) + β · p(dL/dE_char(w))

where ``p`` is a norm (ℓ2 by default, as in the experiments, which use
``α = 1, β = 0``).  No span supervision is needed — the method reuses
only what the classifier already learned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.nn import binary_cross_entropy_with_logits
from repro.text.stopwords import is_stop_word

from repro.core.mention.column_classifier import ColumnMentionClassifier

__all__ = ["InfluenceProfile", "compute_influence", "locate_mention",
           "contrastive_profile"]

_NORMS = {
    "l1": lambda g: float(np.abs(g).sum()),
    "l2": lambda g: float(np.sqrt((g * g).sum())),
    "linf": lambda g: float(np.abs(g).max()),
}


@dataclass
class InfluenceProfile:
    """Per-word influence levels for one (question, column) pair.

    The arrays correspond to Figure 5 / Figure 7 in the paper: word- and
    character-level gradient norms plus their weighted combination.
    """

    tokens: list[str]
    word_influence: np.ndarray
    char_influence: np.ndarray
    combined: np.ndarray

    def top_token(self) -> str:
        """The single most influential token."""
        return self.tokens[int(np.argmax(self.combined))]


def compute_influence(classifier: ColumnMentionClassifier,
                      question: list[str], column: list[str],
                      alpha: float = 1.0, beta: float = 0.0,
                      norm: str = "l2") -> InfluenceProfile:
    """Compute the influence level ``I(w)`` of every question word.

    Runs one forward pass with gradient capture, backpropagates the
    loss of predicting "mentioned", and reads ``dL/dE(w)`` off the
    embedding leaves.
    """
    if norm not in _NORMS:
        raise ModelError(f"unknown norm {norm!r}; choose from {sorted(_NORMS)}")
    norm_fn = _NORMS[norm]

    classifier.eval()
    classifier.zero_grad()
    logit, embedded = classifier(question, column, capture=True)
    # Backpropagate the loss of the *adversarial* label (0 = "not
    # mentioned"): its per-logit gradient is σ(x), so the per-word
    # pattern matches dL/dE(w) while the scale stays informative even
    # when the classifier is confidently positive (the loss toward the
    # true label saturates to zero gradient there).
    loss = binary_cross_entropy_with_logits(logit, [0.0])
    loss.backward()

    word_norms = np.zeros(len(question))
    char_norms = np.zeros(len(question))
    for i, emb in enumerate(embedded):
        if emb.word_leaf.grad is not None:
            word_norms[i] = norm_fn(emb.word_leaf.grad)
        if emb.char_leaf.grad is not None:
            char_norms[i] = norm_fn(emb.char_leaf.grad)
    combined = alpha * word_norms + beta * char_norms
    return InfluenceProfile(list(question), word_norms, char_norms, combined)


def contrastive_profile(profile: InfluenceProfile,
                        background: list[InfluenceProfile],
                        ) -> InfluenceProfile:
    """Subtract the mean influence of other columns from a profile.

    Words that are influential for *every* column ("highest", "?") carry
    no column-specific information; contrasting against the table's
    other columns suppresses them.  An extension beyond the paper,
    evaluated as an ablation.
    """
    if not background:
        return profile
    mean_bg = np.mean([p.combined for p in background], axis=0)
    return InfluenceProfile(profile.tokens, profile.word_influence,
                            profile.char_influence,
                            profile.combined - mean_bg)


def locate_mention(profile: InfluenceProfile, max_length: int = 4,
                   rel_threshold: float = 0.5,
                   skip_stop_words: bool = True,
                   blocked: set[int] | None = None) -> tuple[int, int]:
    """Find the contiguous span with the highest influence.

    The span grows greedily around the most influential token while
    neighbours stay above ``rel_threshold`` of the peak, capped at
    ``max_length`` tokens (the paper's "maximum length of mentions").
    Stop words never *start* a mention but may be absorbed inside one.
    ``blocked`` positions (e.g. spans already claimed as values) are
    never chosen as the peak.

    Returns a ``[start, end)`` token span.
    """
    scores = profile.combined
    if len(scores) == 0:
        raise ModelError("cannot locate a mention in an empty question")
    blocked = blocked or set()

    def skippable(token: str) -> bool:
        if not any(ch.isalnum() for ch in token):
            return True  # punctuation never carries a mention
        return skip_stop_words and is_stop_word(token)

    order = np.argsort(scores)[::-1]
    peak = int(order[0])
    for idx in order:
        if int(idx) not in blocked and not skippable(profile.tokens[int(idx)]):
            peak = int(idx)
            break
    threshold = rel_threshold * scores[peak]
    start = end = peak
    while end - start + 1 < max_length:
        left_ok = start > 0 and (start - 1) not in blocked
        right_ok = end + 1 < len(scores) and (end + 1) not in blocked
        left_score = scores[start - 1] if left_ok else -np.inf
        right_score = scores[end + 1] if right_ok else -np.inf
        if left_score >= right_score and left_score >= threshold:
            start -= 1
        elif right_score > left_score and right_score >= threshold:
            end += 1
        else:
            break
    # Trim absorbed stop words / punctuation from the edges.
    while start < peak and skippable(profile.tokens[start]):
        start += 1
    while end > peak and skippable(profile.tokens[end]):
        end -= 1
    return start, end + 1
