"""Mention resolution (Section IV-E).

Many (value, column) pairings can be locally plausible — "Jerzy
Antczak" could be a Director or an Actor.  Resolution picks the globally
consistent assignment by *structural closeness in the question's
dependency tree*: each value is paired with the candidate column whose
mention is closest in the tree, and each column receives at most one
value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text import DependencyTree, parse_dependency

__all__ = ["ValueCandidate", "ResolvedPair", "resolve_mentions"]


@dataclass(frozen=True)
class ValueCandidate:
    """A value span with the columns it could belong to (with scores)."""

    start: int
    end: int
    columns: tuple[str, ...]
    scores: tuple[float, ...] = ()

    def score_of(self, column: str) -> float:
        if not self.scores:
            return 1.0
        try:
            return self.scores[self.columns.index(column)]
        except ValueError:
            return 0.0


@dataclass(frozen=True)
class ResolvedPair:
    """A resolved (value span → column) assignment."""

    column: str
    value_start: int
    value_end: int
    distance: int


def resolve_mentions(tokens: list[str],
                     column_mentions: dict[str, tuple[int, int]],
                     value_candidates: list[ValueCandidate],
                     tree: DependencyTree | None = None,
                     ) -> list[ResolvedPair]:
    """Assign each value span to its structurally closest column.

    Parameters
    ----------
    tokens:
        The tokenized question.
    column_mentions:
        Column → mention span.  Implicit mentions (empty spans) act as
        wildcard anchors at their recorded position.
    value_candidates:
        Spans that look like values, each with its plausible columns.
    tree:
        Pre-parsed dependency tree (parsed from ``tokens`` when absent).

    Greedy assignment in order of increasing tree distance; each column
    takes at most one value and each value lands on at most one column.
    """
    if tree is None:
        tree = parse_dependency(tokens)

    scored: list[tuple[int, float, int, ValueCandidate, str]] = []
    for vi, candidate in enumerate(value_candidates):
        value_span = (candidate.start, candidate.end)
        for column in candidate.columns:
            mention = column_mentions.get(column)
            if mention is None:
                continue
            start, end = mention
            if start == end:  # implicit mention: anchor at its position
                anchor = min(start, len(tokens) - 1)
                column_span = (anchor, anchor + 1)
            else:
                column_span = (start, end)
            if _overlaps(value_span, column_span):
                continue
            distance = tree.span_distance(value_span, column_span)
            scored.append((distance, -candidate.score_of(column), vi,
                           candidate, column))

    scored.sort(key=lambda item: (item[0], item[1], item[2]))
    used_values: set[int] = set()
    used_columns: set[str] = set()
    resolved: list[ResolvedPair] = []
    for distance, _neg_score, vi, candidate, column in scored:
        if vi in used_values or column in used_columns:
            continue
        used_values.add(vi)
        used_columns.add(column)
        resolved.append(ResolvedPair(column, candidate.start, candidate.end,
                                     distance))
    resolved.sort(key=lambda pair: pair.value_start)
    return resolved


def _overlaps(a: tuple[int, int], b: tuple[int, int]) -> bool:
    return a[0] < b[1] and b[0] < a[1]
