"""The paper's core contribution: adversarial mention detection,
annotation, the annotated seq2seq translator, and the NLIDB facade."""

from repro.core.annotate import (
    AnnotatedQuestion,
    ColumnAnnotation,
    ValueAnnotation,
    build_annotated_sql,
    recover_sql,
)
from repro.core.annotator import Annotator, AnnotatorConfig
from repro.core.metrics import (
    EvalResult,
    annotated_match,
    evaluate,
    evaluate_by_sketch,
    mention_detection_accuracy,
    sketch_label,
)
from repro.core.metadata import MinedPhrase, build_knowledge_base, mine_column_phrases
from repro.core.nlidb import NLIDB, NLIDBConfig, Translation
from repro.core.persistence import load_nlidb, save_nlidb
from repro.core.schema import SchemaEncoding, build_schema_encoding
from repro.core.seq2seq.model import AnnotatedSeq2Seq, Seq2SeqConfig, TrainingPair

__all__ = [
    "AnnotatedQuestion", "ColumnAnnotation", "ValueAnnotation",
    "build_annotated_sql", "recover_sql",
    "Annotator", "AnnotatorConfig",
    "NLIDB", "NLIDBConfig", "Translation",
    "save_nlidb", "load_nlidb",
    "SchemaEncoding", "build_schema_encoding",
    "MinedPhrase", "mine_column_phrases", "build_knowledge_base",
    "AnnotatedSeq2Seq", "Seq2SeqConfig", "TrainingPair",
    "EvalResult", "evaluate", "mention_detection_accuracy", "annotated_match",
    "sketch_label", "evaluate_by_sketch",
]
