"""The typed stage-graph executor behind annotate → translate → recover.

The paper's three-step pipeline (annotation ``q → qᵃ``, translation
``qᵃ → sᵃ``, recovery ``sᵃ → s``) is the spine of the system; this
package gives it one owner.  A :class:`Pipeline` sequences
:class:`Stage` objects over a :class:`PipelineContext` (question
tokens, table, artifacts, deadline, rng) while middleware composes the
cross-cutting concerns — deadline checks, fault injection, artifact
caching — and every run leaves an append-only :class:`StageTrace` of
per-stage records (name, wall time, outcome, attempt, cache hit).

Layering: this package depends only on ``repro.errors`` (and, for
typing, ``repro.sqlengine``).  ``repro.core`` builds its pipelines
from it; ``repro.serving`` adds caching, retries, degradation ladders,
and breakers *around* it.
"""

from repro.pipeline.batching import BatchInfo, BatchTraceMiddleware
from repro.pipeline.context import PipelineContext
from repro.pipeline.deadline import Deadline
from repro.pipeline.executor import Middleware, Pipeline, Stage
from repro.pipeline.middleware import (
    FaultMiddleware,
    artifact_cache_middleware,
    deadline_middleware,
)
from repro.pipeline.trace import (
    OUTCOME_CACHED,
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_SKIPPED,
    WIRE_SCHEMA_VERSION,
    StageRecord,
    StageTrace,
)

__all__ = [
    "Pipeline", "Stage", "Middleware", "PipelineContext",
    "StageRecord", "StageTrace", "Deadline", "WIRE_SCHEMA_VERSION",
    "OUTCOME_OK", "OUTCOME_ERROR", "OUTCOME_CACHED", "OUTCOME_SKIPPED",
    "deadline_middleware", "FaultMiddleware", "artifact_cache_middleware",
    "BatchInfo", "BatchTraceMiddleware",
]
