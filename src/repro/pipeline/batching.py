"""Batch identity for cross-request (coalesced) pipeline runs.

When the serving scheduler fuses several requests' stages into one
kernel call, each request still gets its own pipeline run and stage
trace — but those records must say *which* micro-batch computed them
and how big it was, or the trace stops explaining latency ("why did
this 3 ms question take 40 ms?" — because it rode a batch of 9).

:class:`BatchInfo` names one micro-batch (a monotonically increasing
batch id, its size, this request's lane index, and the per-stage kernel
wall times), and :class:`BatchTraceMiddleware` stamps that identity
into the ``detail`` of every stage record appended during the run it
wraps.  Stages whose artifacts were pre-seeded by the coalesced kernels
additionally get ``coalesced: True`` plus the kernel's wall time, so
the cached-outcome records still account for the shared work.
"""

from __future__ import annotations

from typing import Callable

from repro.pipeline.context import PipelineContext

__all__ = ["BatchInfo", "BatchTraceMiddleware"]


class BatchInfo:
    """Identity of one scheduler micro-batch, shared by its lanes.

    ``kernel_walls`` maps a coalesced stage name (e.g. ``"annotate.
    columns"``, ``"translate"``) to the wall-clock seconds the shared
    kernel spent on the *whole* batch — per-lane records carry the full
    number rather than an arbitrary per-lane split.
    """

    __slots__ = ("batch_id", "size", "lane", "kernel_walls")

    def __init__(self, batch_id: int, size: int, lane: int,
                 kernel_walls: dict[str, float] | None = None):
        self.batch_id = batch_id
        self.size = size
        self.lane = lane
        self.kernel_walls = kernel_walls or {}

    def for_lane(self, lane: int) -> "BatchInfo":
        """This batch's identity from another lane's point of view."""
        return BatchInfo(self.batch_id, self.size, lane, self.kernel_walls)

    def to_detail(self, stage_name: str) -> dict:
        """The ``detail`` entries stamped onto one stage's record."""
        detail = {"batch_id": self.batch_id, "batch_size": self.size,
                  "batch_lane": self.lane}
        wall = self.kernel_walls.get(stage_name)
        if wall is not None:
            detail["coalesced"] = True
            detail["batch_kernel_s"] = wall
        return detail


class BatchTraceMiddleware:
    """Stamp a batch's identity into every record of a pipeline run."""

    __slots__ = ("info",)

    def __init__(self, info: BatchInfo):
        self.info = info

    def __call__(self, stage, ctx: PipelineContext,
                 call_next: Callable[[], None]) -> None:
        record = ctx.current_record
        if record is not None:
            record.detail.update(self.info.to_detail(stage.name))
        call_next()
