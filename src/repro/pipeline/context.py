"""The mutable state one question carries through the stage graph.

A :class:`PipelineContext` is created per translation attempt and
threaded through every stage: inputs (question tokens, table, mode,
beam width, precomputed header tokens), cross-cutting controls (the
deadline, an optional RNG), the ``artifacts`` dict stages read from
and write to, and the append-only :class:`~repro.pipeline.trace.
StageTrace` the executor fills in.

The ``trace`` is injectable so a caller (the serving layer's retry /
degradation ladder) can accumulate records from several pipeline runs
into one request-level trace while giving each run fresh artifacts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.pipeline.deadline import Deadline
from repro.pipeline.trace import StageRecord, StageTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sqlengine import Table

__all__ = ["PipelineContext"]


@dataclass
class PipelineContext:
    """Everything a stage may read or produce while translating.

    Stages communicate exclusively through :attr:`artifacts` (keyed by
    the names they declare in their ``provides`` tuple), so the
    executor — not the stages — owns sequencing, and middleware can
    skip a stage whose artifacts are already present.
    """

    question_tokens: list[str]
    table: "Table | None" = None
    mode: str = "full"
    beam_width: int | None = None
    header_tokens: list[str] | None = None
    deadline: Deadline | None = None
    rng: random.Random | None = None
    #: 1-based attempt ordinal, stamped into every trace record.
    attempt: int = 1
    artifacts: dict = field(default_factory=dict)
    trace: StageTrace = field(default_factory=StageTrace)
    #: The record of the stage currently executing (executor-managed).
    current_record: StageRecord | None = field(
        default=None, init=False, repr=False, compare=False)

    def note(self, **detail) -> None:
        """Attach detail to the currently running stage's trace record.

        No-op outside a stage, so helper code may call it
        unconditionally.
        """
        if self.current_record is not None:
            self.current_record.detail.update(detail)
