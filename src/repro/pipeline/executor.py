"""The typed stage-graph executor.

A :class:`Pipeline` owns stage sequencing for the paper's
annotate → translate → recover spine (and the annotator's sub-stages):
it runs each :class:`Stage` through an onion of middleware, records a
:class:`~repro.pipeline.trace.StageRecord` per stage into the
context's trace — wall time, outcome, attempt, cache hit — and labels
escaping :class:`~repro.errors.ReproError` exceptions with the stage
they died in.  Cross-cutting concerns (deadlines, fault injection,
artifact caching, metrics) compose as middleware instead of accreting
into each caller.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.errors import ReproError

from repro.pipeline.context import PipelineContext
from repro.pipeline.trace import OUTCOME_ERROR, StageRecord

__all__ = ["Stage", "Middleware", "Pipeline"]


@runtime_checkable
class Stage(Protocol):
    """One named unit of pipeline work.

    A stage reads inputs from the context (and prior stages'
    ``artifacts``) and writes the artifacts named in its optional
    ``provides`` tuple.  Stages must be stateless with respect to the
    request: all per-question state lives on the context, so one stage
    instance may serve concurrent pipelines.
    """

    name: str

    def run(self, ctx: PipelineContext) -> None: ...


#: Middleware wraps a stage execution: it may inspect the context,
#: raise (deadline checks, fault injection), skip the stage by not
#: calling ``call_next`` (artifact caching), or simply delegate.
Middleware = Callable[[Stage, PipelineContext, Callable[[], None]], None]


class Pipeline:
    """An ordered stage graph executed under shared middleware.

    Pipelines are immutable and stateless: stages and middleware are
    fixed at construction, all per-request state lives on the
    :class:`PipelineContext`, so one pipeline instance is safely
    shared across threads and requests.
    """

    __slots__ = ("stages", "middleware", "name")

    def __init__(self, stages: Sequence[Stage],
                 middleware: Sequence[Middleware] = (),
                 name: str = "pipeline"):
        stages = tuple(stages)
        seen: set[str] = set()
        for stage in stages:
            stage_name = getattr(stage, "name", None)
            if not stage_name or not callable(getattr(stage, "run", None)):
                raise ValueError(
                    f"{stage!r} does not implement the Stage protocol "
                    "(needs a 'name' and a 'run(ctx)')")
            if stage_name in seen:
                raise ValueError(f"duplicate stage name {stage_name!r}")
            seen.add(stage_name)
        self.stages = stages
        self.middleware = tuple(middleware)
        self.name = name

    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def with_middleware(self, *middleware: Middleware) -> "Pipeline":
        """A copy of this pipeline with ``middleware`` wrapped outermost.

        Later layers (a service's deadline check) belong outside
        earlier ones (fault injection, artifact caching), so prepending
        is the natural composition direction.
        """
        return Pipeline(self.stages, tuple(middleware) + self.middleware,
                        name=self.name)

    def run(self, ctx: PipelineContext) -> PipelineContext:
        """Execute every stage in order; returns the same context.

        One :class:`StageRecord` is appended per stage — including
        failing ones, so a raised run still leaves a complete partial
        trace on the context for the caller to inspect.
        """
        for stage in self.stages:
            self._run_stage(stage, ctx)
        return ctx

    # ------------------------------------------------------------------

    def _run_stage(self, stage: Stage, ctx: PipelineContext) -> None:
        record = StageRecord(stage=stage.name, attempt=ctx.attempt,
                             mode=ctx.mode)
        previous = ctx.current_record  # nested pipelines share the ctx
        ctx.trace.append(record)
        ctx.current_record = record
        start = perf_counter()
        try:
            self._call(stage, ctx, 0)
        except ReproError as exc:
            record.outcome = OUTCOME_ERROR
            record.error = type(exc).__name__
            record.message = str(exc)
            # Label the error with the stage it escaped from, unless a
            # deeper layer (a nested pipeline, the fault injector, a
            # deadline check) already named one.
            if getattr(exc, "stage", None) is None:
                exc.stage = stage.name
            raise
        finally:
            record.wall_s = perf_counter() - start
            ctx.current_record = previous

    def _call(self, stage: Stage, ctx: PipelineContext, index: int) -> None:
        if index < len(self.middleware):
            self.middleware[index](
                stage, ctx, lambda: self._call(stage, ctx, index + 1))
        else:
            stage.run(ctx)
