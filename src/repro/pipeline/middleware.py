"""Built-in pipeline middleware: the cross-cutting serving concerns.

Each of these used to be hand-wired into a different layer — deadline
checks in ``TranslationService._compute``, fault injection in
``FaultyNLIDB``'s per-method shims, stage timing in three places.  As
middleware they apply uniformly to any stage of any pipeline variant:

* :func:`deadline_middleware` — consult ``ctx.deadline`` before each
  stage (no-op when the context carries none);
* :class:`FaultMiddleware` — run a fault injector's ``before(stage,
  mode)`` hook ahead of each stage (deterministic failure testing);
* :func:`artifact_cache_middleware` — skip a stage whose declared
  ``provides`` artifacts are already on the context, recording a
  ``cached`` outcome (pre-seeded annotations, replayed contexts).
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.pipeline.context import PipelineContext
from repro.pipeline.trace import OUTCOME_CACHED

__all__ = ["deadline_middleware", "FaultMiddleware",
           "artifact_cache_middleware"]


def deadline_middleware(stage, ctx: PipelineContext,
                        call_next: Callable[[], None]) -> None:
    """Enforce the context's latency budget before entering a stage.

    Raises :class:`~repro.errors.DeadlineExceeded` naming the stage
    that was about to run; contexts without a deadline pass through.
    """
    if ctx.deadline is not None:
        ctx.deadline.check(stage.name)
    call_next()


class _Injector(Protocol):  # pragma: no cover - typing only
    def before(self, stage: str, mode: str | None = None) -> None: ...


class FaultMiddleware:
    """Apply a fault injector's plan ahead of every stage.

    The injector (see :class:`~repro.serving.faults.FaultInjector`) may
    sleep (latency faults) or raise (transient/permanent faults); it
    receives the stage name and the context's annotation mode, so one
    plan can target e.g. only the full rung's ``annotate`` stage.
    """

    __slots__ = ("injector",)

    def __init__(self, injector: _Injector):
        self.injector = injector

    def __call__(self, stage, ctx: PipelineContext,
                 call_next: Callable[[], None]) -> None:
        self.injector.before(stage.name, mode=ctx.mode)
        call_next()


def artifact_cache_middleware(stage, ctx: PipelineContext,
                              call_next: Callable[[], None]) -> None:
    """Skip a stage whose declared artifacts are already present.

    A stage advertising ``provides = ("annotation",)`` is bypassed when
    ``ctx.artifacts`` already holds every named key — the trace records
    a ``cached`` outcome instead of re-running the work.  Stages
    without a ``provides`` declaration always run.
    """
    provides = getattr(stage, "provides", ())
    if provides and all(key in ctx.artifacts for key in provides):
        record = ctx.current_record
        if record is not None:
            record.outcome = OUTCOME_CACHED
            record.cached = True
        return
    call_next()
