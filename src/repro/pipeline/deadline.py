"""Per-request latency budgets, checked between pipeline stages.

:class:`Deadline` lives in the pipeline package (not the serving
layer) because budget checks are a *stage-graph* concern: the
:func:`~repro.pipeline.middleware.deadline_middleware` consults the
context's deadline before every stage, so any pipeline — full,
context-free, or a future variant — gets enforcement without per-call
wiring.  The serving layer re-exports it unchanged.
"""

from __future__ import annotations

from time import monotonic
from typing import Callable

from repro.errors import DeadlineExceeded

__all__ = ["Deadline"]


class Deadline:
    """A latency budget started at construction time.

    ``budget_s=None`` means "no deadline": :meth:`remaining` is
    infinite and :meth:`check` never raises, so callers need no
    conditional plumbing for the unlimited case.
    """

    __slots__ = ("budget_s", "_start", "_clock")

    def __init__(self, budget_s: float | None,
                 clock: Callable[[], float] = monotonic):
        if budget_s is not None and budget_s < 0:
            raise ValueError(f"deadline budget must be >= 0, got {budget_s}")
        self.budget_s = budget_s
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left in the budget (``inf`` when unlimited, >= 0)."""
        if self.budget_s is None:
            return float("inf")
        return max(0.0, self.budget_s - self.elapsed())

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent.

        Called *before* entering each pipeline stage, so the raised
        error names the stage that was about to run when time ran out.
        """
        if self.expired():
            raise DeadlineExceeded(
                f"deadline of {self.budget_s:.3f}s exceeded before "
                f"{stage!r} (elapsed {self.elapsed():.3f}s)", stage=stage)
