"""Per-stage execution records: the pipeline's observability spine.

Every :meth:`~repro.pipeline.executor.Pipeline.run` appends one
:class:`StageRecord` per stage to the context's :class:`StageTrace` —
stage name, outcome, wall time, attempt ordinal, annotation mode, and
whether the stage was served from pre-seeded artifacts.  The serving
layer derives its per-stage metrics and the ``TranslationResult.trace``
field from these records instead of hand-rolled timer blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StageRecord", "StageTrace", "WIRE_SCHEMA_VERSION",
           "OUTCOME_OK", "OUTCOME_ERROR", "OUTCOME_CACHED",
           "OUTCOME_SKIPPED"]

#: Version of every JSON envelope this system emits (stage-record
#: dicts, ``Translation.to_dict``, ``TranslationResult.to_dict``, the
#: ``serve-stats`` report).  Version 1 retroactively names the
#: unversioned envelope shipped through PR 6; version 2 adds the
#: explicit ``schema_version`` field, the ``Translation.to_dict`` view,
#: and batch-identity labels in stage-trace details; version 3 adds the
#: cluster routing fields — ``replica_id`` / ``shard_key`` on
#: ``TranslationResult`` and the ``route`` stage record the cluster
#: front door prepends to every served request's trace.  The full
#: envelope shape is documented in DESIGN.md ("Wire schema").
WIRE_SCHEMA_VERSION = 3

#: The stage ran to completion.
OUTCOME_OK = "ok"
#: The stage (or a middleware guarding it) raised.
OUTCOME_ERROR = "error"
#: A middleware served the stage's artifacts without running it.
OUTCOME_CACHED = "cached"
#: The stage was deliberately bypassed (e.g. breaker short-circuit).
OUTCOME_SKIPPED = "skipped"


@dataclass
class StageRecord:
    """One stage execution (or refusal) inside one pipeline run.

    Attributes
    ----------
    stage:
        Stage name; sub-stages use dotted names (``"annotate.values"``).
    outcome:
        One of :data:`OUTCOME_OK` / :data:`OUTCOME_ERROR` /
        :data:`OUTCOME_CACHED` / :data:`OUTCOME_SKIPPED`.
    wall_s:
        Wall-clock seconds spent in the stage, middleware included.
    attempt:
        1-based attempt ordinal of the pipeline run that produced the
        record (retries re-run the pipeline with a higher ordinal).
    mode:
        The annotation mode the run executed under (``"full"`` or
        ``"context_free"``).
    cached:
        Whether the stage was answered from pre-seeded artifacts (or,
        at the serving layer, the translation cache).
    error / message:
        Exception type name and text when ``outcome == "error"``.
    detail:
        Free-form stage annotations (e.g. the mention-resolution
        strategy), attached via :meth:`PipelineContext.note`.
    """

    stage: str
    outcome: str = OUTCOME_OK
    wall_s: float = 0.0
    attempt: int = 1
    mode: str = "full"
    cached: bool = False
    error: str | None = None
    message: str | None = None
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready view (printed by ``serve-stats`` trace samples)."""
        payload = {
            "schema_version": WIRE_SCHEMA_VERSION,
            "stage": self.stage,
            "outcome": self.outcome,
            "wall_s": self.wall_s,
            "attempt": self.attempt,
            "mode": self.mode,
            "cached": self.cached,
        }
        if self.error is not None:
            payload["error"] = self.error
            payload["message"] = self.message
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload


class StageTrace:
    """An append-only sequence of :class:`StageRecord`.

    Records are appended as stages start and finalized in place as they
    finish; the list itself only ever grows, so a caller may hold a
    length *mark* and later read ``trace[mark:]`` to see exactly the
    records one pipeline run produced — the serving layer's per-rung
    metrics derivation.
    """

    __slots__ = ("_records",)

    def __init__(self, records=()):
        self._records = list(records)

    def append(self, record: StageRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    def __iter__(self):
        return iter(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def stage_names(self) -> list[str]:
        """Stage names in execution order (duplicates preserved)."""
        return [record.stage for record in self._records]

    def last(self, stage: str) -> StageRecord | None:
        """The most recent record for ``stage``, or ``None``."""
        for record in reversed(self._records):
            if record.stage == stage:
                return record
        return None

    def to_dicts(self) -> list[dict]:
        """JSON-ready view of every record, in order."""
        return [record.to_dict() for record in self._records]

    def __repr__(self) -> str:
        return f"StageTrace({self.stage_names()!r})"
