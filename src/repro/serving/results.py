"""The public response envelope of the serving layer.

``TranslationService.translate`` (and element-wise
``translate_batch``) return a :class:`TranslationResult` — never raise
— so one bad request can no longer poison a batch or a caller.  The
envelope classifies every outcome into three statuses:

* ``"ok"`` — the full adversarial pipeline ran and recovered SQL;
* ``"degraded"`` — a fallback rung (context-free matcher-only
  annotation) produced the SQL after the full path failed or was
  short-circuited by the open breaker;
* ``"failed"`` — no SQL: a structured error describes which stage
  failed and whether the failure was retryable.

``status == "ok" or status == "degraded"`` iff ``sql is not None`` —
clients branch on one field.  The raw :class:`~repro.core.nlidb.
Translation` (when any pipeline rung completed) rides along for
callers that need annotations or the recovered query object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.nlidb import Translation
from repro.pipeline import OUTCOME_ERROR, WIRE_SCHEMA_VERSION, StageRecord

__all__ = ["TranslationResult", "STATUS_OK", "STATUS_DEGRADED",
           "STATUS_FAILED", "describe_error"]

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_FAILED = "failed"


def describe_error(error: BaseException) -> dict:
    """A JSON-ready description of an exception.

    ``stage`` and ``retryable`` are read off the exception when it
    carries them (:class:`~repro.errors.ServingError` always does;
    the service annotates other pipeline exceptions with ``stage``).
    """
    return {
        "type": type(error).__name__,
        "message": str(error),
        "stage": getattr(error, "stage", None),
        "retryable": bool(getattr(error, "retryable", False)),
    }


@dataclass
class TranslationResult:
    """One served request's outcome (the documented public shape).

    Attributes
    ----------
    status:
        ``"ok"`` | ``"degraded"`` | ``"failed"``.
    sql:
        The recovered SQL text, or ``None`` for failed requests.
    translation:
        The underlying :class:`Translation` from whichever ladder rung
        completed, or ``None`` when every rung raised.  Shared with the
        cache — treat as immutable.
    error:
        ``None`` for ``"ok"``; otherwise :func:`describe_error` output.
        A ``"degraded"`` result keeps the error that knocked the full
        path over, so clients can see *why* they got the fallback.
    attempts:
        Full-pipeline attempts made (0 for cache hits and
        breaker-short-circuited requests).
    timings:
        Per-stage wall seconds for this request; degraded-rung stages
        are prefixed ``"degraded."``.
    cached:
        Whether the translation came from the warm cache.
    trace:
        Every :class:`~repro.pipeline.StageRecord` the request produced,
        across all ladder rungs and retry attempts, in execution order.
        Never empty: even a cache hit or a pre-pipeline failure records
        one entry.
    replica_id / shard_key:
        Cluster routing identity (wire schema v3): which worker replica
        served the request and the table-content fingerprint it was
        sharded on.  ``None`` for requests served by a bare
        :class:`~repro.serving.service.TranslationService`; stamped by
        :class:`~repro.serving.cluster.ClusterService` together with
        the ``route`` stage record it prepends to ``trace``.
    """

    status: str
    sql: str | None = None
    translation: Translation | None = None
    error: dict | None = None
    attempts: int = 0
    timings: dict[str, float] = field(default_factory=dict)
    cached: bool = False
    trace: tuple = ()
    replica_id: str | None = None
    shard_key: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> dict:
        """JSON-serializable view (drops the live objects).

        ``schema_version`` stamps the versioned wire envelope (see
        DESIGN.md, "Wire schema"); trace records carry it too, so a
        consumer can validate either level independently.
        """
        return {
            "schema_version": WIRE_SCHEMA_VERSION,
            "status": self.status,
            "sql": self.sql,
            "error": self.error,
            "attempts": self.attempts,
            "timings": dict(self.timings),
            "cached": self.cached,
            "replica_id": self.replica_id,
            "shard_key": self.shard_key,
            "trace": [record.to_dict() for record in self.trace],
        }

    # ------------------------------------------------------------------
    # Constructors used by the service
    # ------------------------------------------------------------------

    @classmethod
    def from_translation(cls, translation: Translation, *,
                         degraded: bool = False,
                         cause: BaseException | None = None,
                         attempts: int = 0,
                         timings: dict[str, float] | None = None,
                         cached: bool = False,
                         trace=None) -> "TranslationResult":
        """Envelope a completed pipeline rung.

        A translation whose recovery failed (``query is None``) is a
        ``"failed"`` result — the service produced no SQL — with the
        recovery message as the structured error.  ``trace`` defaults
        to the translation's own run trace.
        """
        timings = timings or {}
        trace = tuple(trace) if trace is not None else \
            tuple(getattr(translation, "trace", ()))
        if translation.query is None:
            error = {"type": "RecoveryError",
                     "message": translation.error or "recovery failed",
                     "stage": "recover", "retryable": False}
            return cls(status=STATUS_FAILED, sql=None,
                       translation=translation, error=error,
                       attempts=attempts, timings=timings, cached=cached,
                       trace=trace)
        status = STATUS_DEGRADED if degraded else STATUS_OK
        error = describe_error(cause) if degraded and cause is not None \
            else None
        return cls(status=status, sql=translation.query.to_sql(),
                   translation=translation, error=error,
                   attempts=attempts, timings=timings, cached=cached,
                   trace=trace)

    @classmethod
    def from_failure(cls, error: BaseException, *, attempts: int = 0,
                     timings: dict[str, float] | None = None,
                     trace=None) -> "TranslationResult":
        """Envelope a request for which every ladder rung raised.

        When no pipeline stage ever ran (a malformed request, say), a
        synthetic record keeps the every-result-has-a-trace invariant.
        """
        trace = tuple(trace) if trace is not None else ()
        if not trace:
            trace = (StageRecord(
                stage=getattr(error, "stage", None) or "request",
                outcome=OUTCOME_ERROR, error=type(error).__name__,
                message=str(error)),)
        return cls(status=STATUS_FAILED, sql=None, translation=None,
                   error=describe_error(error), attempts=attempts,
                   timings=timings or {}, trace=trace)
