"""Cross-request micro-batching: the admission policy and the queue.

PR 4 vectorized the *within-request* loops (batched column scoring,
lockstep beam search); the remaining multiple is *across* requests.
Concurrent ``translate()`` calls all run the same stage sequence, so
their model-bound stages coalesce naturally: score every pending
question's columns in one classifier pass, advance every pending beam
search as one decoder/attention batch per step.

This module owns the two serving-agnostic pieces:

* :class:`SchedulerPolicy` — the max-wait/max-batch admission decision,
  a pure function of (queue depth, clock) so it unit-tests with an
  injectable clock and no threads;
* :class:`MicroBatchScheduler` — a queue + one worker thread that
  drains requests in policy-sized batches and hands them to a
  ``process(batch)`` callback (the service's batch executor).

The default policy is **natural batching** (``max_wait_s=0``): the
worker dispatches whatever is queued the moment it goes idle, so a
lone request at low load is picked up immediately (p50 does not
regress) while requests arriving during a busy batch pile up and
coalesce into the next one — the standard continuous-batching shape.
A positive ``max_wait_s`` additionally holds the *first* request of a
batch back, trading p50 for larger batches under sparse traffic.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from time import monotonic
from typing import Callable, Generic, TypeVar

from repro.errors import ReproError

__all__ = ["SchedulerPolicy", "MicroBatchScheduler", "QueueClosed"]

T = TypeVar("T")

#: :meth:`SchedulerPolicy.decide` verdicts.
DISPATCH = "dispatch"
WAIT = "wait"
IDLE = "idle"


class QueueClosed(ReproError):
    """Submission after :meth:`MicroBatchScheduler.close`."""


@dataclass(frozen=True)
class SchedulerPolicy:
    """Max-wait/max-batch admission control for the micro-batch queue.

    Attributes
    ----------
    max_batch:
        Hard cap on how many requests one batch may coalesce.  Bounds
        both tail latency (a request never waits for more than one
        ``max_batch`` cohort ahead of it) and the kernel's peak memory.
    max_wait_s:
        How long the oldest queued request may age before the batch
        dispatches regardless of size.  ``0`` (the default) is natural
        batching: dispatch whatever is queued as soon as the worker is
        free.
    """

    max_batch: int = 16
    max_wait_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")

    def decide(self, queued: int, now: float,
               oldest_enqueued_at: float | None,
               ) -> tuple[str, float | int | None]:
        """One admission decision; pure, so fake-clock testable.

        Returns ``("dispatch", k)`` (take the ``k`` oldest requests),
        ``("wait", seconds)`` (sleep at most that long, then re-decide),
        or ``("idle", None)`` (queue empty; sleep until a submission).
        """
        if queued <= 0:
            return IDLE, None
        if queued >= self.max_batch:
            return DISPATCH, self.max_batch
        if oldest_enqueued_at is None:
            raise ValueError("queued > 0 requires oldest_enqueued_at")
        waited = now - oldest_enqueued_at
        if waited >= self.max_wait_s:
            return DISPATCH, queued
        return WAIT, self.max_wait_s - waited


class MicroBatchScheduler(Generic[T]):
    """A queue draining into policy-sized batches on one worker thread.

    ``process(batch)`` runs every drained batch; it must resolve each
    item's completion itself (the service resolves futures) and should
    not raise — if it does, ``on_batch_error(batch, exc)`` is invoked
    so no submitter is left hanging, and the worker keeps serving.

    One worker means batches execute strictly one at a time, which is
    exactly the serialization the model needs anyway (the numpy kernels
    are not reentrant under ``no_grad``); the queue in front of it is
    what turns concurrency into batch size.  The thread starts lazily
    on the first submission and is a daemon, so an unclosed scheduler
    never blocks interpreter exit.
    """

    def __init__(self, process: Callable[[list[T]], None],
                 policy: SchedulerPolicy | None = None,
                 on_batch_error: Callable[[list[T], BaseException], None]
                 | None = None,
                 clock: Callable[[], float] = monotonic):
        self.policy = policy or SchedulerPolicy()
        self._process = process
        self._on_batch_error = on_batch_error
        self._clock = clock
        self._queue: deque[tuple[T, float]] = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._worker: threading.Thread | None = None
        self._closed = False
        self._batches = 0
        self._coalesced_batches = 0
        self._dispatched = 0
        self._max_batch_seen = 0

    def submit(self, item: T) -> None:
        """Enqueue one request; starts the worker on first use."""
        self.submit_many((item,))

    def submit_many(self, items) -> None:
        """Enqueue several requests under one lock acquisition.

        The worker cannot observe a partially appended group, so a
        ``translate_batch`` call's requests reach the queue together and
        coalesce into as few batches as the policy allows — submitting
        them one ``submit`` at a time would let the worker dispatch a
        singleton batch off the front of the group.
        """
        items = list(items)
        if not items:
            return
        with self._wakeup:
            if self._closed:
                raise QueueClosed("scheduler is closed")
            now = self._clock()
            for item in items:
                self._queue.append((item, now))
            if self._worker is None:
                self._worker = threading.Thread(
                    target=self._run, name="repro-microbatch", daemon=True)
                self._worker.start()
            self._wakeup.notify()

    def close(self) -> None:
        """Stop accepting work and wake the worker to drain the queue.

        Already-queued requests still execute (their submitters hold
        futures); only new submissions are refused.
        """
        with self._wakeup:
            self._closed = True
            self._wakeup.notify_all()

    def stats(self) -> dict:
        """Queue/batch counters for the service's ``stats()`` block."""
        with self._lock:
            return {
                "queued": len(self._queue),
                "batches": self._batches,
                "coalesced_batches": self._coalesced_batches,
                "dispatched": self._dispatched,
                "max_batch": self._max_batch_seen,
                "policy": {"max_batch": self.policy.max_batch,
                           "max_wait_s": self.policy.max_wait_s},
            }

    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            try:
                self._process(batch)
            except BaseException as exc:  # noqa: BLE001 — must not die
                if self._on_batch_error is not None:
                    try:
                        self._on_batch_error(batch, exc)
                    except BaseException:
                        pass

    def _next_batch(self) -> list[T] | None:
        with self._wakeup:
            while True:
                verdict, arg = self.policy.decide(
                    len(self._queue), self._clock(),
                    self._queue[0][1] if self._queue else None)
                if verdict == DISPATCH:
                    take = min(int(arg), len(self._queue))
                    batch = [self._queue.popleft()[0] for _ in range(take)]
                    self._batches += 1
                    self._dispatched += take
                    self._max_batch_seen = max(self._max_batch_seen, take)
                    if take > 1:
                        self._coalesced_batches += 1
                    return batch
                if self._closed:
                    return None
                self._wakeup.wait(timeout=arg if verdict == WAIT else None)
