"""The batched, cached, *resilient* serving layer over a trained NLIDB.

The paper evaluates the pipeline one question at a time; a deployed
NLIDB (the DBPal / NaLIR framing) instead sees *traffic*: many
questions, a few hot tables, strict latency expectations — and
failures.  :class:`TranslationService` adds the serving machinery
without touching model semantics:

* one asynchronous entry point — :meth:`TranslationService.submit`
  returns a :class:`concurrent.futures.Future` resolving to a
  :class:`~repro.serving.results.TranslationResult`; :meth:`translate`
  and :meth:`translate_batch` are thin synchronous wrappers, so every
  request drains through the same queue and the same batch executor;
* a **cross-request micro-batching scheduler**
  (:class:`~repro.serving.scheduler.MicroBatchScheduler`): concurrent
  submissions coalesce into stage-level lockstep batches — every
  pending question's undecided columns scored in one classifier pass,
  every pending beam search advanced as one decoder/attention batch
  per step — under a max-wait/max-batch admission policy whose default
  (natural batching) keeps single-request p50 unregressed at low load;
* a bounded LRU **translation cache** keyed on
  ``(question tokens, table content fingerprint, beam width)``, plus
  within-batch request deduplication (identical concurrent requests
  compute once);
* a :class:`~repro.serving.metrics.MetricsRegistry` with request /
  cache / outcome counters, breaker and cache gauges, and per-stage
  latency histograms;
* the **resilience stack**: per-request deadlines with per-stage budget
  checks, bounded retry with exponential backoff for retryable
  failures, a graceful-degradation ladder (full adversarial annotation
  → context-free matcher-only annotation → structured failure), and a
  circuit breaker that trips after repeated full-path failures and
  serves cache + degraded paths while open.

Coalesced execution never changes results: a batch's lanes are
computed by the same kernels on the same per-request shapes (see
:meth:`~repro.core.nlidb.NLIDB.cohort_artifacts`), so the SQL is
byte-identical to the sequential path — pinned by differential tests.
A lane the cohort cannot serve (any per-lane failure, a tripped
breaker, a fault-injection wrapper) falls back to the ordinary
sequential ladder with its usual retry/breaker accounting.

Every ladder rung executes through the same
:class:`~repro.pipeline.Pipeline` stage graph (deadline checks ride as
middleware; coalesced lanes add
:class:`~repro.pipeline.BatchTraceMiddleware`, so their stage records
carry the batch id, size, lane, and shared-kernel wall times); the
per-stage metrics, the envelope's ``timings``, and its ``trace`` are
all derived from the run's :class:`~repro.pipeline.StageTrace` records.

The public API returns :class:`~repro.serving.results.
TranslationResult` envelopes and **never raises** for per-request
failures.  (The pre-envelope ``raw=True`` escape hatch is gone; callers
needing the bare :class:`~repro.core.nlidb.Translation` read
``result.translation``.)

Thread safety: the substrate's grad-mode flag is thread-local, so
``no_grad`` on a worker thread cannot corrupt training elsewhere; what
still needs serializing is the models' *mutable inference state* (the
reused arena buffers and per-generation weight snapshots).  Model
inference is therefore serialized — structurally, by the scheduler's
single worker thread, and defensively by the model lock.
Cache hits resolve at submission time without touching the queue and
therefore proceed concurrently.  Every returned :class:`Translation`
may be shared between callers — treat it as immutable.  Note that
retry backoff sleeps on the worker thread: inference is serialized
anyway, so a sleeping retry cannot starve work that would otherwise
run, but it does delay the rest of its batch.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import asdict, dataclass, field
from typing import Callable

from repro.caching import LRUCache
from repro.core.nlidb import NLIDB, Translation
from repro.errors import (
    CircuitOpen,
    DeadlineExceeded,
    ModelError,
    ReproError,
    ServingError,
    is_retryable,
)
from repro.pipeline import (
    OUTCOME_CACHED,
    OUTCOME_SKIPPED,
    BatchInfo,
    BatchTraceMiddleware,
    StageRecord,
    StageTrace,
    WIRE_SCHEMA_VERSION,
    deadline_middleware,
)
from repro.sqlengine import Table, table_fingerprint

from repro.serving.metrics import MetricsRegistry
from repro.serving.requests import TranslationRequest, as_request
from repro.serving.resilience import (
    BREAKER_CLOSED,
    CircuitBreaker,
    Deadline,
    ResiliencePolicy,
)
from repro.serving.results import TranslationResult
from repro.serving.scheduler import MicroBatchScheduler, SchedulerPolicy

__all__ = ["TranslationService", "DEFAULT_CACHE_SIZE"]

DEFAULT_CACHE_SIZE = 1024


@dataclass
class _Pending:
    """One queued request: what to compute and whom to tell."""

    request: TranslationRequest
    key: tuple
    deadline: Deadline
    future: Future = field(default_factory=Future)


class TranslationService:
    """Serve ``translate`` requests with micro-batching, caching,
    metrics, and graceful degradation.

    Parameters
    ----------
    nlidb:
        A *fitted* :class:`NLIDB` (or a wrapper such as
        :class:`~repro.serving.faults.FaultyNLIDB`).  The service
        attaches the translator's ``timing_hook`` (when present) to its
        own metrics.
    cache_size:
        Capacity of the translation LRU cache.
    metrics:
        Optional shared registry; by default each service owns one.
    policy:
        The :class:`ResiliencePolicy` (deadline, retries, degradation,
        breaker thresholds).  Defaults to production-shaped settings.
    breaker:
        Optional pre-built :class:`CircuitBreaker` (tests inject one
        with a fake clock); by default built from ``policy``.
    scheduler_policy:
        The micro-batch admission policy (max batch size, max wait).
        The default is natural batching — dispatch whatever is queued
        whenever the worker is free, capped at 16 lanes.
    sleep:
        Injectable sleep used for retry backoff.
    model_lock:
        Optional shared lock serializing model inference.  The
        substrate's grad-mode flag is thread-local, so the lock no
        longer guards that; it guards the models' mutable inference
        state (arena buffers, weight-snapshot caches, ``last_decode``).
        Several services sharing one *model* in one process (the
        cluster's worker replicas) must share one lock; a lone service
        defaults to its own.
    """

    def __init__(self, nlidb: NLIDB, cache_size: int = DEFAULT_CACHE_SIZE,
                 metrics: MetricsRegistry | None = None,
                 policy: ResiliencePolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 scheduler_policy: SchedulerPolicy | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 model_lock: threading.Lock | None = None):
        if not getattr(nlidb, "_fitted", False):
            raise ModelError("TranslationService needs a fitted NLIDB")
        self.nlidb = nlidb
        self.metrics = metrics or MetricsRegistry()
        self.policy = policy or ResiliencePolicy()
        self.breaker = breaker or CircuitBreaker.from_policy(self.policy)
        self._sleep = sleep
        self._cache = LRUCache(maxsize=cache_size)
        self._model_lock = model_lock or threading.Lock()
        self._batch_seq = 0
        self.scheduler: MicroBatchScheduler[_Pending] = MicroBatchScheduler(
            self._process_batch, policy=scheduler_policy,
            on_batch_error=self._fail_batch)
        # Both ladder rungs execute through the same stage-graph
        # executor; the per-request deadline check rides as the
        # outermost middleware (a FaultyNLIDB adds its fault middleware
        # underneath, where its per-method shims used to sit).
        self._pipelines = {
            mode: nlidb.pipeline(mode, middleware=(deadline_middleware,))
            for mode in ("full", "context_free")
        }
        translator = getattr(nlidb, "translator", None)
        if translator is not None and hasattr(translator, "timing_hook"):
            translator.timing_hook = self._record_translator_stage

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def submit(self, request, table: Table | None = None,
               beam_width: int | None = None) -> "Future[TranslationResult]":
        """Enqueue one request; the future resolves to its envelope.

        Accepts a :class:`TranslationRequest`, a ``(question, table[,
        beam_width])`` tuple, or the classic ``(question, table)``
        positional form.  Raises :class:`~repro.errors.ReproError`
        immediately for a malformed request (there is nothing to
        enqueue); every *pipeline* failure resolves the future with a
        ``status="failed"`` envelope instead of raising.

        A warm-cache request resolves synchronously and never touches
        the queue; everything else is admitted to the micro-batch
        scheduler, where it coalesces with whatever else is in flight.
        The request's deadline starts now — time spent queued counts
        against its budget, exactly as lock-wait time used to.
        """
        if table is not None:
            request = as_request((request, table, beam_width))
        else:
            request = as_request(request)
        future, pending = self._admit(request)
        if pending is not None:
            self.scheduler.submit(pending)
        return future

    def translate(self, question: str | list[str], table: Table,
                  beam_width: int | None = None) -> TranslationResult:
        """Translate one question into a :class:`TranslationResult`.

        ``submit(...).result()`` — exactly one code path serves
        synchronous and asynchronous callers.  Never raises for
        pipeline failures: a request that exhausts the degradation
        ladder comes back as ``status="failed"`` with a structured
        error.
        """
        return self.submit(question, table, beam_width).result()

    def translate_batch(self, requests) -> list[TranslationResult]:
        """Translate many requests through the shared queue.

        ``requests`` is a sequence of :class:`TranslationRequest` or
        ``(question, table[, beam_width])`` tuples.  Results come back
        in input order, one :class:`TranslationResult` per request —
        a bad or failing request yields a ``"failed"`` envelope at its
        index and never poisons the rest of the batch.  The whole call
        is enqueued atomically, so its requests coalesce into as few
        micro-batches as the admission policy allows (mixed tables
        included — the coalesced kernels accept heterogeneous schemas).
        """
        items = list(requests)
        self.metrics.increment("batches")
        self.metrics.increment("batch_requests", len(items))
        results: list[TranslationResult | None] = [None] * len(items)
        futures: list[tuple[int, Future]] = []
        pendings: list[_Pending] = []
        for i, item in enumerate(items):
            try:
                request = as_request(item)
            except ReproError as exc:
                self.metrics.increment("bad_requests")
                results[i] = TranslationResult.from_failure(exc)
                continue
            future, pending = self._admit(request)
            futures.append((i, future))
            if pending is not None:
                pendings.append(pending)
        self.scheduler.submit_many(pendings)
        for i, future in futures:
            results[i] = future.result()
        return results  # fully populated: every index was served

    def close(self) -> None:
        """Stop admitting requests; in-flight work still completes."""
        self.scheduler.close()

    def fingerprint(self, table: Table) -> str:
        """The cache-key fingerprint of a table (content hash)."""
        return table_fingerprint(table)

    def stats(self) -> dict:
        """Metrics snapshot plus cache, breaker, scheduler, and policy
        state.  ``schema_version`` names the wire envelope every
        ``to_dict`` in the system emits."""
        self.metrics.set_gauge("breaker_state", self.breaker.state_gauge())
        self.metrics.set_gauge("cache_size", float(len(self._cache)))
        snapshot = self.metrics.snapshot()
        snapshot["schema_version"] = WIRE_SCHEMA_VERSION
        snapshot["cache"] = {
            "size": len(self._cache),
            "maxsize": self._cache.maxsize,
            "evictions": self._cache.evictions,
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "hit_rate": self._cache.hit_rate(),
        }
        snapshot["breaker"] = self.breaker.snapshot()
        snapshot["scheduler"] = self.scheduler.stats()
        snapshot["policy"] = asdict(self.policy)
        # The annotator's fingerprint-keyed schema-encoding cache, when
        # the wrapped NLIDB has one (fault wrappers delegate; test stubs
        # without an annotator are skipped).
        annotator = getattr(self.nlidb, "annotator", None)
        schema_stats = getattr(annotator, "schema_cache_stats", None)
        if schema_stats is not None:
            snapshot["schema_cache"] = schema_stats()
        # Which numeric inference path is live (dtype, arena occupancy,
        # int8 scoring) — skipped for test stubs without the hook.
        inference_info = getattr(self.nlidb, "inference_info", None)
        if callable(inference_info):
            snapshot["inference"] = inference_info()
        return snapshot

    def clear_cache(self) -> None:
        """Drop every cached translation (metrics are kept)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Admission (caller thread)
    # ------------------------------------------------------------------

    def _admit(self, request: TranslationRequest,
               ) -> tuple[Future, _Pending | None]:
        """Count the request and either resolve it warm or queue it."""
        self.metrics.increment("requests")
        key = (request.question, table_fingerprint(request.table),
               self._resolve_width(request.beam_width))
        future: Future = Future()
        cached = self._cache.get(key)
        if cached is not None:
            self.metrics.increment("cache_hits")
            future.set_result(self._finish(self._cache_hit(cached)))
            return future, None
        return future, _Pending(request=request, key=key,
                                deadline=Deadline(self.policy.deadline_s),
                                future=future)

    # ------------------------------------------------------------------
    # Batch execution (scheduler worker thread)
    # ------------------------------------------------------------------

    def _process_batch(self, pendings: list[_Pending]) -> None:
        """Serve one drained micro-batch; resolves every lane's future.

        Order of business: re-check the cache (another lane may have
        warmed a key since admission), dedupe identical requests into
        leaders + followers, run the coalescible leaders through the
        shared kernels, walk everything left through the sequential
        ladder, then mirror leader outcomes onto followers.
        """
        with self._model_lock:
            self._batch_seq += 1
            work: list[_Pending] = []
            for p in pendings:
                cached = self._cache.get(p.key, count=False)
                if cached is not None:
                    # Counted as a hit so hits + misses == requests
                    # stays exact under concurrency; the LRU's own
                    # counters saw this request once at admission, so
                    # the re-check is uncounted there.
                    self.metrics.increment("cache_hits")
                    if p.future.set_running_or_notify_cancel():
                        p.future.set_result(
                            self._finish(self._cache_hit(cached)))
                    continue
                self.metrics.increment("cache_misses")
                if p.future.set_running_or_notify_cancel():
                    work.append(p)

            leaders: dict[tuple, _Pending] = {}
            followers: dict[tuple, list[_Pending]] = {}
            for p in work:
                if p.key in leaders:
                    followers.setdefault(p.key, []).append(p)
                    self.metrics.increment("deduplicated")
                else:
                    leaders[p.key] = p

            served = self._serve_coalesced(list(leaders.values()))
            for p in leaders.values():
                if p.key not in served:
                    self._serve_sequential(p)
            for key, dupes in followers.items():
                leader_future = leaders[key].future
                for p in dupes:
                    self._mirror(leader_future, p.future)

    def _serve_coalesced(self, leaders: list[_Pending]) -> set:
        """Run eligible leaders through the shared cohort kernels.

        Returns the keys whose futures were resolved here; everything
        else (ineligible batches, lanes the cohort dropped) belongs to
        the sequential ladder, where retry/breaker/degradation
        accounting lives.  Requires ≥2 live lanes — a singleton batch
        gains nothing from the merged kernels and keeps low-load p50 on
        the untouched sequential path.
        """
        served: set = set()
        if (len(leaders) < 2
                or not getattr(self.nlidb, "coalescible", False)
                or self.breaker.state != BREAKER_CLOSED):
            return served
        lanes = [p for p in leaders if not p.deadline.expired()]
        if len(lanes) < 2:
            return served
        try:
            artifacts, stats = self.nlidb.cohort_artifacts(
                [(list(p.request.question), p.request.table,
                  p.request.beam_width) for p in lanes])
        except ReproError:
            self.metrics.increment("coalesce_fallbacks", len(lanes))
            return served
        self.metrics.increment("coalesced_batches")
        info = BatchInfo(
            self._batch_seq, len(lanes), 0,
            kernel_walls={"annotate": stats.get("annotate_s", 0.0),
                          "translate": stats.get("decode_s", 0.0)})
        for lane, (p, seeded) in enumerate(zip(lanes, artifacts)):
            if seeded is None:
                self.metrics.increment("coalesce_fallbacks")
                continue
            timings: dict[str, float] = {}
            trace = StageTrace()
            try:
                translation = self._run_pipeline(
                    list(p.request.question), p.request.table,
                    p.request.beam_width, None, mode="full",
                    deadline=p.deadline, trace=trace, attempt=1,
                    timings=timings, artifacts=seeded,
                    batch=info.for_lane(lane))
            except ReproError:
                # Only the deadline can fire here (the model stages are
                # pre-seeded; recovery reports errors in-band) — the
                # sequential ladder turns it into the usual envelope.
                self.metrics.increment("coalesce_fallbacks")
                continue
            except BaseException as exc:
                p.future.set_exception(exc)
                served.add(p.key)
                continue
            # A completed full-path run: same breaker/cache treatment
            # as a sequential full-rung success.
            self.breaker.record_success()
            self.metrics.increment("coalesced_requests")
            result = TranslationResult.from_translation(
                translation, attempts=1, timings=timings,
                trace=tuple(trace))
            self._cache.put(p.key, translation)
            p.future.set_result(self._finish(result))
            served.add(p.key)
        return served

    def _serve_sequential(self, p: _Pending) -> None:
        """One lane through the degradation ladder; resolves its future."""
        try:
            result, cacheable = self._compute_resilient(
                list(p.request.question), p.request.table,
                p.request.beam_width, None, p.deadline)
            if cacheable and result.translation is not None:
                self._cache.put(p.key, result.translation)
            p.future.set_result(self._finish(result))
        except BaseException as exc:  # noqa: BLE001 — future must resolve
            if not p.future.done():
                p.future.set_exception(exc)

    @staticmethod
    def _mirror(source: Future, target: Future) -> None:
        """Copy a resolved leader future onto a deduplicated follower.

        Both futures entered RUNNING during the cache re-check, so the
        leader's outcome (already resolved, same thread) just copies
        over."""
        exc = source.exception()
        if exc is not None:
            target.set_exception(exc)
        else:
            target.set_result(source.result())

    def _fail_batch(self, pendings: list[_Pending],
                    exc: BaseException) -> None:
        """Last-resort resolution if the batch executor itself raised."""
        for p in pendings:
            if not p.future.done():
                try:
                    p.future.set_exception(exc)
                except BaseException:
                    pass

    @staticmethod
    def _cache_hit(cached: Translation) -> TranslationResult:
        record = StageRecord(stage="cache", outcome=OUTCOME_CACHED,
                             cached=True)
        return TranslationResult.from_translation(cached, cached=True,
                                                  trace=(record,))

    def _finish(self, result: TranslationResult) -> TranslationResult:
        self.metrics.increment(f"served_{result.status}")
        return result

    def _compute_resilient(self, question_tokens: list[str], table: Table,
                           beam_width: int | None,
                           header_tokens: list[str] | None,
                           deadline: Deadline,
                           ) -> tuple[TranslationResult, bool]:
        """Walk the degradation ladder; always return an envelope.

        Returns ``(result, cacheable)`` — only translations produced by
        the *full* pipeline are cacheable.  Degraded results are served
        but never cached, so repeat traffic re-attempts the full path
        once the underlying failure clears.

        One request-level :class:`StageTrace` accumulates across every
        rung and retry attempt; each rung's slice also feeds the
        per-stage metrics and the envelope's ``timings``.
        """
        timings: dict[str, float] = {}
        trace = StageTrace()
        attempts_box = [0]
        failure: BaseException | None = None

        # Rung 1: the full adversarial pipeline, behind the breaker.
        if self.breaker.allow():
            try:
                translation = self._attempt_full(
                    question_tokens, table, beam_width, header_tokens,
                    deadline, timings, trace, attempts_box)
                self.breaker.record_success()
                return TranslationResult.from_translation(
                    translation, attempts=attempts_box[0],
                    timings=timings, trace=tuple(trace)), True
            except ReproError as exc:
                failure = exc
                self.breaker.record_failure()
                self.metrics.increment("full_path_failures")
                if isinstance(exc, DeadlineExceeded):
                    # No budget left for a fallback rung either.
                    self.metrics.increment("deadline_exceeded")
                    return TranslationResult.from_failure(
                        exc, attempts=attempts_box[0],
                        timings=timings, trace=tuple(trace)), False
        else:
            self.metrics.increment("breaker_short_circuits")
            failure = CircuitOpen(
                "circuit breaker open: full pipeline skipped")
            trace.append(StageRecord(
                stage="full", outcome=OUTCOME_SKIPPED,
                detail={"reason": "circuit breaker open"}))

        # Rung 2: context-free matcher-only annotation (cheap, model-
        # independent detection; the paper's exact/edit/semantic case).
        if self.policy.degradation and not deadline.expired():
            try:
                translation = self._run_pipeline(
                    question_tokens, table, beam_width, header_tokens,
                    mode="context_free", deadline=deadline, trace=trace,
                    attempt=1, timings=timings)
                self.metrics.increment("degraded_fallbacks")
                return TranslationResult.from_translation(
                    translation, degraded=True, cause=failure,
                    attempts=attempts_box[0], timings=timings,
                    trace=tuple(trace)), False
            except ReproError as exc:
                self.metrics.increment("degraded_failures")
                if isinstance(exc, DeadlineExceeded):
                    self.metrics.increment("deadline_exceeded")
                failure = exc

        # Rung 3: structured failure — the envelope still comes back.
        return TranslationResult.from_failure(
            failure if failure is not None
            else ServingError("degradation disabled and full path failed"),
            attempts=attempts_box[0], timings=timings,
            trace=tuple(trace)), False

    def _attempt_full(self, question_tokens: list[str], table: Table,
                      beam_width: int | None,
                      header_tokens: list[str] | None, deadline: Deadline,
                      timings: dict[str, float], trace: StageTrace,
                      attempts_box: list[int]) -> Translation:
        """The full pipeline with bounded retry on retryable failures."""
        retries = 0
        while True:
            attempts_box[0] += 1
            try:
                return self._run_pipeline(
                    question_tokens, table, beam_width, header_tokens,
                    mode="full", deadline=deadline, trace=trace,
                    attempt=attempts_box[0], timings=timings)
            except ReproError as exc:
                if (isinstance(exc, DeadlineExceeded)
                        or not is_retryable(exc)
                        or retries >= self.policy.max_retries):
                    raise
                retries += 1
                self.metrics.increment("retries")
                delay = min(self.policy.backoff_delay(retries),
                            deadline.remaining())
                if delay > 0:
                    self._sleep(delay)

    def _run_pipeline(self, question_tokens: list[str], table: Table,
                      beam_width: int | None,
                      header_tokens: list[str] | None, *, mode: str,
                      deadline: Deadline, trace: StageTrace, attempt: int,
                      timings: dict[str, float],
                      artifacts: dict | None = None,
                      batch: BatchInfo | None = None) -> Translation:
        """Execute one pipeline variant over one fresh context.

        The context gets fresh artifacts (a retry must recompute) but
        shares the request-level ``trace``; this run's slice of it is
        absorbed into metrics and ``timings`` whether the run completed
        or raised.  A coalesced lane passes ``artifacts`` pre-seeded by
        the shared kernels (the artifact-cache middleware marks those
        stages ``cached``; only recovery runs live) and a ``batch``
        identity stamped into every record by
        :class:`BatchTraceMiddleware`.
        """
        # Caller holds the model lock (the arena buffers and weight
        # snapshots are shared, so inference must not interleave).
        prefix = "" if mode == "full" else "degraded."
        ctx = self.nlidb.context(question_tokens, table, mode=mode,
                                 beam_width=beam_width,
                                 header_tokens=header_tokens,
                                 deadline=deadline, trace=trace,
                                 attempt=attempt, artifacts=artifacts)
        pipeline = self._pipelines[mode]
        if batch is not None:
            pipeline = self.nlidb.pipeline(
                mode, middleware=(deadline_middleware,
                                  BatchTraceMiddleware(batch)))
        mark = len(trace)
        try:
            pipeline.run(ctx)
        except ReproError as exc:
            if (getattr(exc, "stage", None) == "annotate"
                    and not isinstance(exc, DeadlineExceeded)):
                self.metrics.increment(prefix + "annotation_failures")
            raise
        finally:
            self._absorb(trace[mark:], prefix, timings)
        translation: Translation = ctx.artifacts["translation"]
        translation.trace = tuple(trace[mark:])
        if translation.error is not None:
            self.metrics.increment(prefix + "recovery_failures")
        return translation

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _absorb(self, records, prefix: str,
                timings: dict[str, float]) -> None:
        """Fold one run's stage records into metrics and timings.

        Deadline-refused stages are excluded: the deadline fires
        *before* a stage starts, so no work was timed.  Sub-stages
        (dotted names) feed the latency histograms but stay out of the
        envelope's top-level ``timings``.
        """
        for record in records:
            if record.error == "DeadlineExceeded":
                continue
            name = prefix + record.stage
            self.metrics.observe(name, record.wall_s)
            if "." not in record.stage:
                # Accumulate across retries so a request's timings sum
                # to its real pipeline time.
                timings[name] = timings.get(name, 0.0) + record.wall_s

    def _resolve_width(self, beam_width: int | None) -> int | None:
        if beam_width is not None:
            return beam_width
        # Explicitly passing the configured default must share the
        # defaulted entry, so resolve before keying.
        translator = getattr(self.nlidb, "translator", None)
        return getattr(getattr(translator, "config", None),
                       "beam_width", None)

    def _record_translator_stage(self, stage: str, seconds: float) -> None:
        self.metrics.observe(f"seq2seq.{stage}", seconds)
