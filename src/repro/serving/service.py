"""The batched, cached, *resilient* serving layer over a trained NLIDB.

The paper evaluates the pipeline one question at a time; a deployed
NLIDB (the DBPal / NaLIR framing) instead sees *traffic*: many
questions, a few hot tables, strict latency expectations — and
failures.  :class:`TranslationService` adds the serving machinery
without touching model semantics:

* a bounded LRU **translation cache** keyed on
  ``(question tokens, table content fingerprint, beam width)``;
* :meth:`TranslationService.translate_batch`, which groups same-table
  requests so per-table work (annotation column statistics, the header
  encoding) is computed once per table per batch;
* a :class:`~repro.serving.metrics.MetricsRegistry` with request /
  cache / outcome counters, breaker and cache gauges, and per-stage
  latency histograms;
* the **resilience stack**: per-request deadlines with per-stage budget
  checks, bounded retry with exponential backoff for retryable
  failures, a graceful-degradation ladder (full adversarial annotation
  → context-free matcher-only annotation → structured failure), and a
  circuit breaker that trips after repeated full-path failures and
  serves cache + degraded paths while open.

Every ladder rung executes through the same
:class:`~repro.pipeline.Pipeline` stage graph (deadline checks ride as
middleware); the per-stage metrics, the envelope's ``timings``, and its
``trace`` are all derived from the run's
:class:`~repro.pipeline.StageTrace` records.

The public API returns a :class:`~repro.serving.results.
TranslationResult` envelope and **never raises** for per-request
failures; ``translate(..., raw=True)`` is a deprecated shim that
returns the bare :class:`~repro.core.nlidb.Translation` and re-raises
errors, preserving the pre-envelope contract for one release.

Thread safety: the numpy substrate's ``no_grad`` flips a module-global
flag, so *model* inference is serialized behind one lock; cache hits
never take that lock and therefore proceed concurrently.  Every
returned :class:`Translation` may be shared between callers — treat it
as immutable.  Note that retry backoff sleeps while holding the model
lock: inference is serialized anyway, so a sleeping retry cannot starve
work that would otherwise run.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import asdict
from typing import Callable

from repro.caching import LRUCache
from repro.core.nlidb import NLIDB, Translation
from repro.errors import (
    CircuitOpen,
    DeadlineExceeded,
    ModelError,
    ReproError,
    ServingError,
    is_retryable,
)
from repro.pipeline import (
    OUTCOME_CACHED,
    OUTCOME_SKIPPED,
    StageRecord,
    StageTrace,
    deadline_middleware,
)
from repro.sqlengine import Table, table_fingerprint

from repro.serving.metrics import MetricsRegistry
from repro.serving.requests import (
    TranslationRequest,
    as_request,
    normalize_question,
)
from repro.serving.resilience import CircuitBreaker, Deadline, ResiliencePolicy
from repro.serving.results import TranslationResult

__all__ = ["TranslationService", "DEFAULT_CACHE_SIZE"]

DEFAULT_CACHE_SIZE = 1024


class TranslationService:
    """Serve ``translate`` requests with caching, batching, metrics, and
    graceful degradation.

    Parameters
    ----------
    nlidb:
        A *fitted* :class:`NLIDB` (or a wrapper such as
        :class:`~repro.serving.faults.FaultyNLIDB`).  The service
        attaches the translator's ``timing_hook`` (when present) to its
        own metrics.
    cache_size:
        Capacity of the translation LRU cache.
    metrics:
        Optional shared registry; by default each service owns one.
    policy:
        The :class:`ResiliencePolicy` (deadline, retries, degradation,
        breaker thresholds).  Defaults to production-shaped settings.
    breaker:
        Optional pre-built :class:`CircuitBreaker` (tests inject one
        with a fake clock); by default built from ``policy``.
    sleep:
        Injectable sleep used for retry backoff.
    """

    def __init__(self, nlidb: NLIDB, cache_size: int = DEFAULT_CACHE_SIZE,
                 metrics: MetricsRegistry | None = None,
                 policy: ResiliencePolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 sleep: Callable[[float], None] = time.sleep):
        if not getattr(nlidb, "_fitted", False):
            raise ModelError("TranslationService needs a fitted NLIDB")
        self.nlidb = nlidb
        self.metrics = metrics or MetricsRegistry()
        self.policy = policy or ResiliencePolicy()
        self.breaker = breaker or CircuitBreaker.from_policy(self.policy)
        self._sleep = sleep
        self._cache = LRUCache(maxsize=cache_size)
        self._model_lock = threading.Lock()
        # Both ladder rungs execute through the same stage-graph
        # executor; the per-request deadline check rides as the
        # outermost middleware (a FaultyNLIDB adds its fault middleware
        # underneath, where its per-method shims used to sit).
        self._pipelines = {
            mode: nlidb.pipeline(mode, middleware=(deadline_middleware,))
            for mode in ("full", "context_free")
        }
        translator = getattr(nlidb, "translator", None)
        if translator is not None and hasattr(translator, "timing_hook"):
            translator.timing_hook = self._record_translator_stage

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def translate(self, question: str | list[str], table: Table,
                  beam_width: int | None = None, *,
                  raw: bool = False) -> TranslationResult | Translation:
        """Translate one question into a :class:`TranslationResult`.

        Never raises for pipeline failures: a request that exhausts the
        degradation ladder comes back as ``status="failed"`` with a
        structured error.  ``raw=True`` (deprecated) restores the old
        contract — the bare :class:`Translation`, re-raising errors.
        """
        result = self._serve(question, table, beam_width,
                             table_fingerprint(table))
        if raw:
            return self._unwrap(result)
        return result

    def translate_batch(self, requests, *,
                        raw: bool = False) -> list[TranslationResult]:
        """Translate many requests, grouping same-table work.

        ``requests`` is a sequence of :class:`TranslationRequest` or
        ``(question, table[, beam_width])`` tuples.  Results come back
        in input order, one :class:`TranslationResult` per request —
        a bad or failing request yields a ``"failed"`` envelope at its
        index and never poisons the rest of the batch.  Grouping only
        changes *how much* per-table work (column statistics, header
        encodings) is recomputed.

        With ``raw=True`` (deprecated) the return is a list of bare
        :class:`Translation` and the first failure raises.
        """
        items = list(requests)
        self.metrics.increment("batches")
        self.metrics.increment("batch_requests", len(items))
        results: list[TranslationResult | None] = [None] * len(items)

        batch: list[tuple[int, TranslationRequest]] = []
        for i, item in enumerate(items):
            try:
                batch.append((i, as_request(item)))
            except ReproError as exc:
                if raw:
                    raise
                self.metrics.increment("bad_requests")
                results[i] = TranslationResult.from_failure(exc)

        groups: dict[str, list[tuple[int, TranslationRequest]]] = {}
        for i, request in batch:
            fingerprint = table_fingerprint(request.table)
            groups.setdefault(fingerprint, []).append((i, request))

        for fingerprint, members in groups.items():
            header_tokens: list[str] | None = None
            for i, request in members:
                if header_tokens is None:
                    header_tokens = self.nlidb.header_tokens(request.table)
                results[i] = self._serve(request.question, request.table,
                                         request.beam_width, fingerprint,
                                         header_tokens=header_tokens)
        if raw:
            return [self._unwrap(result) for result in results]
        return results  # fully populated: every index was served

    def fingerprint(self, table: Table) -> str:
        """The cache-key fingerprint of a table (content hash)."""
        return table_fingerprint(table)

    def stats(self) -> dict:
        """Metrics snapshot plus cache, breaker, and policy state."""
        self.metrics.set_gauge("breaker_state", self.breaker.state_gauge())
        self.metrics.set_gauge("cache_size", float(len(self._cache)))
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = {
            "size": len(self._cache),
            "maxsize": self._cache.maxsize,
            "evictions": self._cache.evictions,
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "hit_rate": self._cache.hit_rate(),
        }
        snapshot["breaker"] = self.breaker.snapshot()
        snapshot["policy"] = asdict(self.policy)
        # The annotator's fingerprint-keyed schema-encoding cache, when
        # the wrapped NLIDB has one (fault wrappers delegate; test stubs
        # without an annotator are skipped).
        annotator = getattr(self.nlidb, "annotator", None)
        schema_stats = getattr(annotator, "schema_cache_stats", None)
        if schema_stats is not None:
            snapshot["schema_cache"] = schema_stats()
        return snapshot

    def clear_cache(self) -> None:
        """Drop every cached translation (metrics are kept)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Serving core
    # ------------------------------------------------------------------

    def _serve(self, question, table: Table, beam_width: int | None,
               fingerprint: str,
               header_tokens: list[str] | None = None) -> TranslationResult:
        self.metrics.increment("requests")
        key = (normalize_question(question), fingerprint,
               self._resolve_width(beam_width))
        cached = self._cache.get(key)
        if cached is not None:
            self.metrics.increment("cache_hits")
            return self._finish(self._cache_hit(cached))
        # The deadline starts before the model lock so time spent queued
        # behind other inference counts against this request's budget.
        deadline = Deadline(self.policy.deadline_s)
        with self._model_lock:
            # Re-check: another thread may have computed this key while
            # we waited for the model; counting it as a hit keeps
            # hits + misses == requests exact under concurrency.  The
            # LRU's own counters already saw this request once, so the
            # re-check is uncounted there.
            cached = self._cache.get(key, count=False)
            if cached is not None:
                self.metrics.increment("cache_hits")
                return self._finish(self._cache_hit(cached))
            self.metrics.increment("cache_misses")
            result, cacheable = self._compute_resilient(
                list(key[0]), table, beam_width, header_tokens, deadline)
            if cacheable and result.translation is not None:
                self._cache.put(key, result.translation)
            return self._finish(result)

    @staticmethod
    def _cache_hit(cached: Translation) -> TranslationResult:
        record = StageRecord(stage="cache", outcome=OUTCOME_CACHED,
                             cached=True)
        return TranslationResult.from_translation(cached, cached=True,
                                                  trace=(record,))

    def _finish(self, result: TranslationResult) -> TranslationResult:
        self.metrics.increment(f"served_{result.status}")
        return result

    def _compute_resilient(self, question_tokens: list[str], table: Table,
                           beam_width: int | None,
                           header_tokens: list[str] | None,
                           deadline: Deadline,
                           ) -> tuple[TranslationResult, bool]:
        """Walk the degradation ladder; always return an envelope.

        Returns ``(result, cacheable)`` — only translations produced by
        the *full* pipeline are cacheable.  Degraded results are served
        but never cached, so repeat traffic re-attempts the full path
        once the underlying failure clears.

        One request-level :class:`StageTrace` accumulates across every
        rung and retry attempt; each rung's slice also feeds the
        per-stage metrics and the envelope's ``timings``.
        """
        timings: dict[str, float] = {}
        trace = StageTrace()
        attempts_box = [0]
        failure: BaseException | None = None

        # Rung 1: the full adversarial pipeline, behind the breaker.
        if self.breaker.allow():
            try:
                translation = self._attempt_full(
                    question_tokens, table, beam_width, header_tokens,
                    deadline, timings, trace, attempts_box)
                self.breaker.record_success()
                return TranslationResult.from_translation(
                    translation, attempts=attempts_box[0],
                    timings=timings, trace=tuple(trace)), True
            except ReproError as exc:
                failure = exc
                self.breaker.record_failure()
                self.metrics.increment("full_path_failures")
                if isinstance(exc, DeadlineExceeded):
                    # No budget left for a fallback rung either.
                    self.metrics.increment("deadline_exceeded")
                    return TranslationResult.from_failure(
                        exc, attempts=attempts_box[0],
                        timings=timings, trace=tuple(trace)), False
        else:
            self.metrics.increment("breaker_short_circuits")
            failure = CircuitOpen(
                "circuit breaker open: full pipeline skipped")
            trace.append(StageRecord(
                stage="full", outcome=OUTCOME_SKIPPED,
                detail={"reason": "circuit breaker open"}))

        # Rung 2: context-free matcher-only annotation (cheap, model-
        # independent detection; the paper's exact/edit/semantic case).
        if self.policy.degradation and not deadline.expired():
            try:
                translation = self._run_pipeline(
                    question_tokens, table, beam_width, header_tokens,
                    mode="context_free", deadline=deadline, trace=trace,
                    attempt=1, timings=timings)
                self.metrics.increment("degraded_fallbacks")
                return TranslationResult.from_translation(
                    translation, degraded=True, cause=failure,
                    attempts=attempts_box[0], timings=timings,
                    trace=tuple(trace)), False
            except ReproError as exc:
                self.metrics.increment("degraded_failures")
                if isinstance(exc, DeadlineExceeded):
                    self.metrics.increment("deadline_exceeded")
                failure = exc

        # Rung 3: structured failure — the envelope still comes back.
        return TranslationResult.from_failure(
            failure if failure is not None
            else ServingError("degradation disabled and full path failed"),
            attempts=attempts_box[0], timings=timings,
            trace=tuple(trace)), False

    def _attempt_full(self, question_tokens: list[str], table: Table,
                      beam_width: int | None,
                      header_tokens: list[str] | None, deadline: Deadline,
                      timings: dict[str, float], trace: StageTrace,
                      attempts_box: list[int]) -> Translation:
        """The full pipeline with bounded retry on retryable failures."""
        retries = 0
        while True:
            attempts_box[0] += 1
            try:
                return self._run_pipeline(
                    question_tokens, table, beam_width, header_tokens,
                    mode="full", deadline=deadline, trace=trace,
                    attempt=attempts_box[0], timings=timings)
            except ReproError as exc:
                if (isinstance(exc, DeadlineExceeded)
                        or not is_retryable(exc)
                        or retries >= self.policy.max_retries):
                    raise
                retries += 1
                self.metrics.increment("retries")
                delay = min(self.policy.backoff_delay(retries),
                            deadline.remaining())
                if delay > 0:
                    self._sleep(delay)

    def _run_pipeline(self, question_tokens: list[str], table: Table,
                      beam_width: int | None,
                      header_tokens: list[str] | None, *, mode: str,
                      deadline: Deadline, trace: StageTrace, attempt: int,
                      timings: dict[str, float]) -> Translation:
        """Execute one pipeline variant over one fresh context.

        The context gets fresh artifacts (a retry must recompute) but
        shares the request-level ``trace``; this run's slice of it is
        absorbed into metrics and ``timings`` whether the run completed
        or raised.
        """
        # Caller holds the model lock (the substrate's grad-mode flag is
        # process-global, so inference must not interleave).
        prefix = "" if mode == "full" else "degraded."
        ctx = self.nlidb.context(question_tokens, table, mode=mode,
                                 beam_width=beam_width,
                                 header_tokens=header_tokens,
                                 deadline=deadline, trace=trace,
                                 attempt=attempt)
        mark = len(trace)
        try:
            self._pipelines[mode].run(ctx)
        except ReproError as exc:
            if (getattr(exc, "stage", None) == "annotate"
                    and not isinstance(exc, DeadlineExceeded)):
                self.metrics.increment(prefix + "annotation_failures")
            raise
        finally:
            self._absorb(trace[mark:], prefix, timings)
        translation: Translation = ctx.artifacts["translation"]
        translation.trace = tuple(trace[mark:])
        if translation.error is not None:
            self.metrics.increment(prefix + "recovery_failures")
        return translation

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _absorb(self, records, prefix: str,
                timings: dict[str, float]) -> None:
        """Fold one run's stage records into metrics and timings.

        Deadline-refused stages are excluded: the deadline fires
        *before* a stage starts, so no work was timed.  Sub-stages
        (dotted names) feed the latency histograms but stay out of the
        envelope's top-level ``timings``.
        """
        for record in records:
            if record.error == "DeadlineExceeded":
                continue
            name = prefix + record.stage
            self.metrics.observe(name, record.wall_s)
            if "." not in record.stage:
                # Accumulate across retries so a request's timings sum
                # to its real pipeline time.
                timings[name] = timings.get(name, 0.0) + record.wall_s

    def _unwrap(self, result: TranslationResult) -> Translation:
        """The deprecated ``raw=True`` contract: Translation-or-raise."""
        warnings.warn(
            "raw=True is deprecated: TranslationService returns "
            "TranslationResult envelopes; use result.translation instead",
            DeprecationWarning, stacklevel=3)
        if result.translation is not None:
            return result.translation
        if result.exception is not None:
            raise result.exception
        message = (result.error or {}).get("message", "translation failed")
        raise ServingError(message)

    def _resolve_width(self, beam_width: int | None) -> int | None:
        if beam_width is not None:
            return beam_width
        # Explicitly passing the configured default must share the
        # defaulted entry, so resolve before keying.
        translator = getattr(self.nlidb, "translator", None)
        return getattr(getattr(translator, "config", None),
                       "beam_width", None)

    def _record_translator_stage(self, stage: str, seconds: float) -> None:
        self.metrics.observe(f"seq2seq.{stage}", seconds)
