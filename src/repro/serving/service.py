"""The batched, cached serving layer over a trained :class:`NLIDB`.

The paper evaluates the pipeline one question at a time; a deployed
NLIDB (the DBPal / NaLIR framing) instead sees *traffic*: many
questions, a few hot tables, and strict latency expectations.
:class:`TranslationService` adds the serving machinery without touching
model semantics:

* a bounded LRU **translation cache** keyed on
  ``(question tokens, table content fingerprint, beam width)`` — a
  repeat question against content-equal table data is answered without
  re-running annotation or beam search, and any table edit changes the
  fingerprint and so misses cleanly;
* :meth:`TranslationService.translate_batch`, which groups same-table
  requests so per-table work (annotation column statistics, the header
  encoding) is computed once per table per batch;
* a :class:`~repro.serving.metrics.MetricsRegistry` counting requests,
  cache hits/misses, and failures, with per-stage latency histograms
  (annotate / translate / recover, plus the translator's own
  encode / beam-search split when available).

Thread safety: the numpy substrate's ``no_grad`` flips a module-global
flag, so *model* inference is serialized behind one lock; cache hits
never take that lock and therefore proceed concurrently.  Every
returned :class:`~repro.core.nlidb.Translation` may be shared between
callers — treat it as immutable.
"""

from __future__ import annotations

import threading

from repro.caching import LRUCache
from repro.core.nlidb import NLIDB, Translation
from repro.errors import ModelError
from repro.sqlengine import Table, table_fingerprint

from repro.serving.metrics import MetricsRegistry
from repro.serving.requests import (
    TranslationRequest,
    as_request,
    normalize_question,
)

__all__ = ["TranslationService", "DEFAULT_CACHE_SIZE"]

DEFAULT_CACHE_SIZE = 1024


class TranslationService:
    """Serve ``translate`` requests with caching, batching, and metrics.

    Parameters
    ----------
    nlidb:
        A *fitted* :class:`NLIDB`.  The service attaches the
        translator's ``timing_hook`` (when present) to its own metrics;
        direct use of the same model object elsewhere will then also be
        recorded here.
    cache_size:
        Capacity of the translation LRU cache.
    metrics:
        Optional shared registry; by default each service owns one.
    """

    def __init__(self, nlidb: NLIDB, cache_size: int = DEFAULT_CACHE_SIZE,
                 metrics: MetricsRegistry | None = None):
        if not getattr(nlidb, "_fitted", False):
            raise ModelError("TranslationService needs a fitted NLIDB")
        self.nlidb = nlidb
        self.metrics = metrics or MetricsRegistry()
        self._cache = LRUCache(maxsize=cache_size)
        self._model_lock = threading.Lock()
        translator = nlidb.translator
        if hasattr(translator, "timing_hook"):
            translator.timing_hook = self._record_translator_stage

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def translate(self, question: str | list[str], table: Table,
                  beam_width: int | None = None) -> Translation:
        """Translate one question, consulting the cache first."""
        return self._serve(question, table, beam_width,
                           table_fingerprint(table))

    def translate_batch(self, requests) -> list[Translation]:
        """Translate many requests, grouping same-table work.

        ``requests`` is a sequence of :class:`TranslationRequest` or
        ``(question, table[, beam_width])`` tuples.  Results come back
        in input order and are identical to calling :meth:`translate`
        per item; grouping only changes *how much* per-table work
        (column statistics, header encodings) is recomputed.
        """
        batch = [as_request(item) for item in requests]
        self.metrics.increment("batches")
        self.metrics.increment("batch_requests", len(batch))
        results: list[Translation | None] = [None] * len(batch)

        groups: dict[str, list[int]] = {}
        fingerprints: list[str] = []
        for i, request in enumerate(batch):
            fingerprint = table_fingerprint(request.table)
            fingerprints.append(fingerprint)
            groups.setdefault(fingerprint, []).append(i)

        for fingerprint, indices in groups.items():
            header_tokens: list[str] | None = None
            for i in indices:
                request = batch[i]
                if header_tokens is None:
                    header_tokens = self.nlidb.header_tokens(request.table)
                results[i] = self._serve(request.question, request.table,
                                         request.beam_width, fingerprint,
                                         header_tokens=header_tokens)
        return results  # fully populated: every index was served

    def fingerprint(self, table: Table) -> str:
        """The cache-key fingerprint of a table (content hash)."""
        return table_fingerprint(table)

    def stats(self) -> dict:
        """Metrics snapshot plus cache occupancy, as a plain dict."""
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = {
            "size": len(self._cache),
            "maxsize": self._cache.maxsize,
            "evictions": self._cache.evictions,
        }
        return snapshot

    def clear_cache(self) -> None:
        """Drop every cached translation (metrics are kept)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Serving core
    # ------------------------------------------------------------------

    def _serve(self, question, table: Table, beam_width: int | None,
               fingerprint: str,
               header_tokens: list[str] | None = None) -> Translation:
        self.metrics.increment("requests")
        key = (normalize_question(question), fingerprint,
               self._resolve_width(beam_width))
        cached = self._cache.get(key)
        if cached is not None:
            self.metrics.increment("cache_hits")
            return cached
        with self._model_lock:
            # Re-check: another thread may have computed this key while
            # we waited for the model; counting it as a hit keeps
            # hits + misses == requests exact under concurrency.
            cached = self._cache.get(key)
            if cached is not None:
                self.metrics.increment("cache_hits")
                return cached
            self.metrics.increment("cache_misses")
            translation = self._compute(list(key[0]), table, beam_width,
                                        header_tokens)
            self._cache.put(key, translation)
            return translation

    def _compute(self, question_tokens: list[str], table: Table,
                 beam_width: int | None,
                 header_tokens: list[str] | None) -> Translation:
        # Caller holds the model lock (the substrate's grad-mode flag is
        # process-global, so inference must not interleave).
        try:
            with self.metrics.time("annotate"):
                annotation = self.nlidb.annotate(question_tokens, table)
        except ModelError:
            self.metrics.increment("annotation_failures")
            raise
        with self.metrics.time("translate"):
            source, predicted = self.nlidb.predict_annotated(
                annotation, beam_width, header_tokens=header_tokens)
        with self.metrics.time("recover"):
            translation = self.nlidb.recover(source, predicted, annotation)
        if translation.error is not None:
            self.metrics.increment("recovery_failures")
        return translation

    def _resolve_width(self, beam_width: int | None) -> int | None:
        if beam_width is not None:
            return beam_width
        # Explicitly passing the configured default must share the
        # defaulted entry, so resolve before keying.
        return getattr(self.nlidb.translator.config, "beam_width", None)

    def _record_translator_stage(self, stage: str, seconds: float) -> None:
        self.metrics.observe(f"seq2seq.{stage}", seconds)
