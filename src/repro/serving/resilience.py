"""Resilience primitives for the serving layer.

A production NLIDB must degrade rather than die: the DBPal/NaLIR
framing of the paper's system is an interactive service, and an
interactive service that answers *something structured* on every
request is strictly more useful than one that is fast until the first
unhandled exception.  This module holds the three mechanisms
:class:`~repro.serving.service.TranslationService` composes:

* :class:`~repro.pipeline.Deadline` (re-exported) — a per-request
  latency budget enforced per stage by ``deadline_middleware``, raising
  :class:`~repro.errors.DeadlineExceeded` with the stage it expired in;
* :class:`ResiliencePolicy` — the knob bundle: deadline, bounded
  retry/backoff schedule, degradation switch, breaker thresholds;
* :class:`CircuitBreaker` — a classic closed → open → half-open
  breaker over the *full* translation path.  While open, the service
  still answers from cache and through the degraded context-free
  ladder rung; after ``cooldown_s`` it lets a bounded number of probe
  requests through, closing again on the first success.

Everything here is plain Python, deterministic, and clock-injectable
so the fault-injection suite can test every transition without
sleeping.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import monotonic
from typing import Callable

# Deadline moved down into repro.pipeline (it is enforced by pipeline
# middleware now); re-exported here for backward compatibility.
from repro.pipeline.deadline import Deadline

__all__ = ["Deadline", "ResiliencePolicy", "CircuitBreaker",
           "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN"]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Numeric encoding of breaker states for the metrics gauge (JSON
#: snapshots want numbers, dashboards want a threshold-able series).
BREAKER_STATE_GAUGE = {BREAKER_CLOSED: 0.0, BREAKER_HALF_OPEN: 0.5,
                       BREAKER_OPEN: 1.0}


@dataclass(frozen=True)
class ResiliencePolicy:
    """Every serving-resilience knob in one frozen bundle.

    The defaults are production-shaped (retries on, degradation on,
    breaker armed, no deadline); tests construct tighter policies with
    zero backoff so nothing sleeps.
    """

    #: Per-request wall-clock budget in seconds; ``None`` disables it.
    deadline_s: float | None = None
    #: Retries *after* the first attempt, for retryable failures only.
    max_retries: int = 2
    #: First backoff delay; each retry multiplies it, capped below.
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 1.0
    #: Whether the context-free degraded rung may serve fallbacks.
    degradation: bool = True
    #: Consecutive full-path failures that trip the breaker open.
    breaker_failure_threshold: int = 5
    #: Seconds the breaker stays open before allowing probes.
    breaker_cooldown_s: float = 30.0
    #: Concurrent probe requests admitted while half-open.
    breaker_half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")

    def backoff_delay(self, retry_number: int) -> float:
        """Delay before retry ``retry_number`` (1-based), bounded.

        ``base * multiplier ** (n - 1)``, clipped to ``backoff_cap_s``.
        """
        if retry_number < 1:
            raise ValueError("retry_number is 1-based")
        delay = self.backoff_base_s * (self.backoff_multiplier
                                       ** (retry_number - 1))
        return min(delay, self.backoff_cap_s)


class CircuitBreaker:
    """Thread-safe closed → open → half-open breaker.

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures trip it open (any success resets the count).
    * **open** — :meth:`allow` refuses until ``cooldown_s`` has passed
      since opening, then transitions to half-open.
    * **half-open** — up to ``half_open_probes`` calls are admitted as
      probes; the first recorded success closes the breaker, the first
      failure re-opens it (restarting the cooldown).

    The breaker never raises; callers ask :meth:`allow` and record
    outcomes.  ``clock`` is injectable so tests drive the cooldown
    without sleeping.
    """

    def __init__(self, failure_threshold: int = 5, cooldown_s: float = 30.0,
                 half_open_probes: int = 1,
                 clock: Callable[[], float] = monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probes_granted = 0
        self._opens = 0

    @classmethod
    def from_policy(cls, policy: ResiliencePolicy,
                    clock: Callable[[], float] = monotonic,
                    ) -> "CircuitBreaker":
        return cls(failure_threshold=policy.breaker_failure_threshold,
                   cooldown_s=policy.breaker_cooldown_s,
                   half_open_probes=policy.breaker_half_open_probes,
                   clock=clock)

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """Whether the full pipeline may be attempted right now."""
        with self._lock:
            self._maybe_half_open()
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_HALF_OPEN:
                if self._probes_granted < self.half_open_probes:
                    self._probes_granted += 1
                    return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == BREAKER_HALF_OPEN:
                self._state = BREAKER_CLOSED
                self._opened_at = None
            self._probes_granted = 0

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == BREAKER_HALF_OPEN:
                self._trip()
            elif (self._state == BREAKER_CLOSED
                  and self._consecutive_failures >= self.failure_threshold):
                self._trip()

    def snapshot(self) -> dict:
        """JSON-ready view of the breaker (printed by ``serve-stats``)."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
                "opens": self._opens,
            }

    def state_gauge(self) -> float:
        """The numeric gauge value of the current state."""
        return BREAKER_STATE_GAUGE[self.state]

    # ------------------------------------------------------------------

    def _trip(self) -> None:
        # Caller holds the lock.
        self._state = BREAKER_OPEN
        self._opened_at = self._clock()
        self._probes_granted = 0
        self._opens += 1

    def _maybe_half_open(self) -> None:
        # Caller holds the lock.  Open → half-open is time-driven, so
        # every read-side entry point applies it lazily.
        if (self._state == BREAKER_OPEN and self._opened_at is not None
                and self._clock() - self._opened_at >= self.cooldown_s):
            self._state = BREAKER_HALF_OPEN
            self._probes_granted = 0
