"""Lightweight serving metrics: counters and latency histograms.

Everything is plain Python behind one lock — no external metrics
dependency — and a :meth:`MetricsRegistry.snapshot` is a plain,
JSON-serializable dict, printed verbatim by ``repro.cli serve-stats``
and asserted on by the serving tests.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter

__all__ = ["MetricsRegistry"]


#: Ring-buffer size for percentile estimation.  Bounded so a hot
#: histogram cannot grow without limit; 1024 recent samples give stable
#: p99 estimates for serving-sized traffic.
RESERVOIR_SIZE = 1024

#: The percentiles reported in every histogram summary.
PERCENTILES = (50, 95, 99)


class _Histogram:
    """Streaming summary of one latency series (seconds).

    count/total/min/max are exact over the whole series; percentiles
    are nearest-rank estimates over a sliding window of the most recent
    :data:`RESERVOIR_SIZE` observations.
    """

    __slots__ = ("count", "total", "min", "max", "_recent")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0
        self._recent: list[float] = []

    def observe(self, value: float) -> None:
        # min/max initialize from the first observation rather than
        # sentinel values: with a 0.0-seeded max, an all-negative series
        # (possible when a coarse clock ticks backwards across cores)
        # would report max_s == 0.0, a value never observed.
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        if len(self._recent) < RESERVOIR_SIZE:
            self._recent.append(value)
        else:
            self._recent[self.count % RESERVOIR_SIZE] = value
        self.count += 1
        self.total += value

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile ``q`` in [0, 100] over recent samples."""
        if not self._recent:
            return 0.0
        ordered = sorted(self._recent)
        rank = max(1, -(-q * len(ordered) // 100))  # ceil without floats
        return ordered[int(rank) - 1]

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0, "total_s": 0.0, "mean_s": 0.0,
                    "min_s": 0.0, "max_s": 0.0,
                    **{f"p{q}_s": 0.0 for q in PERCENTILES}}
        ordered = sorted(self._recent)
        summary = {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.total / self.count,
            "min_s": self.min,
            "max_s": self.max,
        }
        for q in PERCENTILES:
            rank = max(1, -(-q * len(ordered) // 100))
            summary[f"p{q}_s"] = ordered[int(rank) - 1]
        return summary


class MetricsRegistry:
    """Named counters and histograms with a consistent dict snapshot.

    Thread-safe: increments, observations, and snapshots all hold one
    internal lock, so ``snapshot()`` never sees a half-applied update.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, _Histogram] = {}
        self._gauges: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency sample into histogram ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram()
            histogram.observe(seconds)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to a point-in-time ``value``.

        Gauges hold last-write-wins levels (circuit-breaker state,
        cache occupancy) where counters would only ever grow.
        """
        with self._lock:
            self._gauges[name] = float(value)

    @contextmanager
    def time(self, name: str):
        """Context manager recording the block's wall time into ``name``."""
        start = perf_counter()
        try:
            yield
        finally:
            self.observe(name, perf_counter() - start)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of one counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Current value of one gauge (``default`` if never set)."""
        with self._lock:
            return self._gauges.get(name, default)

    def snapshot(self) -> dict:
        """Plain-dict view: counters, gauges, and histogram summaries."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {name: hist.summary() for name, hist
                               in sorted(self._histograms.items())},
            }

    def reset(self) -> None:
        """Zero every counter, gauge, and histogram."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
