"""Deterministic fault injection for the serving stack.

Every resilience policy in :mod:`repro.serving` — retries, deadlines,
the degradation ladder, the circuit breaker — is only trustworthy if
it is tested against *controlled* failures.  Real models fail rarely
and unreproducibly; this module wraps an :class:`~repro.core.nlidb.
NLIDB` so each pipeline stage can be made to fail or stall on a
precise, seeded schedule:

>>> plan = [FaultSpec(stage="annotate", kind="transient", count=2)]
>>> flaky = FaultyNLIDB(nlidb, FaultInjector(plan))
>>> service = TranslationService(flaky, policy=policy)

The first two ``annotate`` calls raise a retryable
:class:`InjectedFault`; everything after succeeds — exactly the shape
a retry policy must absorb.  ``kind="permanent"`` faults are
non-retryable (they exercise the ladder and the breaker), and
``kind="latency"`` sleeps without raising (it exercises deadlines).
Probabilistic plans use a private seeded :class:`random.Random`, so a
fault matrix is reproducible run-over-run and machine-over-machine.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ServingError

__all__ = ["FaultSpec", "InjectedFault", "FaultInjector", "FaultyNLIDB",
           "STAGES", "parse_fault_spec"]

#: The pipeline stages a fault can target, in execution order.
STAGES = ("annotate", "translate", "recover")

_KINDS = ("transient", "permanent", "latency")


class InjectedFault(ServingError):
    """A failure manufactured by the fault harness.

    ``retryable`` follows the spec's kind: transient faults are
    retryable, permanent ones are not.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One rule of a fault plan.

    Attributes
    ----------
    stage:
        Which pipeline stage to intercept (one of :data:`STAGES`).
    kind:
        ``"transient"`` (retryable error), ``"permanent"``
        (non-retryable error), or ``"latency"`` (sleep, no error).
    count:
        Fire only for the first ``count`` matching calls; ``None``
        fires forever.  Counting is per-spec, so two specs on the same
        stage burn down independently.
    probability:
        Fire with this seeded probability per matching call (applied
        after the ``count`` budget check); ``None`` means always.
    latency_s:
        Sleep duration for ``kind="latency"``.
    mode:
        Restrict faults to one annotation mode (``"full"`` or
        ``"context_free"``); ``None`` matches any.  Every stage of a
        pipeline run carries the run's mode, so this is how the ladder
        tests break the full rung while leaving the context-free rung
        healthy.
    message:
        Override the generated error message.
    """

    stage: str
    kind: str = "transient"
    count: int | None = None
    probability: float | None = None
    latency_s: float = 0.0
    mode: str | None = None
    message: str = ""

    def __post_init__(self) -> None:
        if self.stage not in STAGES:
            raise ValueError(f"unknown stage {self.stage!r}; "
                             f"expected one of {STAGES}")
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {_KINDS}")
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 or None")
        if self.probability is not None \
                and not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the CLI shorthand ``stage:kind[:count][:latency_s]``.

    Examples: ``annotate:transient:2``, ``translate:permanent``,
    ``annotate:latency:3:0.2`` (three calls stalled 200 ms each).
    """
    parts = text.split(":")
    if not 1 <= len(parts) <= 4:
        raise ValueError(f"cannot parse fault spec {text!r}")
    stage = parts[0]
    kind = parts[1] if len(parts) > 1 and parts[1] else "transient"
    count = int(parts[2]) if len(parts) > 2 and parts[2] else None
    latency = float(parts[3]) if len(parts) > 3 and parts[3] else 0.0
    return FaultSpec(stage=stage, kind=kind, count=count, latency_s=latency)


class FaultInjector:
    """Executes a fault plan; thread-safe and fully deterministic.

    One injector may back several wrappers; per-spec fire counts and
    the seeded RNG are shared so a plan means the same thing whether a
    service calls the model from one thread or eight.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep):
        self.specs = list(specs)
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._fired = [0] * len(self.specs)
        self._calls = {stage: 0 for stage in STAGES}

    def before(self, stage: str, mode: str | None = None) -> None:
        """Apply the plan to one stage entry: maybe sleep, maybe raise."""
        to_sleep = 0.0
        error: InjectedFault | None = None
        with self._lock:
            self._calls[stage] = self._calls.get(stage, 0) + 1
            for i, spec in enumerate(self.specs):
                if spec.stage != stage:
                    continue
                if spec.mode is not None and mode is not None \
                        and spec.mode != mode:
                    continue
                if spec.count is not None and self._fired[i] >= spec.count:
                    continue
                if spec.probability is not None \
                        and self._rng.random() >= spec.probability:
                    continue
                self._fired[i] += 1
                if spec.kind == "latency":
                    to_sleep += spec.latency_s
                    continue
                message = spec.message or (
                    f"injected {spec.kind} fault in {stage!r} "
                    f"(firing {self._fired[i]})")
                error = InjectedFault(message, stage=stage,
                                      retryable=spec.kind == "transient")
                break  # first raising spec wins; latency already applied
        if to_sleep:
            self._sleep(to_sleep)
        if error is not None:
            raise error

    def stats(self) -> dict:
        """Calls seen and faults fired, for assertions and reports."""
        with self._lock:
            return {
                "calls": dict(self._calls),
                "fired": [
                    {"stage": spec.stage, "kind": spec.kind,
                     "mode": spec.mode, "fired": fired}
                    for spec, fired in zip(self.specs, self._fired)
                ],
            }


class FaultyNLIDB:
    """An :class:`NLIDB` lookalike with faults injected before stages.

    Pipeline execution gets faults via :class:`~repro.pipeline.
    FaultMiddleware` (see :meth:`pipeline`); the three staged-inference
    methods are also intercepted for direct callers.  Every other
    attribute (``translator``, ``config``, ``header_tokens``,
    ``_fitted``, …) is delegated, so the wrapper is a drop-in argument
    to :class:`~repro.serving.service.TranslationService`.
    """

    #: Fault plans target individual stages, and the coalesced cohort
    #: path bypasses per-stage execution — so a faulty model must never
    #: coalesce.  A class attribute (not ``__getattr__`` delegation to
    #: the wrapped model's property) guarantees it.
    coalescible = False

    def __init__(self, nlidb, injector: FaultInjector):
        self._nlidb = nlidb
        self.injector = injector

    def pipeline(self, mode: str = "full", middleware=()):
        """The wrapped model's stage graph, plus fault middleware.

        The injector hook runs innermost — directly before each stage,
        inside the caller's deadline checks — which mirrors where the
        old per-method shims sat.
        """
        from repro.pipeline import FaultMiddleware
        return self._nlidb.pipeline(
            mode, middleware=tuple(middleware)
            + (FaultMiddleware(self.injector),))

    def annotate(self, question, table, mode: str = "full"):
        self.injector.before("annotate", mode=mode)
        return self._nlidb.annotate(question, table, mode=mode)

    def predict_annotated(self, annotation, beam_width=None,
                          header_tokens=None):
        self.injector.before("translate")
        return self._nlidb.predict_annotated(annotation, beam_width,
                                             header_tokens=header_tokens)

    def recover(self, source, predicted, annotation):
        self.injector.before("recover")
        return self._nlidb.recover(source, predicted, annotation)

    def __getattr__(self, name):
        return getattr(self._nlidb, name)
