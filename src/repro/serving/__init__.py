"""Serving layer: batched, cached, metered, *resilient* NLIDB translation.

The paper's pipeline is a per-question function; this package turns a
trained :class:`~repro.core.nlidb.NLIDB` into a *service* — the form
factor the NLIDB literature (NaLIR, DBPal) deploys — with a
cross-request micro-batching scheduler behind one asynchronous
``submit()`` entry point (concurrent requests coalesce into stage-
level lockstep kernel batches), a bounded LRU translation cache keyed
on table content, within-batch deduplication, a metrics registry, and
a resilience stack (per-request deadlines, bounded retries, a
context-free degradation ladder, and a circuit breaker).  The public
response shape is the :class:`~repro.serving.results.
TranslationResult` envelope; see
:class:`~repro.serving.service.TranslationService` and
:class:`~repro.serving.scheduler.MicroBatchScheduler`.

:mod:`repro.serving.faults` provides a deterministic fault-injection
harness (:class:`FaultyNLIDB`) so every policy is testable without a
flaky model.

:mod:`repro.serving.cluster` scales the single service horizontally:
:class:`~repro.serving.cluster.ClusterService` fronts N replicas with
admission control (bounded in-flight queue, ``Overloaded`` rejection),
consistent-hash routing on the table fingerprint
(:class:`~repro.serving.router.RendezvousRouter`), breaker-derived
per-replica health with failover, and zero-downtime blue/green model
swaps with schema-cache warming.
"""

from repro.serving.cluster import ClusterPolicy, ClusterService, Replica

from repro.serving.faults import (
    FaultInjector,
    FaultSpec,
    FaultyNLIDB,
    InjectedFault,
    parse_fault_spec,
)
from repro.serving.metrics import MetricsRegistry
from repro.serving.requests import (
    TranslationRequest,
    as_request,
    normalize_question,
)
from repro.serving.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    Deadline,
    ResiliencePolicy,
)
from repro.serving.results import (
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    TranslationResult,
    describe_error,
)
from repro.serving.router import RandomRouter, RendezvousRouter
from repro.serving.scheduler import (
    MicroBatchScheduler,
    QueueClosed,
    SchedulerPolicy,
)
from repro.serving.service import DEFAULT_CACHE_SIZE, TranslationService

# Re-exported for convenience: the cache key's table component and the
# wire-envelope version every to_dict() stamps.
from repro.pipeline import WIRE_SCHEMA_VERSION
from repro.sqlengine import table_fingerprint

__all__ = [
    "TranslationService", "DEFAULT_CACHE_SIZE",
    "TranslationRequest", "as_request", "normalize_question",
    "TranslationResult", "STATUS_OK", "STATUS_DEGRADED", "STATUS_FAILED",
    "describe_error",
    "ResiliencePolicy", "Deadline", "CircuitBreaker",
    "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN",
    "FaultSpec", "FaultInjector", "FaultyNLIDB", "InjectedFault",
    "parse_fault_spec",
    "SchedulerPolicy", "MicroBatchScheduler", "QueueClosed",
    "ClusterService", "ClusterPolicy", "Replica",
    "RendezvousRouter", "RandomRouter",
    "MetricsRegistry", "table_fingerprint", "WIRE_SCHEMA_VERSION",
]
