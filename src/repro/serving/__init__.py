"""Serving layer: batched, cached, metered NLIDB translation.

The paper's pipeline is a per-question function; this package turns a
trained :class:`~repro.core.nlidb.NLIDB` into a *service* — the form
factor the NLIDB literature (NaLIR, DBPal) deploys — with a bounded
LRU translation cache keyed on table content, same-table request
batching, and a metrics registry.  See
:class:`~repro.serving.service.TranslationService`.
"""

from repro.serving.metrics import MetricsRegistry
from repro.serving.requests import (
    TranslationRequest,
    as_request,
    normalize_question,
)
from repro.serving.service import DEFAULT_CACHE_SIZE, TranslationService

# Re-exported for convenience: the cache key's table component.
from repro.sqlengine import table_fingerprint

__all__ = [
    "TranslationService", "DEFAULT_CACHE_SIZE",
    "TranslationRequest", "as_request", "normalize_question",
    "MetricsRegistry", "table_fingerprint",
]
