"""The sharded serving cluster: front door, worker replicas, swaps.

A single :class:`~repro.serving.service.TranslationService` is one
queue, one translation cache, one schema cache.  The ROADMAP's
"millions of users" rung needs a *fleet* of them behind one door —
this module turns N fitted NLIDBs (or one shared model) into that
fleet without touching model semantics:

* :class:`ClusterService` — the **front door**.  Same surface as the
  single service (``submit()`` → ``Future[TranslationResult]``,
  ``translate`` / ``translate_batch`` wrappers) plus **admission
  control**: a bounded global in-flight queue; requests beyond
  ``ClusterPolicy.max_in_flight`` are refused instantly with a
  structured :class:`~repro.errors.Overloaded` envelope instead of
  growing an unbounded backlog (queue-depth backpressure).
* a **consistent-hash router**
  (:class:`~repro.serving.router.RendezvousRouter`): requests shard on
  the table-content fingerprint, so each replica's
  :class:`~repro.core.schema.SchemaEncoding` and translation caches
  stay hot for its shard, and membership changes move a minimal key
  fraction.
* **worker replicas** (:class:`Replica`) — each owns a full
  :class:`TranslationService` (NLIDB + micro-batch scheduler +
  resilience ladder).  Per-replica health is derived from the
  replica's circuit breaker; a request whose owner is open or
  draining **fails over** along the rendezvous ranking — landing on
  the replica that would inherit the keys anyway.
* **zero-downtime blue/green swap** (:meth:`ClusterService.swap`):
  build a standby replica set around a new model (e.g. loaded via
  :func:`~repro.core.persistence.load_nlidb`), warm each standby
  replica's schema cache from the live shard's hottest fingerprints,
  then atomically switch the active set and drain the old one.
  In-flight requests complete on the replicas that admitted them;
  requests racing the switch re-route to the new set — nothing is
  dropped (pinned by the swap differential test).

Every served envelope is stamped with its routing identity (wire
schema v3): ``TranslationResult.replica_id`` / ``shard_key`` plus a
``route`` stage record prepended to the trace carrying the replica,
shard key, generation color, and whether the request failed over.

Concurrency note: the substrate's grad-mode flag is thread-local, so
grad state no longer forces process-wide serialization — what does is
the mutable inference state replicas share when given the same model
object: the per-model inference arenas and generation-cached float32
weight snapshots.  All replica services therefore share one model
lock.  What the cluster scales is everything around the kernels:
per-shard cache hotness, queue isolation, failover, and model
rollover; true CPU parallelism would come from running replicas (each
with its own model instance, hence its own arenas) in separate
processes behind the same router, which this layer's shard-key
contract is designed to allow.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import asdict, dataclass

from repro.core.nlidb import NLIDB
from repro.errors import ModelError, Overloaded, ReproError
from repro.pipeline import WIRE_SCHEMA_VERSION, StageRecord
from repro.serving.metrics import MetricsRegistry
from repro.serving.requests import TranslationRequest, as_request
from repro.serving.resilience import BREAKER_OPEN
from repro.serving.results import TranslationResult
from repro.serving.router import RendezvousRouter
from repro.serving.scheduler import QueueClosed
from repro.serving.service import DEFAULT_CACHE_SIZE, TranslationService
from repro.sqlengine import Table, table_fingerprint

__all__ = ["ClusterPolicy", "Replica", "ClusterService"]

#: Blue/green generation labels; ``generation % 2`` indexes this.
_COLORS = ("blue", "green")


@dataclass(frozen=True)
class ClusterPolicy:
    """The cluster front door's knobs, one frozen bundle.

    Attributes
    ----------
    max_in_flight:
        Global bound on admitted-but-unresolved requests across every
        replica queue.  Admission beyond it is refused with
        :class:`~repro.errors.Overloaded` — backpressure by rejection,
        never by unbounded queueing.
    failover:
        Whether requests re-route along the rendezvous ranking when
        their owner replica is unhealthy (breaker open or draining).
    warm_top_k:
        How many of a live shard's hottest fingerprints are warmed
        into the standby replica's schema cache before a swap switch.
    tracked_tables:
        Per-replica bound on the hot-fingerprint tracker backing
        warming (an LRU of ``(fingerprint, table, count)``).
    """

    max_in_flight: int = 64
    failover: bool = True
    warm_top_k: int = 8
    tracked_tables: int = 64

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.warm_top_k < 0:
            raise ValueError("warm_top_k must be >= 0")
        if self.tracked_tables < 1:
            raise ValueError("tracked_tables must be >= 1")


class Replica:
    """One worker: a :class:`TranslationService` plus shard-local state.

    ``replica_id`` is the *shard* identity ("r0", "r1", …) — stable
    across blue/green swaps so the router's key → shard assignment
    never reshuffles on rollover.  The hot-table tracker records which
    fingerprints this shard actually serves; it is what a swap reads
    to warm the standby generation's schema cache.
    """

    __slots__ = ("replica_id", "service", "draining", "_hot", "_hot_lock",
                 "_tracked")

    def __init__(self, replica_id: str, service: TranslationService,
                 tracked_tables: int = 64):
        self.replica_id = replica_id
        self.service = service
        self.draining = False
        self._tracked = tracked_tables
        # fingerprint -> [request_count, table]; LRU-bounded.
        self._hot: OrderedDict[str, list] = OrderedDict()
        self._hot_lock = threading.Lock()

    def healthy(self) -> bool:
        """Routable right now: not draining, breaker not open.

        Half-open counts as healthy — the breaker's own probe
        admission decides how much traffic the full path sees, and the
        degraded ladder still answers behind it.
        """
        return not self.draining \
            and self.service.breaker.state != BREAKER_OPEN

    def observe(self, shard_key: str, table: Table) -> None:
        """Count one routed request against the shard's hot tracker."""
        with self._hot_lock:
            entry = self._hot.get(shard_key)
            if entry is None:
                self._hot[shard_key] = [1, table]
                if len(self._hot) > self._tracked:
                    self._hot.popitem(last=False)
            else:
                entry[0] += 1
                self._hot.move_to_end(shard_key)

    def hottest(self, k: int) -> list[tuple[str, Table]]:
        """The ``k`` most-requested ``(fingerprint, table)`` pairs."""
        with self._hot_lock:
            ranked = sorted(self._hot.items(), key=lambda kv: -kv[1][0])
        return [(fp, entry[1]) for fp, entry in ranked[:k]]

    def stats(self) -> dict:
        """Health summary plus the wrapped service's full snapshot."""
        return {
            "healthy": self.healthy(),
            "draining": self.draining,
            "hot_tables": len(self._hot),
            "service": self.service.stats(),
        }


class ClusterService:
    """N replicas, one ``submit()``: the horizontally sharded front door.

    Parameters
    ----------
    models:
        A single *fitted* :class:`NLIDB` shared by every replica, or a
        sequence of fitted NLIDBs, one per replica (separate models
        give each shard its own schema/translation caches — the
        configuration the cluster benchmark measures).
    n_replicas:
        Replica count when ``models`` is a single shared model
        (ignored — and validated — when a sequence is passed).
    policy:
        The :class:`ClusterPolicy` (admission bound, failover, warm
        settings).
    router_factory:
        ``callable(ids) -> router``; defaults to
        :class:`~repro.serving.router.RendezvousRouter`.  The
        benchmark passes a seeded
        :class:`~repro.serving.router.RandomRouter` as the
        no-affinity control.
    cache_size / resilience / scheduler_policy / metrics:
        Forwarded to each replica's :class:`TranslationService`
        (``metrics`` is the *cluster's* registry; every replica owns
        its own service registry so per-shard cache hit rates stay
        separable).
    """

    def __init__(self, models, n_replicas: int | None = None, *,
                 policy: ClusterPolicy | None = None,
                 router_factory=None,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 resilience=None, scheduler_policy=None,
                 metrics: MetricsRegistry | None = None):
        self.policy = policy or ClusterPolicy()
        self.metrics = metrics or MetricsRegistry()
        self._resilience = resilience
        self._scheduler_policy = scheduler_policy
        self._cache_size = cache_size
        # One shared model lock across every replica (and every future
        # standby generation): replicas handed the same model object
        # share its inference arenas and weight snapshots, so inference
        # must never interleave.
        self._model_lock = threading.Lock()
        models = self._coerce_models(models, n_replicas)
        ids = [f"r{i}" for i in range(len(models))]
        self._route_lock = threading.Lock()
        self._admission_lock = threading.Lock()
        self._in_flight = 0
        self._generation = 0
        self._replicas: list[Replica] = [
            self._build_replica(rid, model)
            for rid, model in zip(ids, models)]
        factory = router_factory or RendezvousRouter
        self.router = factory(ids)
        self._closed = False

    @staticmethod
    def _coerce_models(models, n_replicas: int | None) -> list[NLIDB]:
        if isinstance(models, (list, tuple)):
            fleet = list(models)
            if n_replicas is not None and n_replicas != len(fleet):
                raise ValueError(
                    f"n_replicas={n_replicas} but {len(fleet)} models given")
        else:
            fleet = [models] * (n_replicas or 1)
        if not fleet:
            raise ValueError("cluster needs at least one model")
        for model in fleet:
            if not getattr(model, "_fitted", False):
                raise ModelError("ClusterService needs fitted NLIDBs")
        return fleet

    def _build_replica(self, replica_id: str, model: NLIDB) -> Replica:
        service = TranslationService(
            model, cache_size=self._cache_size,
            policy=self._resilience,
            scheduler_policy=self._scheduler_policy,
            model_lock=self._model_lock)
        return Replica(replica_id, service,
                       tracked_tables=self.policy.tracked_tables)

    # ------------------------------------------------------------------
    # Public API (mirrors TranslationService)
    # ------------------------------------------------------------------

    @property
    def color(self) -> str:
        """The live generation's blue/green label."""
        return _COLORS[self._generation % 2]

    @property
    def replicas(self) -> list[Replica]:
        """The live replica set (snapshot; membership may change)."""
        with self._route_lock:
            return list(self._replicas)

    def submit(self, request, table: Table | None = None,
               beam_width: int | None = None,
               ) -> "Future[TranslationResult]":
        """Admit, route, and enqueue one request.

        Accepts the same forms as
        :meth:`TranslationService.submit`; raises
        :class:`~repro.errors.ReproError` only for malformed requests.
        An over-capacity request resolves *immediately* with a
        ``"failed"`` envelope whose error is
        :class:`~repro.errors.Overloaded` — the caller's future never
        blocks behind a queue the cluster has no intention of serving.
        """
        if table is not None:
            request = as_request((request, table, beam_width))
        else:
            request = as_request(request)
        return self._submit_request(request)

    def translate(self, question, table: Table,
                  beam_width: int | None = None) -> TranslationResult:
        """``submit(...).result()`` — one synchronous request."""
        return self.submit(question, table, beam_width).result()

    def translate_batch(self, requests) -> list[TranslationResult]:
        """Route many requests; results come back in input order.

        Malformed items yield ``"failed"`` envelopes at their index,
        exactly like the single service.
        """
        items = list(requests)
        futures: list[Future | None] = []
        results: list[TranslationResult | None] = [None] * len(items)
        for i, item in enumerate(items):
            try:
                request = as_request(item)
            except ReproError as exc:
                self.metrics.increment("bad_requests")
                results[i] = TranslationResult.from_failure(exc)
                futures.append(None)
                continue
            futures.append(self._submit_request(request))
        for i, future in enumerate(futures):
            if future is not None:
                results[i] = future.result()
        return results

    def fingerprint(self, table: Table) -> str:
        """The shard key of a table (content fingerprint)."""
        return table_fingerprint(table)

    def close(self) -> None:
        """Stop admitting; every replica drains its in-flight work."""
        self._closed = True
        for replica in self.replicas:
            replica.service.close()

    # ------------------------------------------------------------------
    # Blue/green model swap
    # ------------------------------------------------------------------

    def swap(self, models, warm: bool = True) -> dict:
        """Zero-downtime rollover to a new model generation.

        ``models`` is the new fitted NLIDB (shared) or one per
        replica, matching the live count.  Sequence: build the standby
        set → warm each standby replica's schema cache from the
        corresponding live shard's hottest fingerprints (the live set
        keeps serving throughout) → atomically switch the active set →
        drain the old one.  Requests racing the switch re-route to the
        new set on :class:`~repro.serving.scheduler.QueueClosed`, so
        no request is ever lost.

        Returns a summary dict (generation, color, replicas, warmed
        fingerprint count).
        """
        live = self.replicas
        if isinstance(models, (list, tuple)) and len(models) != len(live):
            raise ValueError(
                f"swap needs {len(live)} models, got {len(models)}")
        fleet = self._coerce_models(models, len(live))
        standby = [self._build_replica(replica.replica_id, model)
                   for replica, model in zip(live, fleet)]
        warmed = 0
        if warm and self.policy.warm_top_k:
            for old, fresh in zip(live, standby):
                warmed += self._warm_replica(
                    fresh, old.hottest(self.policy.warm_top_k))
        with self._route_lock:
            drained = self._replicas
            self._replicas = standby
            self._generation += 1
        for replica in drained:
            replica.draining = True
            replica.service.close()  # in-flight work still completes
        self.metrics.increment("swaps")
        summary = {"generation": self._generation, "color": self.color,
                   "replicas": [r.replica_id for r in standby],
                   "warmed_fingerprints": warmed,
                   "drained": len(drained)}
        self.metrics.increment("warmed_fingerprints", warmed)
        return summary

    def _warm_replica(self, replica: Replica,
                      hot: list[tuple[str, Table]]) -> int:
        """Pre-build schema encodings the standby shard will need.

        Warms under the shared model lock (encoding runs the column
        RNN), competing fairly with live traffic — warming is
        background work, not a stop-the-world phase.
        """
        annotator = getattr(replica.service.nlidb, "annotator", None)
        classifier = getattr(annotator, "column_classifier", None)
        if annotator is None or not getattr(classifier, "_trained", False):
            return 0
        warmed = 0
        for shard_key, table in hot:
            try:
                with self._model_lock:
                    annotator.schema_encoding(table)
                replica.observe(shard_key, table)
                warmed += 1
            except ReproError:
                continue
        return warmed

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Cluster counters, router membership, per-replica snapshots."""
        with self._admission_lock:
            in_flight = self._in_flight
        self.metrics.set_gauge("in_flight", float(in_flight))
        self.metrics.set_gauge("replicas", float(len(self.replicas)))
        snapshot = self.metrics.snapshot()
        snapshot["schema_version"] = WIRE_SCHEMA_VERSION
        snapshot["generation"] = self._generation
        snapshot["color"] = self.color
        snapshot["policy"] = asdict(self.policy)
        snapshot["router"] = self.router.snapshot()
        snapshot["replicas"] = {replica.replica_id: replica.stats()
                                for replica in self.replicas}
        return snapshot

    # ------------------------------------------------------------------
    # Admission + routing (caller thread)
    # ------------------------------------------------------------------

    def _submit_request(self, request: TranslationRequest,
                        ) -> "Future[TranslationResult]":
        outer: Future = Future()
        shard_key = table_fingerprint(request.table)
        self.metrics.increment("requests")
        if self._closed:
            raise QueueClosed("cluster is closed")
        with self._admission_lock:
            if self._in_flight >= self.policy.max_in_flight:
                admitted = False
            else:
                admitted = True
                self._in_flight += 1
        if not admitted:
            self.metrics.increment("rejections")
            outer.set_result(self._reject(shard_key))
            return outer
        try:
            self._dispatch(outer, request, shard_key)
        except BaseException:
            with self._admission_lock:
                self._in_flight -= 1
            raise
        return outer

    def _reject(self, shard_key: str) -> TranslationResult:
        error = Overloaded(
            f"cluster at capacity ({self.policy.max_in_flight} in flight);"
            " retry with backoff")
        result = TranslationResult.from_failure(error)
        result.shard_key = shard_key
        result.trace = (self._route_record(shard_key, None, False,
                                           rejected=True),)
        return result

    def _dispatch(self, outer: Future, request: TranslationRequest,
                  shard_key: str) -> None:
        """Route to the first healthy ranked replica; retry on races.

        A replica may close between the routing decision and the
        enqueue (blue/green switch) — :class:`QueueClosed` re-routes
        against the post-switch active set, which is exactly where the
        request belongs.
        """
        attempted: set[str] = set()
        while True:
            replica, failover = self._route(shard_key, attempted)
            replica.observe(shard_key, request.table)
            self.metrics.increment(f"routed_{replica.replica_id}")
            if failover:
                self.metrics.increment("failovers")
            try:
                inner = replica.service.submit(request)
            except QueueClosed:
                attempted.add(replica.replica_id)
                if all(r.replica_id in attempted or r.draining
                       for r in self.replicas):
                    attempted = set()  # active set changed; start over
                self.metrics.increment("reroutes")
                continue
            # Built *now*: the record must describe the generation that
            # routed the request, not whichever is live when the future
            # resolves (a swap may land in between).
            record = self._route_record(
                shard_key, replica.replica_id, failover)
            inner.add_done_callback(
                lambda f, r=replica, rec=record:
                self._resolve(outer, f, r, shard_key, rec))
            return

    def _route(self, shard_key: str,
               attempted: set[str]) -> tuple[Replica, bool]:
        """The owner replica, or the best healthy stand-in."""
        with self._route_lock:
            by_id = {r.replica_id: r for r in self._replicas}
        ranked = [rid for rid in self.router.ranked(shard_key)
                  if rid in by_id]
        candidates = [rid for rid in ranked if rid not in attempted]
        if not candidates:
            candidates = ranked
        owner = candidates[0]
        if not self.policy.failover:
            return by_id[owner], False
        for rid in candidates:
            if by_id[rid].healthy():
                return by_id[rid], rid != ranked[0]
        # Nobody healthy: the owner's degradation ladder still answers.
        return by_id[owner], owner != ranked[0]

    # ------------------------------------------------------------------
    # Resolution (replica worker thread, or inline on cache hits)
    # ------------------------------------------------------------------

    def _route_record(self, shard_key: str, replica_id: str | None,
                      failover: bool, rejected: bool = False) -> StageRecord:
        record = StageRecord(
            stage="route",
            outcome="error" if rejected else "ok",
            detail={"shard_key": shard_key, "replica_id": replica_id,
                    "failover": failover, "generation": self._generation,
                    "color": self.color})
        if rejected:
            record.error = "Overloaded"
            record.message = "admission refused: cluster at capacity"
        return record

    def _resolve(self, outer: Future, inner: Future, replica: Replica,
                 shard_key: str, record: StageRecord) -> None:
        with self._admission_lock:
            self._in_flight -= 1
        try:
            exc = inner.exception()
            if exc is not None:
                outer.set_exception(exc)
                return
            result: TranslationResult = inner.result()
            # The envelope is per-request (only the Translation inside
            # is cache-shared), so stamping it is safe.
            result.replica_id = replica.replica_id
            result.shard_key = shard_key
            result.trace = (record, *tuple(result.trace))
            self.metrics.increment(f"served_{result.status}")
            outer.set_result(result)
        except BaseException as fatal:  # noqa: BLE001 — must resolve
            if not outer.done():
                outer.set_exception(fatal)
