"""Request/response shapes for the serving layer.

A :class:`TranslationRequest` names one unit of work — a question
against a table at some beam width.  ``translate_batch`` also accepts
plain ``(question, table)`` / ``(question, table, beam_width)`` tuples;
:func:`as_request` normalizes either form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.sqlengine import Table, table_fingerprint
from repro.text import tokenize

__all__ = ["TranslationRequest", "as_request", "normalize_question"]


def normalize_question(question: str | list[str] | tuple[str, ...],
                       ) -> tuple[str, ...]:
    """Canonical token tuple of a question (cache-key form).

    A raw string and its token list normalize identically, so
    ``service.translate("max speed ?", t)`` hits the entry warmed by
    ``service.translate(["max", "speed", "?"], t)`` and vice versa.
    """
    if isinstance(question, str):
        return tuple(tokenize(question))
    return tuple(question)


@dataclass(frozen=True)
class TranslationRequest:
    """One serving request.

    ``question`` is normalized to its canonical token tuple on
    construction (a raw string or token list is accepted), so a request
    is always hashable, immutable cache-key material and two requests
    for the same question compare equal regardless of input form.

    ``beam_width=None`` means the model's configured default; requests
    differing only in an *explicit vs defaulted* equal beam width still
    share a cache entry (the service resolves the width before keying).
    """

    question: tuple[str, ...]
    table: Table
    beam_width: int | None = None
    # Lazily memoized content fingerprint backing __hash__.
    _fingerprint: str | None = field(default=None, init=False, repr=False,
                                     compare=False)

    def __post_init__(self) -> None:
        # A frozen dataclass holding a raw list would be unhashable and
        # silently mutable through the list; normalize in place.
        object.__setattr__(self, "question",
                           normalize_question(self.question))

    def __hash__(self) -> int:
        # Table is a mutable dataclass (no __hash__); hash its *content*
        # fingerprint instead.  Equal tables have equal fingerprints, so
        # the eq/hash contract holds — but do not mutate a table while
        # using requests over it as dict/set keys.
        fingerprint = self._fingerprint
        if fingerprint is None:
            fingerprint = table_fingerprint(self.table)
            object.__setattr__(self, "_fingerprint", fingerprint)
        return hash((self.question, fingerprint, self.beam_width))


def as_request(item) -> TranslationRequest:
    """Coerce a request-like item into a :class:`TranslationRequest`."""
    if isinstance(item, TranslationRequest):
        return item
    if isinstance(item, (tuple, list)) and len(item) in (2, 3):
        question, table = item[0], item[1]
        beam_width = item[2] if len(item) == 3 else None
        if isinstance(table, Table):
            return TranslationRequest(question=question, table=table,
                                      beam_width=beam_width)
    raise ReproError(
        f"cannot interpret {item!r} as a translation request; expected "
        "TranslationRequest or (question, table[, beam_width])")
