"""Request/response shapes for the serving layer.

A :class:`TranslationRequest` names one unit of work — a question
against a table at some beam width.  ``translate_batch`` also accepts
plain ``(question, table)`` / ``(question, table, beam_width)`` tuples;
:func:`as_request` normalizes either form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.sqlengine import Table
from repro.text import tokenize

__all__ = ["TranslationRequest", "as_request", "normalize_question"]


def normalize_question(question: str | list[str] | tuple[str, ...],
                       ) -> tuple[str, ...]:
    """Canonical token tuple of a question (cache-key form).

    A raw string and its token list normalize identically, so
    ``service.translate("max speed ?", t)`` hits the entry warmed by
    ``service.translate(["max", "speed", "?"], t)`` and vice versa.
    """
    if isinstance(question, str):
        return tuple(tokenize(question))
    return tuple(question)


@dataclass(frozen=True)
class TranslationRequest:
    """One serving request.

    ``beam_width=None`` means the model's configured default; requests
    differing only in an *explicit vs defaulted* equal beam width still
    share a cache entry (the service resolves the width before keying).
    """

    question: str | tuple[str, ...]
    table: Table
    beam_width: int | None = None


def as_request(item) -> TranslationRequest:
    """Coerce a request-like item into a :class:`TranslationRequest`."""
    if isinstance(item, TranslationRequest):
        return item
    if isinstance(item, (tuple, list)) and len(item) in (2, 3):
        question, table = item[0], item[1]
        beam_width = item[2] if len(item) == 3 else None
        if isinstance(table, Table):
            return TranslationRequest(question=question, table=table,
                                      beam_width=beam_width)
    raise ReproError(
        f"cannot interpret {item!r} as a translation request; expected "
        "TranslationRequest or (question, table[, beam_width])")
