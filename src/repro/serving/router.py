"""Consistent-hash request routing for the serving cluster.

The transfer-learnability framing of the paper means one deployment
serves *many* tables (tenants); what makes a replica fast on a table is
warm state keyed on that table's content fingerprint — the annotator's
:class:`~repro.core.schema.SchemaEncoding` cache and the service's
translation LRU.  Routing every request for a fingerprint to the same
replica keeps those caches hot per shard instead of spraying cold
misses across the fleet.

:class:`RendezvousRouter` implements highest-random-weight (HRW /
rendezvous) hashing: each ``(shard_key, replica_id)`` pair gets a
stable 64-bit score from a keyed hash, and the replica with the
highest score owns the key.  Rendezvous hashing has the two properties
the cluster needs and unit tests pin:

* **balance** — scores are uniform, so over many fingerprints every
  replica owns ~1/N of the keyspace (no virtual-node tuning);
* **minimal movement** — adding a replica only moves the keys the new
  replica now wins (an expected 1/(N+1) fraction); removing one only
  moves the keys it owned.  Everything else keeps its warm replica.

:meth:`RendezvousRouter.ranked` returns *all* replicas in descending
score order — the cluster's failover order: when the owner's breaker
is open or it is draining during a blue/green swap, the request falls
to the next-ranked replica, which is also the replica that would own
the key if the owner left, so failover traffic lands where the keys
would migrate anyway.

:class:`RandomRouter` is the seeded control arm for the cluster
benchmark: same interface, uniformly random placement, no key
affinity.  ``BENCH_cluster.json``'s sharded-vs-random schema-cache
comparison is the measured value of consistent hashing.
"""

from __future__ import annotations

import hashlib
import threading

import numpy as np

__all__ = ["RendezvousRouter", "RandomRouter"]

_SEPARATOR = b"\x00"


def _score(shard_key: str, replica_id: str) -> int:
    """Stable 64-bit HRW score of one (key, replica) pair.

    blake2b is keyed per pair via length-delimited fields (so
    ``("ab", "c")`` and ``("a", "bc")`` cannot collide) and is stable
    across processes, unlike the salted built-in ``hash``.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in (shard_key, replica_id):
        data = part.encode("utf-8")
        digest.update(str(len(data)).encode("ascii"))
        digest.update(_SEPARATOR)
        digest.update(data)
    return int.from_bytes(digest.digest(), "big")


class RendezvousRouter:
    """Highest-random-weight router over a mutable replica set.

    Thread-safe: membership changes and routing reads share one lock.
    Replica ids are free-form non-empty strings; the cluster uses
    stable shard ids (``"r0"``, ``"r1"``, …) that survive blue/green
    swaps, so a swap never reshuffles the key → shard assignment.
    """

    def __init__(self, replica_ids):
        ids = list(replica_ids)
        if not ids:
            raise ValueError("router needs at least one replica id")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate replica ids: {ids!r}")
        if any(not rid for rid in ids):
            raise ValueError("replica ids must be non-empty strings")
        self._ids = ids
        self._lock = threading.Lock()

    @property
    def replica_ids(self) -> list[str]:
        with self._lock:
            return list(self._ids)

    def add(self, replica_id: str) -> None:
        """Join one replica; only keys it now wins move to it."""
        if not replica_id:
            raise ValueError("replica id must be a non-empty string")
        with self._lock:
            if replica_id in self._ids:
                raise ValueError(f"replica {replica_id!r} already routed")
            self._ids.append(replica_id)

    def remove(self, replica_id: str) -> None:
        """Leave one replica; only the keys it owned move elsewhere."""
        with self._lock:
            if replica_id not in self._ids:
                raise ValueError(f"replica {replica_id!r} not routed")
            if len(self._ids) == 1:
                raise ValueError("cannot remove the last replica")
            self._ids.remove(replica_id)

    def owner(self, shard_key: str) -> str:
        """The replica owning ``shard_key`` (highest HRW score)."""
        with self._lock:
            return max(self._ids, key=lambda rid: _score(shard_key, rid))

    def ranked(self, shard_key: str) -> list[str]:
        """Every replica in descending score order (failover order)."""
        with self._lock:
            return sorted(self._ids, reverse=True,
                          key=lambda rid: _score(shard_key, rid))

    def snapshot(self) -> dict:
        """JSON-ready router description for ``stats()`` blocks."""
        with self._lock:
            return {"kind": "rendezvous", "replicas": list(self._ids)}


class RandomRouter:
    """Seeded uniform placement: the benchmark's no-affinity control.

    The interface matches :class:`RendezvousRouter`; ``ranked``
    returns a fresh random permutation per call, so neither the owner
    choice nor the failover order carries any key affinity.  Fully
    deterministic for a given seed and call sequence.
    """

    def __init__(self, replica_ids, seed: int = 0):
        ids = list(replica_ids)
        if not ids:
            raise ValueError("router needs at least one replica id")
        self._ids = ids
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()

    @property
    def replica_ids(self) -> list[str]:
        with self._lock:
            return list(self._ids)

    def add(self, replica_id: str) -> None:
        with self._lock:
            self._ids.append(replica_id)

    def remove(self, replica_id: str) -> None:
        with self._lock:
            self._ids.remove(replica_id)

    def owner(self, shard_key: str) -> str:
        return self.ranked(shard_key)[0]

    def ranked(self, shard_key: str) -> list[str]:
        with self._lock:
            order = self._rng.permutation(len(self._ids))
            return [self._ids[int(i)] for i in order]

    def snapshot(self) -> dict:
        with self._lock:
            return {"kind": "random", "replicas": list(self._ids)}
