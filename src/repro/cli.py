"""Command-line interface: generate data, train, evaluate, query, serve.

The paper's related work highlights NaLIR/NaLIX as proof that research
NLIDBs can be packaged as interactive systems; this CLI plays that role
for the reproduction::

    python -m repro.cli generate --out data.jsonl --size 200
    python -m repro.cli train --data data.jsonl --model-dir model/
    python -m repro.cli evaluate --data dev.jsonl --model-dir model/
    python -m repro.cli query --model-dir model/ --data dev.jsonl \
        --question "which film has director jerzy antczak ?"
    python -m repro.cli repl --model-dir model/ --data dev.jsonl
    python -m repro.cli serve-stats --model-dir model/ --data dev.jsonl
    python -m repro.cli serve-stats --model-dir model/ --data dev.jsonl \
        --replicas 4 --swap
    python -m repro.cli eval-robustness --out BENCH_robustness.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core import NLIDB, NLIDBConfig, evaluate, evaluate_by_sketch
from repro.core.persistence import load_nlidb, save_nlidb
from repro.core.seq2seq.model import Seq2SeqConfig
from repro.data import (
    generate_heldout,
    generate_role_typed,
    generate_wikisql_style,
    load_jsonl,
    save_jsonl,
)
from repro.errors import ReproError
from repro.serving import (
    ClusterPolicy,
    ClusterService,
    FaultInjector,
    FaultyNLIDB,
    ResiliencePolicy,
    TranslationService,
    parse_fault_spec,
)
from repro.sqlengine import execute
from repro.text import WordEmbeddings

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Transfer-learnable NLIDB (ICDE 2020)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a WikiSQL-style dataset")
    gen.add_argument("--out", required=True)
    gen.add_argument("--size", type=int, default=200)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--split", choices=["train", "dev", "test"],
                     default="train")
    gen.add_argument("--role-typed", action="store_true",
                     help="use the role-matched intent generators "
                          "(extended SQL sketch: ORDER BY/LIMIT, "
                          "GROUP BY/HAVING, OR, NOT) instead of the "
                          "legacy per-domain templates")

    train = sub.add_parser("train", help="train an NLIDB")
    train.add_argument("--data", required=True)
    train.add_argument("--model-dir", required=True)
    train.add_argument("--hidden", type=int, default=48)
    train.add_argument("--classifier-epochs", type=int, default=3)
    train.add_argument("--seq2seq-epochs", type=int, default=10)
    train.add_argument("--embedding-dim", type=int, default=32)
    train.add_argument("--extended", action="store_true",
                       help="enable the extended SQL sketch in the "
                            "translator's output grammar")
    train.add_argument("--quiet", action="store_true")

    ev = sub.add_parser("evaluate", help="score a model on a dataset")
    ev.add_argument("--data", required=True)
    ev.add_argument("--model-dir", required=True)
    ev.add_argument("--by-sketch", action="store_true",
                    help="additionally break accuracies out per sketch "
                         "family (filter/count/.../topn/group_agg)")

    query = sub.add_parser("query", help="translate one question")
    query.add_argument("--model-dir", required=True)
    query.add_argument("--data", required=True,
                       help="jsonl file whose first record's table is queried")
    query.add_argument("--question", required=True)
    query.add_argument("--execute", action="store_true")

    repl = sub.add_parser("repl", help="interactive question loop")
    repl.add_argument("--model-dir", required=True)
    repl.add_argument("--data", required=True)

    serve = sub.add_parser(
        "serve-stats",
        help="replay a dataset through the serving layer, print metrics")
    serve.add_argument("--model-dir", required=True)
    serve.add_argument("--data", required=True)
    serve.add_argument("--limit", type=int, default=50,
                       help="number of examples replayed per pass")
    serve.add_argument("--passes", type=int, default=2,
                       help="replay count; passes beyond the first hit "
                            "the warm translation cache")
    serve.add_argument("--batched", action="store_true",
                       help="serve each pass through translate_batch()")
    serve.add_argument("--cache-size", type=int, default=1024)
    # Cluster view (repro.serving.cluster): N sharded worker replicas
    # behind one front door instead of a single service.
    serve.add_argument("--replicas", type=int, default=1,
                       help="serve through a ClusterService with this "
                            "many replicas (1 = single service)")
    serve.add_argument("--max-in-flight", type=int, default=64,
                       help="cluster admission bound; excess requests "
                            "get Overloaded envelopes")
    serve.add_argument("--swap", action="store_true",
                       help="blue/green swap to a freshly loaded model "
                            "between the first and second pass "
                            "(implies the cluster path)")
    # Resilience policy knobs (see repro.serving.ResiliencePolicy).
    serve.add_argument("--deadline-s", type=float, default=None,
                       help="per-request latency budget in seconds")
    serve.add_argument("--max-retries", type=int, default=2,
                       help="retries after the first attempt for "
                            "retryable failures")
    serve.add_argument("--backoff-base-s", type=float, default=0.05)
    serve.add_argument("--no-degradation", action="store_true",
                       help="disable the context-free fallback rung")
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive failures tripping the breaker")
    serve.add_argument("--breaker-cooldown-s", type=float, default=30.0)
    # Deterministic fault injection (repro.serving.faults), repeatable:
    # stage:kind[:count][:latency_s], e.g. --inject annotate:transient:2
    serve.add_argument("--inject", action="append", default=[],
                       metavar="STAGE:KIND[:COUNT][:LATENCY_S]",
                       help="inject seeded faults before a stage")
    serve.add_argument("--fault-seed", type=int, default=0)

    robust = sub.add_parser(
        "eval-robustness",
        help="run the adversarial attack suite + few-shot transfer "
             "benchmark, write a BENCH_robustness.json record")
    robust.add_argument("--out", default="BENCH_robustness.json")
    robust.add_argument("--seed", type=int, default=0)
    robust.add_argument("--train-size", type=int, default=120)
    robust.add_argument("--eval-size", type=int, default=40,
                        help="clean evaluation questions attacked per family")
    robust.add_argument("--hidden", type=int, default=32)
    robust.add_argument("--classifier-epochs", type=int, default=2)
    robust.add_argument("--seq2seq-epochs", type=int, default=6)
    robust.add_argument("--shots", default="5,10,25",
                        help="comma-separated K values of the transfer curve")
    robust.add_argument("--transfer-domains", type=int, default=2,
                        help="number of held-out domains evaluated")
    robust.add_argument("--per-domain", type=int, default=40,
                        help="examples generated per held-out domain")
    robust.add_argument("--skip-transfer", action="store_true",
                        help="attack suite only (no few-shot fits)")
    robust.add_argument("--quiet", action="store_true")
    return parser


def _cmd_generate(args) -> int:
    generator = generate_role_typed if args.role_typed \
        else generate_wikisql_style
    dataset = generator(
        seed=args.seed,
        train_size=args.size if args.split == "train" else 0,
        dev_size=args.size if args.split == "dev" else 0,
        test_size=args.size if args.split == "test" else 0)
    examples = getattr(dataset, args.split)
    save_jsonl(examples, args.out)
    print(f"wrote {len(examples)} examples to {args.out}")
    return 0


def _cmd_train(args) -> int:
    examples = load_jsonl(args.data)
    config = NLIDBConfig(
        extended_grammar=args.extended,
        classifier_epochs=args.classifier_epochs,
        seq2seq_epochs=args.seq2seq_epochs,
        seq2seq=Seq2SeqConfig(hidden=args.hidden,
                              attention_dim=args.hidden))
    model = NLIDB(WordEmbeddings(dim=args.embedding_dim), config)
    model.fit(examples, verbose=not args.quiet)
    save_nlidb(model, args.model_dir)
    print(f"trained on {len(examples)} examples; saved to {args.model_dir}")
    return 0


def _cmd_evaluate(args) -> int:
    model = load_nlidb(args.model_dir)
    examples = load_jsonl(args.data)
    predictions = [model.translate(e.question_tokens, e.table).query
                   for e in examples]
    result = evaluate(predictions, examples)
    print(result.as_row())
    if args.by_sketch:
        for label, breakout in evaluate_by_sketch(predictions,
                                                  examples).items():
            print(f"  {label:<12} {breakout.as_row()}")
    return 0


def _translate_and_print(model, question: str, table,
                         run_execute: bool) -> None:
    translation = model.translate(question, table)
    print(f"annotated: {' '.join(translation.annotated_tokens)}")
    if translation.query is None:
        print(f"recovery failed: {translation.error}")
        return
    print(f"SQL: {translation.query.to_sql()}")
    if run_execute:
        try:
            print(f"result: {execute(translation.query, table)}")
        except ReproError as exc:
            print(f"execution failed: {exc}")


def _cmd_query(args) -> int:
    model = load_nlidb(args.model_dir)
    examples = load_jsonl(args.data)
    if not examples:
        print("dataset is empty", file=sys.stderr)
        return 1
    _translate_and_print(model, args.question, examples[0].table,
                         args.execute)
    return 0


def _cmd_repl(args) -> int:
    model = load_nlidb(args.model_dir)
    examples = load_jsonl(args.data)
    if not examples:
        print("dataset is empty", file=sys.stderr)
        return 1
    table = examples[0].table
    print(f"querying table {table.name!r} with columns "
          f"{table.column_names}; empty line exits")
    while True:
        try:
            line = input("nlidb> ").strip()
        except EOFError:
            break
        if not line:
            break
        _translate_and_print(model, line, table, run_execute=True)
    return 0


def _cmd_serve_stats(args) -> int:
    model = load_nlidb(args.model_dir)
    examples = load_jsonl(args.data)[:args.limit]
    if not examples:
        print("dataset is empty", file=sys.stderr)
        return 1
    injector = None
    if args.inject:
        specs = [parse_fault_spec(text) for text in args.inject]
        injector = FaultInjector(specs, seed=args.fault_seed)
        model = FaultyNLIDB(model, injector)
    policy = ResiliencePolicy(
        deadline_s=args.deadline_s,
        max_retries=args.max_retries,
        backoff_base_s=args.backoff_base_s,
        degradation=not args.no_degradation,
        breaker_failure_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s)
    clustered = args.replicas > 1 or args.swap
    if clustered:
        service = ClusterService(
            model, n_replicas=max(args.replicas, 1),
            policy=ClusterPolicy(max_in_flight=args.max_in_flight),
            cache_size=args.cache_size, resilience=policy)
    else:
        service = TranslationService(model, cache_size=args.cache_size,
                                     policy=policy)
    outcomes = {"ok": 0, "degraded": 0, "failed": 0}
    swap_summary = None
    for index in range(max(args.passes, 1)):
        if args.swap and index == 1:
            # Zero-downtime rollover between passes: reload the same
            # weights as the standby generation, warm, switch, drain.
            swap_summary = service.swap(load_nlidb(args.model_dir))
        if args.batched:
            results = service.translate_batch(
                [(e.question_tokens, e.table) for e in examples])
        else:
            results = [service.translate(e.question_tokens, e.table)
                       for e in examples]
        for result in results:
            outcomes[result.status] += 1
    service.close()
    report = service.stats()
    report["outcomes"] = outcomes
    # One per-stage trace, as a worked example of the pipeline records
    # behind every histogram above.
    report["trace_sample"] = results[-1].to_dict()["trace"]
    if swap_summary is not None:
        report["swap"] = swap_summary
    if injector is not None:
        report["faults"] = injector.stats()
    print(json.dumps(report, indent=2, sort_keys=True))
    # Human-readable micro-batching footer (stderr keeps stdout pure
    # JSON): one line per scheduler, from MicroBatchScheduler.stats().
    schedulers = {r: s["service"]["scheduler"]
                  for r, s in report["replicas"].items()} if clustered \
        else {"service": report["scheduler"]}
    for name, sched in sorted(schedulers.items()):
        print(f"[scheduler {name}] batches={sched['batches']} "
              f"coalesced_batches={sched['coalesced_batches']} "
              f"dispatched={sched['dispatched']} "
              f"max_batch={sched['max_batch']}", file=sys.stderr)
    # Which numeric inference path served the run (arena/f32/int8).
    if clustered:
        replica = next(iter(report["replicas"].values()), {})
        inference = replica.get("service", {}).get("inference")
    else:
        inference = report.get("inference")
    if inference:
        arena_bytes = sum(a.get("bytes", 0)
                          for a in inference.get("arenas", {}).values())
        print(f"[inference] dtype={inference['dtype']} "
              f"arena={'on' if inference['arena_inference'] else 'off'} "
              f"arena_bytes={arena_bytes} "
              f"quantized={'on' if inference['quantized_scoring'] else 'off'}",
              file=sys.stderr)
    return 0


def _cmd_eval_robustness(args) -> int:
    from repro.eval import (
        ModelRung,
        admit_suite,
        build_report,
        few_shot_curve,
        generate_suite,
        standard_attacks,
    )

    def config() -> NLIDBConfig:
        return NLIDBConfig(
            classifier_epochs=args.classifier_epochs,
            seq2seq_epochs=args.seq2seq_epochs,
            seq2seq=Seq2SeqConfig(hidden=args.hidden,
                                  attention_dim=args.hidden),
            seed=args.seed)

    dataset = generate_wikisql_style(seed=args.seed,
                                     train_size=args.train_size,
                                     dev_size=args.eval_size, test_size=0)
    model = NLIDB(WordEmbeddings(dim=32, seed=args.seed), config())
    model.fit(dataset.train, verbose=not args.quiet)

    attacks = standard_attacks(model.annotator.column_classifier)
    suite = generate_suite(dataset.dev, attacks, seed=args.seed)
    admission = admit_suite(suite)
    rungs = [
        ModelRung("full_adversarial", model, mode="full"),
        ModelRung("matcher_only", model, mode="context_free",
                  transfer_eligible=False),
    ]
    transfer = None
    if not args.skip_transfer:
        held = generate_heldout(seed=args.seed + 1,
                                per_domain=args.per_domain)
        held = dict(sorted(held.items())[:args.transfer_domains])
        shots = tuple(int(k) for k in args.shots.split(",") if k.strip())

        def factory() -> NLIDB:
            return NLIDB(WordEmbeddings(dim=32, seed=args.seed), config())

        transfer = {"full_adversarial": few_shot_curve(
            factory, dataset.train, held, shots=shots, seed=args.seed)}
    report = build_report(rungs, dataset.dev, admission, suite,
                          transfer=transfer, seed=args.seed)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if not args.quiet:
        for name, config_report in report["configs"].items():
            clean = config_report["clean"]["acc_qm"]
            print(f"{name}: clean Acc_qm={clean:.1%}")
            for attack, row in config_report["attacks"].items():
                print(f"  {attack:<16} Acc_qm={row['acc_qm']:.1%} "
                      f"delta={row['delta_qm']:+.1%} (n={row['n']})")
    print(f"wrote {args.out}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "query": _cmd_query,
    "repl": _cmd_repl,
    "serve-stats": _cmd_serve_stats,
    "eval-robustness": _cmd_eval_robustness,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
