"""Value vocabularies and samplers for the synthetic dataset generators.

Each sampler takes a ``numpy.random.Generator`` and returns a cell
value.  Pools are deliberately large enough that train/dev/test tables
(sampled independently) rarely share rows, reproducing WikiSQL's
unseen-tables-at-test-time property.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "FIRST_NAMES", "LAST_NAMES", "PLACES", "MONTHS",
    "person_name", "place_name", "date_text", "year", "integer",
    "decimal", "enum", "compound",
]

FIRST_NAMES = [
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "piotr",
    "levan", "jerzy", "nana", "marta", "henrik", "luca", "ingrid", "tomas",
    "elena", "marco", "sofia", "andrei", "freya", "diego", "anika", "oscar",
    "petra", "felix", "greta",
]

LAST_NAMES = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "wilson", "anderson", "taylor", "moore", "jackson", "martin",
    "lee", "thompson", "white", "harris", "clark", "lewis", "antczak",
    "adamczyk", "djordjadze", "kovacs", "lindgren", "rossi", "novak",
    "fischer", "larsen", "moretti", "haugen", "petrov", "keller", "dubois",
    "svensson", "romano", "vasquez", "okafor", "tanaka", "murphy",
]

PLACES = [
    "mayo", "galway", "kerry", "cork", "dublin", "sligo", "derry",
    "toronto", "boston", "chicago", "denver", "seattle", "austin",
    "portland", "atlanta", "phoenix", "detroit", "memphis", "oslo",
    "bergen", "lyon", "porto", "seville", "krakow", "gdansk", "turin",
    "valencia", "leipzig", "ghent", "malmo", "tampere", "brno",
]

MONTHS = ["january", "february", "march", "april", "may", "june", "july",
          "august", "september", "october", "november", "december"]

Sampler = Callable[[np.random.Generator], object]


def person_name(rng: np.random.Generator) -> str:
    """A two-word person name, e.g. ``piotr adamczyk``."""
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def place_name(rng: np.random.Generator) -> str:
    """A place name from the shared pool."""
    return str(rng.choice(PLACES))


def date_text(rng: np.random.Generator) -> str:
    """A textual date, e.g. ``november 16 2006``."""
    month = rng.choice(MONTHS)
    day = int(rng.integers(1, 29))
    yr = int(rng.integers(1990, 2021))
    return f"{month} {day} {yr}"


def year(lo: int = 1950, hi: int = 2021) -> Sampler:
    """Sampler factory for a year in ``[lo, hi)``."""
    def sample(rng: np.random.Generator) -> int:
        return int(rng.integers(lo, hi))
    return sample


def integer(lo: int, hi: int) -> Sampler:
    """Sampler factory for integers in ``[lo, hi)``."""
    def sample(rng: np.random.Generator) -> int:
        return int(rng.integers(lo, hi))
    return sample


def decimal(lo: float, hi: float, digits: int = 1) -> Sampler:
    """Sampler factory for rounded decimals in ``[lo, hi)``."""
    def sample(rng: np.random.Generator) -> float:
        return round(float(rng.uniform(lo, hi)), digits)
    return sample


def enum(options: list[str]) -> Sampler:
    """Sampler factory drawing from a fixed option list."""
    if not options:
        raise ValueError("enum pool must be non-empty")
    def sample(rng: np.random.Generator) -> str:
        return str(rng.choice(options))
    return sample


def compound(*parts: Sampler, sep: str = " ") -> Sampler:
    """Sampler factory concatenating several samplers' outputs."""
    def sample(rng: np.random.Generator) -> str:
        return sep.join(str(p(rng)) for p in parts)
    return sample
