"""Question-template machinery with gold mention-span tracking.

A :class:`QuestionTemplate` is a list of segments that render into a
natural language question while simultaneously producing the gold SQL
query and the gold mention spans (used to *evaluate* mention detection;
training never sees spans, as in the paper).

Segment kinds:

``("text", "literal words")``
    Plain words.
``("sel", None)``
    A surface mention of the select column (sampled from the column's
    mention list).
``("selp", "fixed phrase")``
    A fixed paraphrase that mentions the select column (e.g. "how many
    people live in" for Population) — exercises challenge 2.
``("col", i)``
    A surface mention of the ``i``-th condition column.
``("colp", (i, "fixed phrase"))``
    A fixed surface mention of the ``i``-th condition column (used by
    idiomatic domain templates).
``("val", i)``
    The ``i``-th condition's value.  If no ``("col", i)`` segment exists
    the column is mentioned *implicitly* (challenge 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataError
from repro.sqlengine import Aggregate, Condition, Operator, Query, Table
from repro.sqlengine.types import DataType
from repro.text.tokenizer import tokenize

from repro.data.records import Example, MentionSpan
from repro.data.roles import Role, default_role

__all__ = ["ColumnSpec", "QuestionTemplate", "DomainSpec", "render"]

Segment = tuple[str, object]


@dataclass
class ColumnSpec:
    """Generator-side description of one column.

    ``mentions`` are the surface forms a question may use to refer to
    the column — the first entry is the column name itself, later
    entries are synonyms/paraphrases (non-exact matching, challenge 1).

    ``role`` is the column's semantic role (:class:`~repro.data.roles.Role`);
    when omitted it defaults by dtype (REAL → measure, TEXT → text).
    The intent generators match schemas through roles, not names.
    """

    name: str
    dtype: DataType
    sample: object  # Sampler: rng -> cell value
    mentions: list[str] = field(default_factory=list)
    role: Role | None = None

    def __post_init__(self) -> None:
        if not self.mentions:
            self.mentions = [self.name.lower()]
        if self.role is None:
            self.role = default_role(self.dtype)


@dataclass
class QuestionTemplate:
    """One renderable question/SQL pattern."""

    segments: list[Segment]
    aggregate: Aggregate = Aggregate.NONE
    operators: list[Operator] = field(default_factory=list)
    # Fixed column names (or None to sample) for the select/conditions.
    select: str | None = None
    cond_columns: list[str | None] = field(default_factory=list)
    # Sampling constraint: numeric aggregates need a REAL select column.
    select_dtype: DataType | None = None

    @property
    def n_conditions(self) -> int:
        return len(self.operators)

    def __post_init__(self) -> None:
        if self.cond_columns and len(self.cond_columns) != self.n_conditions:
            raise DataError("cond_columns length must match operators length")
        if not self.cond_columns:
            self.cond_columns = [None] * self.n_conditions
        needs_real = self.aggregate in (
            Aggregate.MAX, Aggregate.MIN, Aggregate.SUM, Aggregate.AVG)
        if needs_real and self.select_dtype is None:
            self.select_dtype = DataType.REAL


@dataclass
class DomainSpec:
    """A topical domain: schema plus its question templates."""

    name: str
    entity: str  # head noun for generic templates ("film", "county", ...)
    columns: list[ColumnSpec]
    templates: list[QuestionTemplate] = field(default_factory=list)

    def column(self, name: str) -> ColumnSpec:
        for spec in self.columns:
            if spec.name.lower() == name.lower():
                return spec
        raise DataError(f"domain {self.name!r} has no column {name!r}")

    def columns_with_role(self, *roles: Role) -> list[ColumnSpec]:
        """Columns whose semantic role is one of ``roles`` (schema order)."""
        return [spec for spec in self.columns if spec.role in roles]

    def build_table(self, rng: np.random.Generator, n_rows: int,
                    table_name: str | None = None) -> Table:
        """Sample a fresh table instance for this domain."""
        from repro.sqlengine import Column
        columns = [Column(c.name, c.dtype) for c in self.columns]
        rows = [tuple(c.sample(rng) for c in self.columns) for _ in range(n_rows)]
        return Table(table_name or self.name, columns, rows)


def _value_surface(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def render(template: QuestionTemplate, domain: DomainSpec, table: Table,
           rng: np.random.Generator, counterfactual_rate: float = 0.15) -> Example:
    """Render a template into a full :class:`Example`.

    Condition values are drawn from a single random row of the table
    (consistent multi-condition questions) or — with probability
    ``counterfactual_rate`` — freshly sampled, which may produce values
    absent from the table (challenge 4).
    """
    numeric = [c.name for c in domain.columns if c.dtype == DataType.REAL]
    textual = [c.name for c in domain.columns if c.dtype == DataType.TEXT]

    # --- choose columns -------------------------------------------------
    select = template.select
    if select is None:
        pool = numeric if template.select_dtype == DataType.REAL else (
            textual if template.select_dtype == DataType.TEXT
            else [c.name for c in domain.columns])
        if not pool:
            raise DataError(f"domain {domain.name!r} has no column for template")
        select = str(rng.choice(pool))

    cond_cols: list[str] = []
    taken = {select.lower()}
    for fixed, operator in zip(template.cond_columns, template.operators):
        if fixed is not None:
            cond_cols.append(fixed)
            taken.add(fixed.lower())
            continue
        pool = (numeric if operator in (Operator.GT, Operator.LT) else
                [c.name for c in domain.columns])
        pool = [c for c in pool if c.lower() not in taken]
        if not pool:
            raise DataError(f"cannot sample condition column in {domain.name!r}")
        chosen = str(rng.choice(pool))
        cond_cols.append(chosen)
        taken.add(chosen.lower())

    # --- choose values --------------------------------------------------
    if not table.rows:
        raise DataError("cannot render against an empty table")
    row = table.rows[int(rng.integers(0, len(table.rows)))]
    values = []
    for col, operator in zip(cond_cols, template.operators):
        spec = domain.column(col)
        if operator is Operator.EQ and rng.random() >= counterfactual_rate:
            values.append(row[table.column_index(col)])
        else:
            values.append(spec.sample(rng))

    # --- render segments with span tracking ------------------------------
    tokens: list[str] = []
    mentions: list[MentionSpan] = []
    mentioned_cols: set[str] = set()

    def emit(text: str) -> tuple[int, int]:
        start = len(tokens)
        tokens.extend(tokenize(text))
        return start, len(tokens)

    for kind, payload in template.segments:
        if kind == "text":
            emit(str(payload))
        elif kind == "sel":
            surface = str(rng.choice(domain.column(select).mentions))
            start, end = emit(surface)
            mentions.append(MentionSpan(select, "column", start, end))
            mentioned_cols.add(select.lower())
        elif kind == "selp":
            start, end = emit(str(payload))
            mentions.append(MentionSpan(select, "column", start, end))
            mentioned_cols.add(select.lower())
        elif kind == "col":
            col = cond_cols[int(payload)]
            surface = str(rng.choice(domain.column(col).mentions))
            start, end = emit(surface)
            mentions.append(MentionSpan(col, "column", start, end))
            mentioned_cols.add(col.lower())
        elif kind == "colp":
            idx, phrase = payload
            col = cond_cols[int(idx)]
            start, end = emit(str(phrase))
            mentions.append(MentionSpan(col, "column", start, end))
            mentioned_cols.add(col.lower())
        elif kind == "val":
            idx = int(payload)
            col = cond_cols[idx]
            start, end = emit(_value_surface(values[idx]))
            mentions.append(MentionSpan(col, "value", start, end))
        else:
            raise DataError(f"unknown segment kind {kind!r}")

    # Record implicit column mentions (a value appears, its column does not).
    for col in cond_cols:
        if col.lower() not in mentioned_cols:
            value_span = next((m for m in mentions
                               if m.kind == "value" and m.column == col), None)
            anchor = value_span.start if value_span else len(tokens)
            mentions.append(MentionSpan(col, "column", anchor, anchor))

    query = Query(
        select_column=select,
        aggregate=template.aggregate,
        conditions=[Condition(c, op, v) for c, op, v
                    in zip(cond_cols, template.operators, values)],
    )
    return Example(
        question=" ".join(tokens),
        table=table,
        query=query,
        mentions=mentions,
        domain=domain.name,
    )
