"""ParaphraseBench-style robustness benchmark (Section VII-B.2).

DBPal's ParaphraseBench tests an NLIDB on one fixed *patients* table
with six controlled linguistic-variation categories.  We regenerate the
benchmark: a patients table plus, for each patient/column fact, one
question per category:

* ``naive`` — the direct phrasing;
* ``syntactic`` — word-order variation;
* ``lexical`` — rarer synonym for the column word;
* ``morphological`` — inflected word forms;
* ``semantic`` — whole-question paraphrase with no shared column word;
* ``missing`` — under-specified question lacking the column signal
  (mostly unanswerable — the paper scores 3.86% here).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.sqlengine import (
    Aggregate,
    Column,
    Condition,
    Operator,
    Query,
    Table,
)
from repro.sqlengine.types import DataType
from repro.text.tokenizer import tokenize

from repro.data import pools
from repro.data.records import Example, MentionSpan

__all__ = ["CATEGORIES", "build_patients_table", "generate_paraphrase_bench"]

CATEGORIES = ["naive", "syntactic", "lexical", "morphological",
              "semantic", "missing"]

_DIAGNOSES = ["influenza", "asthma", "fracture", "migraine", "bronchitis",
              "appendicitis"]

# Question builders per target column.  Each returns the question text;
# "{n}" is replaced by the patient name.
_QUESTION_FORMS: dict[str, dict[str, str]] = {
    "age": {
        "naive": "what is the age of patient {n} ?",
        "syntactic": "of patient {n} , what is the age ?",
        "lexical": "what is the maturity of patient {n} ?",
        "morphological": "what is the aged value for patient {n} ?",
        "semantic": "how old is {n} ?",
        "missing": "what about patient {n} ?",
    },
    "diagnosis": {
        "naive": "what is the diagnosis of patient {n} ?",
        "syntactic": "for patient {n} , what is the diagnosis ?",
        "lexical": "what is the ailment of patient {n} ?",
        "morphological": "what was {n} diagnosed with ?",
        "semantic": "why is {n} in the hospital ?",
        "missing": "tell me about {n}",
    },
    "length of stay": {
        "naive": "what is the length of stay of patient {n} ?",
        "syntactic": "the length of stay of patient {n} is what ?",
        "lexical": "what is the duration of stay of patient {n} ?",
        "morphological": "how long is patient {n} staying ?",
        "semantic": "since when is {n} here ?",
        "missing": "give me the record of {n}",
    },
    "doctor": {
        "naive": "what is the doctor of patient {n} ?",
        "syntactic": "patient {n} has which doctor ?",
        "lexical": "what is the physician of patient {n} ?",
        "morphological": "who is doctoring patient {n} ?",
        "semantic": "who treats {n} ?",
        "missing": "look up {n} please",
    },
}


def build_patients_table(seed: int = 7, n_rows: int = 12) -> Table:
    """Sample the fixed patients table."""
    rng = np.random.default_rng(seed)
    columns = [
        Column("patient name", DataType.TEXT),
        Column("age", DataType.REAL),
        Column("gender", DataType.TEXT),
        Column("diagnosis", DataType.TEXT),
        Column("length of stay", DataType.REAL),
        Column("doctor", DataType.TEXT),
    ]
    rows = []
    seen: set[str] = set()
    while len(rows) < n_rows:
        name = pools.person_name(rng)
        if name in seen:
            continue
        seen.add(name)
        rows.append((
            name,
            int(rng.integers(18, 95)),
            str(rng.choice(["female", "male"])),
            str(rng.choice(_DIAGNOSES)),
            int(rng.integers(1, 30)),
            pools.person_name(rng),
        ))
    return Table("patients", columns, rows)


def generate_paraphrase_bench(seed: int = 7, n_rows: int = 12,
                              ) -> dict[str, list[Example]]:
    """Generate the per-category example lists.

    Every example's gold query is
    ``SELECT <column> WHERE patient name = <name>``; only the question's
    phrasing varies across categories.
    """
    table = build_patients_table(seed=seed, n_rows=n_rows)
    output: dict[str, list[Example]] = {c: [] for c in CATEGORIES}
    name_idx = table.column_index("patient name")
    for row in table.rows:
        name = row[name_idx]
        for column, forms in _QUESTION_FORMS.items():
            for category in CATEGORIES:
                question = forms[category].format(n=name)
                tokens = tokenize(question)
                name_tokens = tokenize(str(name))
                start = _find_subsequence(tokens, name_tokens)
                mentions = []
                if start is not None:
                    mentions.append(MentionSpan("patient name", "value",
                                                start, start + len(name_tokens)))
                query = Query(
                    select_column=column,
                    aggregate=Aggregate.NONE,
                    conditions=[Condition("patient name", Operator.EQ, name)],
                )
                output[category].append(Example(
                    question=question,
                    table=table,
                    query=query,
                    mentions=mentions,
                    domain="patients",
                ))
    return output


def _find_subsequence(haystack: list[str], needle: list[str]) -> int | None:
    if not needle:
        raise DataError("empty needle")
    for i in range(len(haystack) - len(needle) + 1):
        if haystack[i:i + len(needle)] == needle:
            return i
    return None
