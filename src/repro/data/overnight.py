"""OVERNIGHT-style transfer domains (Section VII-B.1).

Five sub-domains — BASKETBALL, CALENDAR, HOUSING, RECIPES, RESTAURANTS —
whose schemas and vocabulary are disjoint from the WikiSQL-style
training domains, used to evaluate zero-shot transfer.

Two properties of the real benchmark are reproduced:

* a fraction of records use logical forms *outside* the WikiSQL sketch
  (superlatives over other columns, interval constraints); these are
  flagged ``sketch_compatible=False`` and excluded from transfer
  accuracy, exactly as the paper does ("only the sketch compatible ones
  are considered");
* sub-domains differ in how much their vocabulary overlaps general
  English usage — BASKETBALL uses opaque stat abbreviations (hard),
  RECIPES/RESTAURANTS use common words (easy) — which is what produces
  the accuracy ordering in Table IV(a).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError
from repro.sqlengine import Operator
from repro.sqlengine.types import DataType

from repro.data import pools
from repro.data.domains import generic_templates, make_template as _t
from repro.data.records import Example
from repro.data.template import ColumnSpec, DomainSpec, render

__all__ = ["SUBDOMAINS", "overnight_domains", "generate_overnight"]

EQ = Operator.EQ
TEXT, REAL = DataType.TEXT, DataType.REAL

SUBDOMAINS = ["basketball", "calendar", "housing", "recipes", "restaurants"]


def _basketball() -> DomainSpec:
    # Opaque stat columns: questions phrase the stats in natural English
    # ("points per game", "scoring average") while the schema uses the
    # abbreviations "ppg"/"apg"/"rpg" that embeddings carry no prior
    # for — the linguistic mismatch that makes this the hardest
    # transfer target in the paper (39.7%).
    columns = [
        ColumnSpec("player name", TEXT, pools.person_name,
                   ["roster entry", "athlete listed"]),
        ColumnSpec("team code", TEXT,
                   pools.enum(["lal", "bos", "chi", "mia", "okc", "phx"]),
                   ["franchise tag", "club abbreviation"]),
        ColumnSpec("ppg", REAL, pools.decimal(4.0, 34.0, 1),
                   ["points per game", "scoring average"]),
        ColumnSpec("apg", REAL, pools.decimal(0.5, 12.0, 1),
                   ["assists per game", "assist rate"]),
        ColumnSpec("rpg", REAL, pools.decimal(1.0, 15.0, 1),
                   ["rebounds per game", "boards"]),
    ]
    return DomainSpec("basketball", "player", columns,
                      generic_templates("player", "player name"))


def _calendar() -> DomainSpec:
    columns = [
        ColumnSpec("meeting", TEXT,
                   pools.enum(["standup", "review", "planning", "retro",
                               "sync", "workshop"]),
                   ["meeting", "event"]),
        ColumnSpec("date", TEXT, pools.date_text, ["date", "day"]),
        ColumnSpec("room", TEXT,
                   pools.enum(["atrium", "library", "loft", "annex",
                               "pavilion"]),
                   ["room", "location", "place"]),
        ColumnSpec("attendees", REAL, pools.integer(2, 40),
                   ["attendees", "number of people"]),
        ColumnSpec("length minutes", REAL, pools.integer(15, 180),
                   ["length minutes", "duration", "length"]),
    ]
    idiomatic = [
        _t([("selp", "when"), ("text", "is the"), ("val", 0),
            ("colp", (0, "meeting")), ("text", "?")], operators=[EQ],
           select="date", cond_columns=["meeting"]),
    ]
    return DomainSpec("calendar", "meeting", columns,
                      generic_templates("meeting", "meeting") + idiomatic)


def _housing() -> DomainSpec:
    columns = [
        ColumnSpec("listing", TEXT, pools.compound(
            pools.integer(10, 999), pools.enum(["oak lane", "birch road",
                                                "elm street", "cedar way"])),
                   ["listing", "address", "property"]),
        ColumnSpec("neighborhood", TEXT, pools.place_name,
                   ["neighborhood", "area", "district"]),
        ColumnSpec("rent", REAL, pools.integer(500, 5000),
                   ["rent", "monthly cost", "price"]),
        ColumnSpec("bedrooms", REAL, pools.integer(1, 6),
                   ["bedrooms", "rooms"]),
        ColumnSpec("square feet", REAL, pools.integer(300, 4000),
                   ["square feet", "size", "floor area"]),
    ]
    return DomainSpec("housing", "listing", columns,
                      generic_templates("listing", "listing"))


def _recipes() -> DomainSpec:
    columns = [
        ColumnSpec("recipe", TEXT,
                   pools.enum(["lentil soup", "pesto pasta", "lamb stew",
                               "berry tart", "corn chowder", "okra curry"]),
                   ["recipe", "dish", "meal"]),
        ColumnSpec("cuisine", TEXT,
                   pools.enum(["italian", "indian", "french", "mexican",
                               "thai", "greek"]),
                   ["cuisine", "food style", "kind of food"]),
        ColumnSpec("main ingredient", TEXT,
                   pools.enum(["lentils", "basil", "lamb", "berries",
                               "corn", "okra"]),
                   ["main ingredient", "ingredient"]),
        ColumnSpec("calories", REAL, pools.integer(100, 900),
                   ["calories", "energy"]),
        ColumnSpec("cooking time", REAL, pools.integer(10, 180),
                   ["cooking time", "time", "minutes to cook"]),
    ]
    idiomatic = [
        _t([("selp", "how long"), ("text", "does the"), ("val", 0),
            ("colp", (0, "recipe")), ("text", "take ?")], operators=[EQ],
           select="cooking time", cond_columns=["recipe"]),
    ]
    return DomainSpec("recipes", "recipe", columns,
                      generic_templates("recipe", "recipe") + idiomatic)


def _restaurants() -> DomainSpec:
    columns = [
        ColumnSpec("restaurant", TEXT, pools.compound(
            pools.enum(["the"]), pools.enum(["copper", "maple", "jade",
                                             "saffron", "juniper"]),
            pools.enum(["table", "kitchen", "fork", "spoon", "garden"])),
                   ["restaurant", "diner", "eatery"]),
        ColumnSpec("cuisine", TEXT,
                   pools.enum(["italian", "japanese", "mexican", "indian",
                               "french", "korean"]),
                   ["cuisine", "kind of food", "food"]),
        ColumnSpec("city", TEXT, pools.place_name, ["city", "town"]),
        ColumnSpec("rating", REAL, pools.decimal(1.0, 5.0, 1),
                   ["rating", "stars", "grade"]),
        ColumnSpec("price", REAL, pools.integer(10, 200),
                   ["price", "cost", "average bill"]),
    ]
    idiomatic = [
        _t([("text", "which"), ("selp", "restaurant"), ("text", "in"),
            ("val", 0), ("colp", (0, "city")), ("text", "serves"),
            ("val", 1), ("colp", (1, "food")), ("text", "?")],
           operators=[EQ, EQ], select="restaurant",
           cond_columns=["city", "cuisine"]),
    ]
    return DomainSpec("restaurants", "restaurant", columns,
                      generic_templates("restaurant", "restaurant") + idiomatic)


def overnight_domains() -> dict[str, DomainSpec]:
    """The five OVERNIGHT-style sub-domains keyed by name."""
    return {
        "basketball": _basketball(),
        "calendar": _calendar(),
        "housing": _housing(),
        "recipes": _recipes(),
        "restaurants": _restaurants(),
    }


# Questions that fall outside the WikiSQL sketch (OVERNIGHT's grammar is
# richer); they are generated, flagged, and excluded from transfer
# accuracy like in the paper.
_INCOMPATIBLE_PHRASES = [
    "second highest", "at least two", "between 10 and 20",
    "more than every other", "both the largest and the smallest",
]


def generate_overnight(seed: int = 1, per_domain: int = 60,
                       rows_per_table: int = 12,
                       incompatible_rate: float = 0.25,
                       ) -> dict[str, list[Example]]:
    """Generate per-sub-domain example lists.

    ``incompatible_rate`` of records get an out-of-sketch construct in
    the question and ``sketch_compatible=False``.
    """
    if not 0.0 <= incompatible_rate < 1.0:
        raise DataError("incompatible_rate must be in [0, 1)")
    rng = np.random.default_rng(seed)
    output: dict[str, list[Example]] = {}
    for name, domain in overnight_domains().items():
        table = domain.build_table(rng, rows_per_table,
                                   table_name=f"{name}_overnight")
        examples: list[Example] = []
        while len(examples) < per_domain:
            template = domain.templates[int(rng.integers(0, len(domain.templates)))]
            try:
                example = render(template, domain, table, rng)
            except DataError:
                continue
            if rng.random() < incompatible_rate:
                phrase = str(rng.choice(_INCOMPATIBLE_PHRASES))
                example.question = f"{example.question} with the {phrase}"
                example.sketch_compatible = False
            examples.append(example)
        output[name] = examples
    return output
